//! Dirty-database metadata: which columns carry cluster identifiers and
//! tuple probabilities.

use std::collections::BTreeMap;

use conquer_storage::{Catalog, DataType};

use crate::error::CoreError;
use crate::Result;

/// Default name of the identifier column (the paper's examples use `id`).
pub const DEFAULT_ID_COLUMN: &str = "id";
/// Default name of the probability column (the paper's `prob`).
pub const DEFAULT_PROB_COLUMN: &str = "prob";

/// Tolerance when checking that cluster probabilities sum to 1.
pub const PROB_SUM_EPSILON: f64 = 1e-6;

/// Per-relation dirty metadata: the identifier column produced by the tuple
/// matcher and the probability column (Section 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyTableMeta {
    /// Column whose shared values define the clustering.
    pub id_column: String,
    /// Column holding each tuple's probability of being in the clean
    /// database; must sum to 1 within each cluster.
    pub prob_column: String,
}

impl Default for DirtyTableMeta {
    fn default() -> Self {
        DirtyTableMeta {
            id_column: DEFAULT_ID_COLUMN.to_string(),
            prob_column: DEFAULT_PROB_COLUMN.to_string(),
        }
    }
}

impl DirtyTableMeta {
    /// Metadata with explicit column names.
    pub fn new(id_column: impl Into<String>, prob_column: impl Into<String>) -> Self {
        DirtyTableMeta {
            id_column: id_column.into().to_ascii_lowercase(),
            prob_column: prob_column.into().to_ascii_lowercase(),
        }
    }
}

/// Dirty metadata for every relation of a database.
///
/// Every relation referenced by a clean-answer query must have an entry; a
/// *clean* relation is simply one whose clusters are singletons with
/// probability 1 (the paper treats clean tuples the same way).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySpec {
    tables: BTreeMap<String, DirtyTableMeta>,
}

impl DirtySpec {
    /// An empty spec.
    pub fn new() -> Self {
        DirtySpec::default()
    }

    /// A spec using the default `id`/`prob` column names for each listed
    /// table.
    pub fn uniform(tables: &[&str]) -> Self {
        let mut spec = DirtySpec::new();
        for t in tables {
            spec.add(*t, DirtyTableMeta::default());
        }
        spec
    }

    /// Register (or replace) a table's metadata.
    pub fn add(&mut self, table: impl Into<String>, meta: DirtyTableMeta) -> &mut Self {
        self.tables.insert(table.into().to_ascii_lowercase(), meta);
        self
    }

    /// Builder-style [`DirtySpec::add`].
    pub fn with(mut self, table: impl Into<String>, meta: DirtyTableMeta) -> Self {
        self.add(table, meta);
        self
    }

    /// Metadata for a table, if registered.
    pub fn meta(&self, table: &str) -> Option<&DirtyTableMeta> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    /// Metadata for a table, as a hard requirement.
    pub fn require(&self, table: &str) -> Result<&DirtyTableMeta> {
        self.meta(table).ok_or_else(|| {
            CoreError::InvalidDirty(format!(
                "table {table:?} has no identifier/probability metadata in the DirtySpec"
            ))
        })
    }

    /// Registered table names (sorted).
    pub fn tables(&self) -> impl Iterator<Item = (&str, &DirtyTableMeta)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Validate a catalog against this spec (Definition 2):
    ///
    /// * every registered table exists and has the id/prob columns,
    /// * the probability column is numeric,
    /// * every probability lies in `[0, 1]`,
    /// * probabilities within each cluster sum to 1 (±[`PROB_SUM_EPSILON`]).
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for (name, meta) in &self.tables {
            let table = catalog.table(name)?;
            let id_col = table.column_index(&meta.id_column)?;
            let prob_col = table.column_index(&meta.prob_column)?;
            let prob_ty = table
                .schema()
                .column_at(prob_col)
                .ok_or_else(|| {
                    conquer_engine::EngineError::internal(format!(
                        "column {name}.{} resolved to index {prob_col} but has no schema entry",
                        meta.prob_column
                    ))
                })?
                .data_type();
            if !matches!(prob_ty, DataType::Float | DataType::Int) {
                return Err(CoreError::InvalidDirty(format!(
                    "{name}.{} must be numeric, found {prob_ty}",
                    meta.prob_column
                )));
            }
            let mut sums: BTreeMap<String, f64> = BTreeMap::new();
            for (i, row) in table.rows().iter().enumerate() {
                let p = row[prob_col].as_f64().ok_or_else(|| {
                    CoreError::InvalidDirty(format!(
                        "{name}.{} is NULL or non-numeric in row {i}",
                        meta.prob_column
                    ))
                })?;
                if !(0.0..=1.0 + PROB_SUM_EPSILON).contains(&p) {
                    return Err(CoreError::InvalidDirty(format!(
                        "{name}.{} = {p} in row {i} is outside [0, 1]",
                        meta.prob_column
                    )));
                }
                if row[id_col].is_null() {
                    return Err(CoreError::InvalidDirty(format!(
                        "{name}.{} is NULL in row {i}; every tuple needs a cluster identifier",
                        meta.id_column
                    )));
                }
                *sums.entry(row[id_col].to_string()).or_insert(0.0) += p;
            }
            for (cluster, sum) in sums {
                if (sum - 1.0).abs() > PROB_SUM_EPSILON {
                    return Err(CoreError::InvalidDirty(format!(
                        "probabilities of cluster {cluster:?} in table {name:?} sum to {sum}, \
                         expected 1"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_storage::{Schema, Table, Value};

    fn catalog(probs: &[(&str, f64)]) -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(
            "customer",
            Schema::from_pairs([("id", DataType::Text), ("prob", DataType::Float)]).unwrap(),
        );
        for (id, p) in probs {
            t.insert(vec![Value::text(*id), Value::Float(*p)]).unwrap();
        }
        cat.add_table(t).unwrap();
        cat
    }

    #[test]
    fn valid_spec_passes() {
        let cat = catalog(&[("c1", 0.4), ("c1", 0.6), ("c2", 1.0)]);
        DirtySpec::uniform(&["customer"]).validate(&cat).unwrap();
    }

    #[test]
    fn bad_cluster_sum_rejected() {
        let cat = catalog(&[("c1", 0.4), ("c1", 0.3)]);
        let err = DirtySpec::uniform(&["customer"])
            .validate(&cat)
            .unwrap_err();
        assert!(err.to_string().contains("sum to"), "{err}");
    }

    #[test]
    fn out_of_range_prob_rejected() {
        let cat = catalog(&[("c1", 1.5), ("c1", -0.5)]);
        let err = DirtySpec::uniform(&["customer"])
            .validate(&cat)
            .unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn missing_columns_rejected() {
        let cat = catalog(&[("c1", 1.0)]);
        let spec = DirtySpec::new().with("customer", DirtyTableMeta::new("cid", "prob"));
        assert!(spec.validate(&cat).is_err());
    }

    #[test]
    fn missing_table_rejected() {
        let cat = catalog(&[("c1", 1.0)]);
        assert!(DirtySpec::uniform(&["nope"]).validate(&cat).is_err());
    }

    #[test]
    fn require_reports_unregistered() {
        let spec = DirtySpec::uniform(&["customer"]);
        assert!(spec.require("customer").is_ok());
        assert!(spec.require("ORDERS").is_err());
        assert!(spec.meta("CUSTOMER").is_some(), "case-insensitive lookup");
    }
}
