//! Expected-value answers for aggregate queries — the paper's first item of
//! future work ("we would like to extend the class of queries that can be
//! rewritten to consider, for example, queries with grouping and
//! aggregation").
//!
//! ## Semantics
//!
//! For an aggregate query `q` over a dirty database, define the *expected
//! answer* of a group `g` as the expectation, over candidate databases
//! (Definition 4), of `q`'s aggregate value for `g` — where a candidate in
//! which `g` is empty contributes 0. For `SUM` and `COUNT(*)` this
//! expectation is *exact* by linearity:
//!
//! ```text
//! E[ SUM(e) over rows of g ]
//!   = Σ_joined-rows-with-key-g  e(row) · P(row's tuples all chosen)
//!   = Σ_joined-rows-with-key-g  e(row) · Π_i prob(tᵢ)
//! ```
//!
//! because a joined row combines exactly one tuple per relation and tuples
//! of *different* relations are independent (Definition 4). This holds for
//! any self-join-free SPJ core — the tree-shaped join graph of Definition 7
//! is **not** required, unlike for clean answers.
//!
//! The rewriting is therefore: replace `COUNT(*)` by
//! `SUM(R1.prob·…·Rm.prob)`, `SUM(e)` by `SUM(e · R1.prob·…·Rm.prob)`, and
//! `AVG(e)` by the ratio of the two (the *ratio of expectations*, a
//! standard estimator — not the expectation of the ratio; documented
//! because the two differ). `MIN`/`MAX`/`COUNT(expr)` are not linear and
//! are rejected.
//!
//! One SQL-ism carries over: `SUM` over zero rows is `NULL`, so a group
//! that joins nothing reports `NULL` (read it as expected value 0) rather
//! than `COUNT(*)`'s usual 0.

use conquer_sql::{AggFunc, Expr, SelectItem, SelectStatement};

use crate::error::{CoreError, Def7Clause, NotRewritable};
use crate::spec::DirtySpec;
use crate::Result;

/// The expected-aggregate rewriting.
#[derive(Debug, Clone, Default)]
pub struct RewriteExpected;

impl RewriteExpected {
    /// Rewrite an aggregate query into one computing expected aggregates.
    ///
    /// Requirements: the statement must use grouping/aggregation; no
    /// `DISTINCT`, no `HAVING` (a predicate over expected values has no
    /// candidate-database reading), no self-joins; aggregates limited to
    /// `COUNT(*)`, `SUM` and `AVG`.
    pub fn rewrite(&self, spec: &DirtySpec, stmt: &SelectStatement) -> Result<SelectStatement> {
        if stmt.distinct {
            return Err(NotRewritable::because(
                Def7Clause::SpjShape,
                "DISTINCT has no expected-value reading",
            )
            .into());
        }
        if stmt.having.is_some() {
            return Err(NotRewritable::because(
                Def7Clause::SpjShape,
                "HAVING over expected aggregates is not supported",
            )
            .into());
        }
        let has_agg = stmt
            .projection
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));
        if !has_agg && stmt.group_by.is_empty() {
            return Err(NotRewritable::because(
                Def7Clause::SpjShape,
                "not an aggregate query; use RewriteClean for SPJ queries",
            )
            .into());
        }
        for (i, t) in stmt.from.iter().enumerate() {
            if stmt.from[..i].iter().any(|p| p.table == t.table) {
                return Err(NotRewritable::because(
                    Def7Clause::NoSelfJoins,
                    format!("relation {:?} appears more than once in FROM", t.table),
                )
                .into());
            }
        }

        // The probability product of all FROM relations.
        let mut prob_factors = Vec::with_capacity(stmt.from.len());
        for tref in &stmt.from {
            let meta = spec.require(&tref.table)?;
            prob_factors.push(Expr::qualified(tref.binding_name(), &meta.prob_column));
        }
        let prod = Expr::product(prob_factors);

        let mut out = stmt.clone();
        for item in &mut out.projection {
            if let SelectItem::Expr { expr, .. } = item {
                *expr = rewrite_expr(expr, &prod)?;
            } else {
                return Err(NotRewritable::because(
                    Def7Clause::SpjShape,
                    "wildcard projections cannot be rewritten",
                )
                .into());
            }
        }
        for ob in &mut out.order_by {
            ob.expr = rewrite_expr(&ob.expr, &prod)?;
        }
        Ok(out)
    }
}

/// Recursively replace aggregate calls by their expected-value forms.
fn rewrite_expr(e: &Expr, prod: &Expr) -> Result<Expr> {
    Ok(match e {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            if *distinct {
                return Err(NotRewritable::because(
                    Def7Clause::SpjShape,
                    "DISTINCT aggregates have no linear expected-value form",
                )
                .into());
            }
            match (func, arg) {
                (AggFunc::Count, None) => sum(prod.clone()),
                (AggFunc::Count, Some(_)) => {
                    return Err(NotRewritable::because(
                        Def7Clause::SpjShape,
                        "COUNT(expr) is not supported (its NULL handling is not linear); \
                         use COUNT(*)",
                    )
                    .into())
                }
                (AggFunc::Sum, Some(arg)) => sum(Expr::binary(
                    (**arg).clone(),
                    conquer_sql::BinaryOp::Mul,
                    prod.clone(),
                )),
                (AggFunc::Avg, Some(arg)) => {
                    // ratio of expectations: E[Σ e·p] / E[Σ p]
                    let num = sum(Expr::binary(
                        (**arg).clone(),
                        conquer_sql::BinaryOp::Mul,
                        prod.clone(),
                    ));
                    let den = sum(prod.clone());
                    Expr::binary(num, conquer_sql::BinaryOp::Div, den)
                }
                (AggFunc::Min | AggFunc::Max, _) => {
                    return Err(NotRewritable::because(
                        Def7Clause::SpjShape,
                        format!(
                        "{} is not linear; expected-value rewriting supports COUNT(*), SUM, AVG",
                        func.name()
                    ),
                    )
                    .into())
                }
                (AggFunc::Sum | AggFunc::Avg, None) => {
                    unreachable!("parser rejects SUM(*)/AVG(*)")
                }
            }
        }
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_expr(expr, prod)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_expr(left, prod)?),
            op: *op,
            right: Box::new(rewrite_expr(right, prod)?),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_expr(expr, prod)?),
            pattern: Box::new(rewrite_expr(pattern, prod)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_expr(expr, prod)?),
            list: list
                .iter()
                .map(|e| rewrite_expr(e, prod))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_expr(expr, prod)?),
            low: Box::new(rewrite_expr(low, prod)?),
            high: Box::new(rewrite_expr(high, prod)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_expr(expr, prod)?),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| rewrite_expr(o, prod).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((rewrite_expr(w, prod)?, rewrite_expr(t, prod)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| rewrite_expr(e, prod).map(Box::new))
                .transpose()?,
        },
    })
}

fn sum(arg: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Sum,
        arg: Some(Box::new(arg)),
        distinct: false,
    }
}

/// Oracle for tests: compute expected aggregates by candidate enumeration.
/// Returns `(group-key part, expected aggregate values)` pairs, where the
/// split between keys and aggregates follows the projection (items without
/// aggregates are keys).
pub mod oracle {
    use std::collections::HashMap;

    use conquer_engine::Database;
    use conquer_sql::{SelectItem, SelectStatement};
    use conquer_storage::{Catalog, Row};

    use crate::error::CoreError;
    use crate::naive::{CandidateDatabases, NaiveOptions};
    use crate::spec::DirtySpec;
    use crate::Result;

    /// Expected aggregate answers by full enumeration (test oracle).
    pub fn naive_expected(
        catalog: &Catalog,
        spec: &DirtySpec,
        stmt: &SelectStatement,
        options: NaiveOptions,
    ) -> Result<Vec<(Row, Vec<f64>)>> {
        let key_positions: Vec<usize> = stmt
            .projection
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                SelectItem::Expr { expr, .. } if !expr.contains_aggregate() => Some(i),
                _ => None,
            })
            .collect();
        let agg_positions: Vec<usize> = (0..stmt.projection.len())
            .filter(|i| !key_positions.contains(i))
            .collect();

        let mut tables: Vec<String> = stmt.from.iter().map(|t| t.table.clone()).collect();
        tables.sort();
        tables.dedup();
        let candidates = CandidateDatabases::new(catalog, spec, &tables)?;
        if candidates.total_candidates() > options.max_candidates {
            return Err(CoreError::TooManyCandidates {
                candidates: candidates.total_candidates(),
                limit: options.max_candidates,
            });
        }

        let mut order: Vec<Row> = Vec::new();
        let mut sums: HashMap<Row, Vec<f64>> = HashMap::new();
        for (candidate, probability) in candidates {
            let db = Database::from_catalog(candidate);
            let result = db.prepare_select(stmt)?.query(&db)?;
            for row in result.rows {
                let key: Row = key_positions.iter().map(|&i| row[i].clone()).collect();
                let entry = sums.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    vec![0.0; agg_positions.len()]
                });
                for (slot, &i) in entry.iter_mut().zip(&agg_positions) {
                    // NULL aggregates (e.g. empty SUM) contribute nothing.
                    if let Some(v) = row[i].as_f64() {
                        *slot += probability * v;
                    }
                }
            }
        }
        Ok(order
            .into_iter()
            .map(|k| (k.clone(), sums[&k].clone()))
            .collect())
    }
}

pub use oracle::naive_expected;

/// Convenience: check + rewrite + execute on a [`crate::DirtyDatabase`].
impl crate::dirty::DirtyDatabase {
    /// Expected-value answers for an aggregate query (see [`RewriteExpected`]).
    ///
    /// ```
    /// use conquer_engine::Database;
    /// use conquer_core::{DirtyDatabase, DirtySpec};
    ///
    /// let mut db = Database::new();
    /// db.execute_script(
    ///     "CREATE TABLE t (id TEXT, v INTEGER, prob DOUBLE);
    ///      INSERT INTO t VALUES ('a', 10, 0.5), ('a', 20, 0.5), ('b', 7, 1.0)",
    /// )
    /// .unwrap();
    /// let dirty = DirtyDatabase::new(db, DirtySpec::uniform(&["t"])).unwrap();
    /// let res = dirty
    ///     .expected_answers("SELECT id, SUM(v), COUNT(*) FROM t GROUP BY id ORDER BY id")
    ///     .unwrap();
    /// // cluster a: E[SUM v] = 0.5·10 + 0.5·20 = 15; E[COUNT] = 1.
    /// assert_eq!(res.rows[0][1].as_f64(), Some(15.0));
    /// assert_eq!(res.rows[0][2].as_f64(), Some(1.0));
    /// assert_eq!(res.rows[1][1].as_f64(), Some(7.0));
    /// ```
    pub fn expected_answers(&self, sql: &str) -> Result<conquer_engine::QueryResult> {
        let stmt = conquer_sql::parse_select(sql).map_err(CoreError::from)?;
        let rewritten = RewriteExpected.rewrite(self.spec(), &stmt)?;
        self.db()
            .prepare_select(&rewritten)?
            .query(self.db())
            .map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::DirtyDatabase;
    use crate::naive::NaiveOptions;
    use conquer_engine::Database;
    use conquer_sql::parse_select;

    /// The Figure-2 database again.
    fn figure2() -> DirtyDatabase {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE orders (id TEXT, cidfk TEXT, quantity INTEGER, prob DOUBLE);
             INSERT INTO orders VALUES
               ('o1', 'c1', 3, 1.0), ('o2', 'c1', 2, 0.5), ('o2', 'c2', 5, 0.5);
             CREATE TABLE customer (id TEXT, name TEXT, balance INTEGER, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'John', 20000, 0.7), ('c1', 'John', 30000, 0.3),
               ('c2', 'Mary', 27000, 0.2), ('c2', 'Marion', 5000, 0.8);",
        )
        .unwrap();
        DirtyDatabase::new(db, DirtySpec::uniform(&["orders", "customer"])).unwrap()
    }

    #[test]
    fn rewriting_text() {
        let dirty = figure2();
        let stmt = parse_select(
            "select c.id, count(*), sum(o.quantity) from orders o, customer c \
             where o.cidfk = c.id group by c.id",
        )
        .unwrap();
        let rw = RewriteExpected.rewrite(dirty.spec(), &stmt).unwrap();
        assert_eq!(
            rw.to_string(),
            "SELECT c.id, SUM(o.prob * c.prob), SUM(o.quantity * (o.prob * c.prob)) \
             FROM orders o, customer c WHERE o.cidfk = c.id GROUP BY c.id"
        );
    }

    #[test]
    fn expected_count_matches_enumeration() {
        let dirty = figure2();
        let sql = "select c.id, count(*) from orders o, customer c \
                   where o.cidfk = c.id and c.balance > 10000 group by c.id order by c.id";
        let stmt = parse_select(sql).unwrap();
        let res = dirty.expected_answers(sql).unwrap();
        let oracle = naive_expected(
            dirty.db().catalog(),
            dirty.spec(),
            &stmt,
            NaiveOptions::default(),
        )
        .unwrap();
        // Align oracle (unordered) with result rows.
        for (key, vals) in oracle {
            let row = res
                .rows
                .iter()
                .find(|r| r[0] == key[0])
                .unwrap_or_else(|| panic!("group {key:?} missing"));
            let got = row[1].as_f64().unwrap();
            assert!((got - vals[0]).abs() < 1e-12, "{key:?}: {got} vs {vals:?}");
        }
    }

    #[test]
    fn expected_sum_and_avg() {
        let dirty = figure2();
        // Expected quantity mass per customer entity.
        let res = dirty
            .expected_answers(
                "select c.id, sum(o.quantity), avg(o.quantity) \
                 from orders o, customer c where o.cidfk = c.id \
                 group by c.id order by c.id",
            )
            .unwrap();
        // c1: o1 (q=3, p=1·1) + o2-variant (q=2, p=0.5·1) = 4.0
        //     (customer c1's own prob sums to 1 across its two tuples)
        assert!((res.rows[0][1].as_f64().unwrap() - 4.0).abs() < 1e-12);
        // c2: o2-variant (q=5, p=0.5·(0.2+0.8)) = 2.5
        assert!((res.rows[1][1].as_f64().unwrap() - 2.5).abs() < 1e-12);
        // AVG = ratio of expectations: c1: 4.0 / E[count]=1.5 ≈ 2.6667
        assert!((res.rows[0][2].as_f64().unwrap() - 4.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let dirty = figure2();
        let res = dirty
            .expected_answers("select count(*), sum(quantity) from orders o")
            .unwrap();
        // E[#orders] = 2 (o1 certain, o2 exactly one variant);
        // E[Σ quantity] = 3 + 0.5·2 + 0.5·5 = 6.5
        assert!((res.rows[0][0].as_f64().unwrap() - 2.0).abs() < 1e-12);
        assert!((res.rows[0][1].as_f64().unwrap() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let dirty = figure2();
        for sql in [
            "select id, min(quantity) from orders o group by id",
            "select id, max(quantity) from orders o group by id",
            "select id, count(quantity) from orders o group by id",
            "select id, count(distinct quantity) from orders o group by id",
            "select id from orders o where quantity > 1",
            "select id, count(*) from orders o group by id having count(*) > 1",
        ] {
            let err = dirty.expected_answers(sql).unwrap_err();
            assert!(matches!(err, CoreError::NotRewritable(_)), "{sql}: {err}");
        }
    }

    #[test]
    fn self_join_rejected() {
        let dirty = figure2();
        let err = dirty
            .expected_answers("select a.id, count(*) from orders a, orders b group by a.id")
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(r) if r.violates(Def7Clause::NoSelfJoins)
        ));
    }

    #[test]
    fn works_beyond_the_tree_class() {
        // A non-identifier join (outside Definition 7) — clean answers
        // reject it, expected aggregates do not need the tree property.
        let dirty = figure2();
        let res = dirty
            .expected_answers(
                "select count(*) from orders o, customer c where o.quantity = c.balance",
            )
            .unwrap();
        assert_eq!(res.rows.len(), 1);
        // SQL's SUM over zero rows is NULL; an absent group's expected
        // count reads as NULL-meaning-zero (standard SUM semantics).
        assert!(res.rows[0][0].is_null() || res.rows[0][0].as_f64() == Some(0.0));
    }
}
