//! The join graph (Definition 6) and the rewritable-query test
//! (Definition 7).
//!
//! Vertices are the FROM relations; there is an arc `Ri → Rj` whenever a
//! *non-identifier* attribute of `Ri` is equated with the *identifier*
//! attribute of `Rj` (the typical foreign-key-to-identifier join after
//! identifier propagation). A query is rewritable iff
//!
//! 1. every join involves the identifier of at least one relation,
//! 2. the join graph is a tree,
//! 3. no relation appears twice in FROM (no self-joins),
//! 4. the identifier of the root relation appears in the select clause.

use conquer_engine::binder::{bind_select, BoundSelect};
use conquer_engine::{BoundExpr, ColumnId};
use conquer_sql::{BinaryOp, SelectStatement};
use conquer_storage::Catalog;

use crate::error::{CoreError, NotRewritable};
use crate::spec::DirtySpec;
use crate::Result;

/// The join graph of a query over a dirty database.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Binding names of the FROM relations (vertex index = FROM position).
    pub bindings: Vec<String>,
    /// Table name per vertex.
    pub tables: Vec<String>,
    /// Identifier-column position per vertex.
    pub id_columns: Vec<usize>,
    /// Probability-column position per vertex.
    pub prob_columns: Vec<usize>,
    /// Arcs `from → to` (deduplicated).
    pub arcs: Vec<(usize, usize)>,
    /// Root vertex if the graph is a rooted tree.
    pub root: Option<usize>,
}

impl JoinGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// True when the directed graph is a tree spanning all vertices.
    pub fn is_tree(&self) -> bool {
        self.root.is_some()
    }

    /// Render as `a -> b, a -> c` for diagnostics.
    pub fn describe(&self) -> String {
        if self.arcs.is_empty() {
            return format!("{} isolated vertex/vertices", self.len());
        }
        self.arcs
            .iter()
            .map(|(f, t)| format!("{} -> {}", self.bindings[*f], self.bindings[*t]))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Build the join graph and check all four rewritability conditions,
/// returning the graph (with its root) on success.
pub fn check_rewritable(
    catalog: &Catalog,
    spec: &DirtySpec,
    stmt: &SelectStatement,
) -> Result<JoinGraph> {
    // --- SPJ shape preconditions -----------------------------------------
    if stmt.distinct {
        return Err(NotRewritable::NotSpj("DISTINCT is not allowed".into()).into());
    }
    if !stmt.group_by.is_empty() || stmt.having.is_some() {
        return Err(NotRewritable::NotSpj("GROUP BY/HAVING are not allowed".into()).into());
    }
    let has_agg = stmt.projection.iter().any(
        |i| matches!(i, conquer_sql::SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
    ) || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());
    if has_agg {
        return Err(NotRewritable::NotSpj("aggregates are not allowed".into()).into());
    }

    // --- Condition 3: self-joins ------------------------------------------
    for (i, t) in stmt.from.iter().enumerate() {
        if stmt.from[..i].iter().any(|p| p.table == t.table) {
            return Err(NotRewritable::SelfJoin(t.table.clone()).into());
        }
    }

    // --- Resolve relations and their dirty metadata ------------------------
    let bound: BoundSelect = bind_select(catalog, stmt)?;
    let n = bound.relations.len();
    let mut id_columns = Vec::with_capacity(n);
    let mut prob_columns = Vec::with_capacity(n);
    for rel in &bound.relations {
        let meta = spec
            .meta(&rel.table)
            .ok_or_else(|| NotRewritable::UnknownDirtyRelation(rel.table.clone()))?;
        let id = rel.schema.index_of(&meta.id_column).ok_or_else(|| {
            CoreError::InvalidDirty(format!(
                "table {:?} is missing its identifier column {:?}",
                rel.table, meta.id_column
            ))
        })?;
        let prob = rel.schema.index_of(&meta.prob_column).ok_or_else(|| {
            CoreError::InvalidDirty(format!(
                "table {:?} is missing its probability column {:?}",
                rel.table, meta.prob_column
            ))
        })?;
        id_columns.push(id);
        prob_columns.push(prob);
    }

    // --- Classify WHERE conjuncts; build arcs (Definition 6) --------------
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    if let Some(filter) = &bound.filter {
        for conjunct in conjuncts(filter) {
            let rels = conjunct.relations();
            if rels.len() <= 1 {
                continue; // per-relation selection: unrestricted
            }
            if rels.len() > 2 {
                return Err(NotRewritable::NonEquiJoin(format!(
                    "a predicate spans {} relations",
                    rels.len()
                ))
                .into());
            }
            // Exactly two relations: must be column = column.
            let BoundExpr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = conjunct
            else {
                return Err(NotRewritable::NonEquiJoin(describe_conjunct(conjunct, &bound)).into());
            };
            let (BoundExpr::Column(a), BoundExpr::Column(b)) = (&**left, &**right) else {
                return Err(NotRewritable::NonEquiJoin(describe_conjunct(conjunct, &bound)).into());
            };
            let a_is_id = id_columns[a.rel] == a.col;
            let b_is_id = id_columns[b.rel] == b.col;
            match (a_is_id, b_is_id) {
                (false, false) => {
                    return Err(NotRewritable::JoinWithoutIdentifier(format!(
                        "{}.{} = {}.{}",
                        bound.relations[a.rel].binding,
                        column_name(&bound, *a),
                        bound.relations[b.rel].binding,
                        column_name(&bound, *b),
                    ))
                    .into())
                }
                (false, true) => push_arc(&mut arcs, a.rel, b.rel),
                (true, false) => push_arc(&mut arcs, b.rel, a.rel),
                // identifier = identifier joins are allowed (condition 1)
                // but contribute no arc.
                (true, true) => {}
            }
        }
    }

    let bindings: Vec<String> = bound.relations.iter().map(|r| r.binding.clone()).collect();
    let tables: Vec<String> = bound.relations.iter().map(|r| r.table.clone()).collect();

    // --- Condition 2: the graph must be a rooted tree ----------------------
    let root = tree_root(n, &arcs).map_err(|msg| {
        CoreError::from(NotRewritable::GraphNotTree(format!(
            "{msg} (arcs: {})",
            JoinGraph {
                bindings: bindings.clone(),
                tables: tables.clone(),
                id_columns: id_columns.clone(),
                prob_columns: prob_columns.clone(),
                arcs: arcs.clone(),
                root: None,
            }
            .describe()
        )))
    })?;

    // --- Condition 4: root identifier in the select clause -----------------
    let root_id = ColumnId {
        rel: root,
        col: id_columns[root],
    };
    let selected = bound
        .output
        .iter()
        .any(|o| o.expr == BoundExpr::Column(root_id));
    if !selected {
        return Err(NotRewritable::RootIdentifierNotSelected {
            root: bindings[root].clone(),
            id_column: bound.relations[root]
                .schema
                .column_at(id_columns[root])
                .expect("validated")
                .name()
                .to_string(),
        }
        .into());
    }

    Ok(JoinGraph {
        bindings,
        tables,
        id_columns,
        prob_columns,
        arcs,
        root: Some(root),
    })
}

fn push_arc(arcs: &mut Vec<(usize, usize)>, from: usize, to: usize) {
    if !arcs.contains(&(from, to)) {
        arcs.push((from, to));
    }
}

fn column_name(bound: &BoundSelect, id: ColumnId) -> String {
    bound.relations[id.rel]
        .schema
        .column_at(id.col)
        .map(|c| c.name().to_string())
        .unwrap_or_else(|| format!("#{}", id.col))
}

fn describe_conjunct(e: &BoundExpr, bound: &BoundSelect) -> String {
    let rels: Vec<&str> = e
        .relations()
        .iter()
        .map(|r| bound.relations[*r].binding.as_str())
        .collect();
    format!(
        "a non-equality predicate connects relations {}",
        rels.join(", ")
    )
}

fn conjuncts(e: &BoundExpr) -> Vec<&BoundExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a BoundExpr, out: &mut Vec<&'a BoundExpr>) {
        if let BoundExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// If the directed graph on `n` vertices is a tree spanning all vertices,
/// return its root; otherwise explain why not.
fn tree_root(n: usize, arcs: &[(usize, usize)]) -> std::result::Result<usize, String> {
    let mut indegree = vec![0usize; n];
    for (_, t) in arcs {
        indegree[*t] += 1;
    }
    let roots: Vec<usize> = (0..n).filter(|v| indegree[*v] == 0).collect();
    if roots.len() != 1 {
        return Err(format!(
            "a tree needs exactly one root (vertex with in-degree 0), found {}",
            roots.len()
        ));
    }
    if let Some(v) = (0..n).find(|v| indegree[*v] > 1) {
        return Err(format!("vertex {v} has in-degree {} (> 1)", indegree[v]));
    }
    // in-degrees are 0 for the root and 1 elsewhere ⇒ |arcs| = n-1; check
    // reachability to exclude cycles detached from the root.
    let root = roots[0];
    let mut seen = vec![false; n];
    let mut stack = vec![root];
    seen[root] = true;
    while let Some(v) = stack.pop() {
        for (f, t) in arcs {
            if *f == v && !seen[*t] {
                seen[*t] = true;
                stack.push(*t);
            }
        }
    }
    if seen.iter().all(|s| *s) {
        Ok(root)
    } else {
        Err("the join graph is not connected".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DirtySpec;
    use conquer_engine::Database;
    use conquer_sql::parse_select;

    /// The paper's Figure 2 schema: order(id, orderid, custfk, cidfk,
    /// quantity, prob) and customer(id, custid, name, balance, prob).
    fn setup() -> (Catalog, DirtySpec) {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE customer (id TEXT, custid TEXT, name TEXT, balance INTEGER, prob DOUBLE);
             CREATE TABLE orders (id TEXT, orderid TEXT, custfk TEXT, cidfk TEXT, quantity INTEGER, prob DOUBLE);
             CREATE TABLE loyalty (id TEXT, custfk TEXT, cidfk TEXT, prob DOUBLE);",
        )
        .unwrap();
        let spec = DirtySpec::uniform(&["customer", "orders", "loyalty"]);
        (db.catalog().clone(), spec)
    }

    fn check(sql: &str) -> Result<JoinGraph> {
        let (cat, spec) = setup();
        check_rewritable(&cat, &spec, &parse_select(sql).unwrap())
    }

    #[test]
    fn single_relation_query_is_rewritable() {
        let g = check("select id from customer where balance > 10000").unwrap();
        assert_eq!(g.root, Some(0));
        assert!(g.arcs.is_empty());
    }

    #[test]
    fn fk_join_is_rewritable_with_order_as_root() {
        let g = check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.balance > 10000",
        )
        .unwrap();
        assert_eq!(g.root, Some(0));
        assert_eq!(g.arcs, vec![(0, 1)]);
        assert_eq!(g.describe(), "o -> c");
    }

    #[test]
    fn example7_root_id_not_selected() {
        // The paper's Example 7: id of `orders` (the root) is not projected.
        let err = check(
            "select c.id from orders o, customer c \
             where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000",
        )
        .unwrap_err();
        match err {
            CoreError::NotRewritable(NotRewritable::RootIdentifierNotSelected {
                root,
                id_column,
            }) => {
                assert_eq!(root, "o");
                assert_eq!(id_column, "id");
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn non_identifier_join_rejected() {
        let err = check("select o.id, c.id from orders o, customer c where o.custfk = c.custid")
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::JoinWithoutIdentifier(_))
        ));
    }

    #[test]
    fn self_join_rejected() {
        let err = check("select a.id from customer a, customer b where a.id = b.id").unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::SelfJoin(_))
        ));
    }

    #[test]
    fn non_equi_join_rejected() {
        let err = check("select o.id, c.id from orders o, customer c where o.quantity < c.balance")
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::NonEquiJoin(_))
        ));
    }

    #[test]
    fn disjunctive_join_rejected_but_local_disjunction_ok() {
        let err = check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id or o.custfk = c.id",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::NonEquiJoin(_))
        ));
        // Disjunction local to one relation is a selection and is fine.
        check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and (c.balance > 10 or c.name = 'John')",
        )
        .unwrap();
    }

    #[test]
    fn disconnected_graph_rejected() {
        let err = check("select o.id, c.id from orders o, customer c").unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::GraphNotTree(_))
        ));
    }

    #[test]
    fn two_children_tree_ok() {
        // orders → customer and loyalty → customer is NOT a tree (two roots);
        // but orders → customer plus orders → loyalty is (root = orders).
        let err = check(
            "select o.id, c.id, l.id from orders o, customer c, loyalty l \
             where o.cidfk = c.id and l.cidfk = c.id",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::GraphNotTree(_))
        ));

        let g = check(
            "select l.id, o.id, c.id from loyalty l, orders o, customer c \
             where l.custfk = o.id and l.cidfk = c.id",
        )
        .unwrap();
        assert_eq!(g.root, Some(0));
        assert_eq!(g.arcs.len(), 2);
    }

    #[test]
    fn id_to_id_join_contributes_no_arc() {
        // Allowed by condition 1 but leaves the graph disconnected → not a
        // tree for two relations.
        let err =
            check("select o.id, c.id from orders o, customer c where o.id = c.id").unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::GraphNotTree(_))
        ));
    }

    #[test]
    fn aggregate_and_distinct_shapes_rejected() {
        for sql in [
            "select distinct id from customer",
            "select id, count(*) from customer group by id",
            "select sum(balance) from customer",
        ] {
            let err = check(sql).unwrap_err();
            assert!(
                matches!(err, CoreError::NotRewritable(NotRewritable::NotSpj(_))),
                "{sql}: {err}"
            );
        }
    }

    #[test]
    fn unknown_dirty_relation_reported() {
        let (cat, _) = setup();
        let spec = DirtySpec::uniform(&["customer"]); // orders missing
        let err = check_rewritable(
            &cat,
            &spec,
            &parse_select("select o.id from orders o").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotRewritable(NotRewritable::UnknownDirtyRelation(_))
        ));
    }

    #[test]
    fn duplicate_arc_deduplicated() {
        let g = check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.id = o.cidfk and c.balance > 0",
        )
        .unwrap();
        assert_eq!(g.arcs.len(), 1);
    }
}
