//! The join graph (Definition 6) and the rewritable-query test
//! (Definition 7).
//!
//! Vertices are the FROM relations; there is an arc `Ri → Rj` whenever a
//! *non-identifier* attribute of `Ri` is equated with the *identifier*
//! attribute of `Rj` (the typical foreign-key-to-identifier join after
//! identifier propagation). A query is rewritable iff
//!
//! 1. every join involves the identifier of at least one relation,
//! 2. the join graph is a tree,
//! 3. no relation appears twice in FROM (no self-joins),
//! 4. the identifier of the root relation appears in the select clause.

use conquer_engine::analyze::expr_span;
use conquer_engine::binder::{bind_select, BoundSelect};
use conquer_engine::{BoundExpr, ColumnId};
use conquer_sql::{BinaryOp, Expr, SelectStatement, Span};
use conquer_storage::Catalog;

use crate::error::{CoreError, Def7Clause, NotRewritable, RewriteObstacle};
use crate::spec::DirtySpec;
use crate::Result;

/// The join graph of a query over a dirty database.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Binding names of the FROM relations (vertex index = FROM position).
    pub bindings: Vec<String>,
    /// Table name per vertex.
    pub tables: Vec<String>,
    /// Identifier-column position per vertex.
    pub id_columns: Vec<usize>,
    /// Probability-column position per vertex.
    pub prob_columns: Vec<usize>,
    /// Arcs `from → to` (deduplicated).
    pub arcs: Vec<(usize, usize)>,
    /// Root vertex if the graph is a rooted tree.
    pub root: Option<usize>,
}

impl JoinGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// True when the directed graph is a tree spanning all vertices.
    pub fn is_tree(&self) -> bool {
        self.root.is_some()
    }

    /// Render as `a -> b, a -> c` for diagnostics.
    pub fn describe(&self) -> String {
        if self.arcs.is_empty() {
            return format!("{} isolated vertex/vertices", self.len());
        }
        self.arcs
            .iter()
            .map(|(f, t)| format!("{} -> {}", self.bindings[*f], self.bindings[*t]))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Build the join graph and check all four rewritability conditions,
/// returning the graph (with its root) on success and the full
/// [`NotRewritable`] reason tree otherwise.
pub fn check_rewritable(
    catalog: &Catalog,
    spec: &DirtySpec,
    stmt: &SelectStatement,
) -> Result<JoinGraph> {
    match explain_rewritable(catalog, spec, stmt)? {
        Ok(graph) => Ok(graph),
        Err(reason) => Err(reason.into()),
    }
}

/// The rewritability explainer behind [`check_rewritable`]: instead of
/// failing on the first problem, collect *every* visible obstacle into a
/// [`NotRewritable`] reason tree, each node citing the violated clause of
/// Definition 7 and the source span of the offending fragment.
///
/// The outer `Result` carries hard errors (binding failures, invalid dirty
/// metadata); the inner one is the verdict.
pub fn explain_rewritable(
    catalog: &Catalog,
    spec: &DirtySpec,
    stmt: &SelectStatement,
) -> Result<std::result::Result<JoinGraph, NotRewritable>> {
    let mut obstacles: Vec<RewriteObstacle> = Vec::new();

    // --- SPJ shape preconditions -----------------------------------------
    if stmt.distinct {
        obstacles.push(RewriteObstacle::new(
            Def7Clause::SpjShape,
            "DISTINCT is not allowed",
        ));
    }
    if !stmt.group_by.is_empty() || stmt.having.is_some() {
        obstacles.push(RewriteObstacle::new(
            Def7Clause::SpjShape,
            "GROUP BY/HAVING are not allowed",
        ));
    }
    for item in &stmt.projection {
        if let conquer_sql::SelectItem::Expr { expr, .. } = item {
            if expr.contains_aggregate() {
                obstacles.push(
                    RewriteObstacle::new(Def7Clause::SpjShape, "aggregates are not allowed")
                        .with_span(expr_span(expr)),
                );
            }
        }
    }
    for o in &stmt.order_by {
        if o.expr.contains_aggregate() {
            obstacles.push(
                RewriteObstacle::new(Def7Clause::SpjShape, "aggregates are not allowed")
                    .with_span(expr_span(&o.expr)),
            );
        }
    }

    // --- Condition 3: self-joins ------------------------------------------
    for (i, t) in stmt.from.iter().enumerate() {
        if stmt.from[..i].iter().any(|p| p.table == t.table) {
            obstacles.push(
                RewriteObstacle::new(
                    Def7Clause::NoSelfJoins,
                    format!("relation {:?} appears more than once in FROM", t.table),
                )
                .with_span(t.span),
            );
        }
    }

    // --- Resolve relations and their dirty metadata ------------------------
    let bound: BoundSelect = match bind_select(catalog, stmt) {
        Ok(b) => b,
        // A query that does not even bind: if shape obstacles explain the
        // situation, report them; otherwise surface the bind error.
        Err(e) => {
            return if obstacles.is_empty() {
                Err(e.into())
            } else {
                Ok(Err(NotRewritable::new(obstacles)))
            };
        }
    };
    let n = bound.relations.len();
    let mut id_columns: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut prob_columns: Vec<Option<usize>> = Vec::with_capacity(n);
    for (ri, rel) in bound.relations.iter().enumerate() {
        let Some(meta) = spec.meta(&rel.table) else {
            obstacles.push(
                RewriteObstacle::new(
                    Def7Clause::DirtyMetadata,
                    format!(
                        "relation {:?} has no identifier/probability metadata in the DirtySpec",
                        rel.table
                    ),
                )
                .with_span(from_span(stmt, ri)),
            );
            id_columns.push(None);
            prob_columns.push(None);
            continue;
        };
        let id = rel.schema.index_of(&meta.id_column).ok_or_else(|| {
            CoreError::InvalidDirty(format!(
                "table {:?} is missing its identifier column {:?}",
                rel.table, meta.id_column
            ))
        })?;
        let prob = rel.schema.index_of(&meta.prob_column).ok_or_else(|| {
            CoreError::InvalidDirty(format!(
                "table {:?} is missing its probability column {:?}",
                rel.table, meta.prob_column
            ))
        })?;
        id_columns.push(Some(id));
        prob_columns.push(Some(prob));
    }

    // --- Classify WHERE conjuncts; build arcs (Definition 6) --------------
    // Bound conjuncts pair 1:1 (in order) with the AST conjuncts of the
    // WHERE clause, which carry the source spans.
    let ast_conjs: Vec<&Expr> = stmt
        .selection
        .as_ref()
        .map(ast_conjuncts)
        .unwrap_or_default();
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    if let Some(filter) = &bound.filter {
        for (ci, conjunct) in conjuncts(filter).into_iter().enumerate() {
            let span = ast_conjs
                .get(ci)
                .map(|e| expr_span(e))
                .unwrap_or(Span::NONE);
            let rels = conjunct.relations();
            if rels.len() <= 1 {
                continue; // per-relation selection: unrestricted
            }
            if rels.len() > 2 {
                obstacles.push(
                    RewriteObstacle::new(
                        Def7Clause::EquiJoins,
                        format!("a predicate spans {} relations", rels.len()),
                    )
                    .with_span(span),
                );
                continue;
            }
            // Exactly two relations: must be column = column.
            let BoundExpr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = conjunct
            else {
                obstacles.push(
                    RewriteObstacle::new(
                        Def7Clause::EquiJoins,
                        describe_conjunct(conjunct, &bound),
                    )
                    .with_span(span),
                );
                continue;
            };
            let (BoundExpr::Column(a), BoundExpr::Column(b)) = (&**left, &**right) else {
                obstacles.push(
                    RewriteObstacle::new(
                        Def7Clause::EquiJoins,
                        describe_conjunct(conjunct, &bound),
                    )
                    .with_span(span),
                );
                continue;
            };
            // Missing metadata on either side is already an obstacle; the
            // identifier test is meaningless without it.
            let (Some(a_id), Some(b_id)) = (id_columns[a.rel], id_columns[b.rel]) else {
                continue;
            };
            let a_is_id = a_id == a.col;
            let b_is_id = b_id == b.col;
            match (a_is_id, b_is_id) {
                (false, false) => obstacles.push(
                    RewriteObstacle::new(
                        Def7Clause::JoinsUseIdentifiers,
                        format!(
                            "{}.{} = {}.{} equates two non-identifier attributes",
                            bound.relations[a.rel].binding,
                            column_name(&bound, *a),
                            bound.relations[b.rel].binding,
                            column_name(&bound, *b),
                        ),
                    )
                    .with_span(span),
                ),
                (false, true) => push_arc(&mut arcs, a.rel, b.rel),
                (true, false) => push_arc(&mut arcs, b.rel, a.rel),
                // identifier = identifier joins are allowed (condition 1)
                // but contribute no arc.
                (true, true) => {}
            }
        }
    }

    // Structural problems invalidate the graph itself — conditions 2 and 4
    // are only meaningful once the obstacles above are fixed.
    if !obstacles.is_empty() {
        return Ok(Err(NotRewritable::new(obstacles)));
    }
    let id_columns: Vec<usize> = id_columns.into_iter().flatten().collect();
    let prob_columns: Vec<usize> = prob_columns.into_iter().flatten().collect();
    let bindings: Vec<String> = bound.relations.iter().map(|r| r.binding.clone()).collect();
    let tables: Vec<String> = bound.relations.iter().map(|r| r.table.clone()).collect();

    // --- Condition 2: the graph must be a rooted tree ----------------------
    let root = match tree_root(n, &arcs) {
        Ok(root) => root,
        Err(problems) => {
            let mut parent = RewriteObstacle::new(
                Def7Clause::GraphIsTree,
                format!(
                    "the join graph is not a rooted tree (arcs: {})",
                    JoinGraph {
                        bindings,
                        tables,
                        id_columns,
                        prob_columns,
                        arcs,
                        root: None,
                    }
                    .describe()
                ),
            );
            for p in problems {
                parent = parent.with_child(RewriteObstacle::new(Def7Clause::GraphIsTree, p));
            }
            return Ok(Err(NotRewritable::new(vec![parent])));
        }
    };

    // --- Condition 4: root identifier in the select clause -----------------
    let root_id = ColumnId {
        rel: root,
        col: id_columns[root],
    };
    let selected = bound
        .output
        .iter()
        .any(|o| o.expr == BoundExpr::Column(root_id));
    if !selected {
        let id_name = bound.relations[root]
            .schema
            .column_at(id_columns[root])
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| format!("#{}", id_columns[root]));
        return Ok(Err(NotRewritable::new(vec![RewriteObstacle::new(
            Def7Clause::RootIdProjected,
            format!(
                "the identifier {root}.{id} of the join-graph root must appear in the \
                 select clause; add it to the projection",
                root = bindings[root],
                id = id_name,
            ),
        )
        .with_span(from_span(stmt, root))])));
    }

    Ok(Ok(JoinGraph {
        bindings,
        tables,
        id_columns,
        prob_columns,
        arcs,
        root: Some(root),
    }))
}

/// Span of the `i`-th FROM entry (or none, defensively).
fn from_span(stmt: &SelectStatement, i: usize) -> Span {
    stmt.from.get(i).map(|t| t.span).unwrap_or(Span::NONE)
}

/// Split an AST predicate into its top-level AND conjuncts, mirroring
/// [`conjuncts`] over bound expressions so the two line up by index.
fn ast_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

fn push_arc(arcs: &mut Vec<(usize, usize)>, from: usize, to: usize) {
    if !arcs.contains(&(from, to)) {
        arcs.push((from, to));
    }
}

fn column_name(bound: &BoundSelect, id: ColumnId) -> String {
    bound.relations[id.rel]
        .schema
        .column_at(id.col)
        .map(|c| c.name().to_string())
        .unwrap_or_else(|| format!("#{}", id.col))
}

fn describe_conjunct(e: &BoundExpr, bound: &BoundSelect) -> String {
    let rels: Vec<&str> = e
        .relations()
        .iter()
        .map(|r| bound.relations[*r].binding.as_str())
        .collect();
    format!(
        "a non-equality predicate connects relations {}",
        rels.join(", ")
    )
}

fn conjuncts(e: &BoundExpr) -> Vec<&BoundExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a BoundExpr, out: &mut Vec<&'a BoundExpr>) {
        if let BoundExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// If the directed graph on `n` vertices is a tree spanning all vertices,
/// return its root; otherwise list every structural defect found.
fn tree_root(n: usize, arcs: &[(usize, usize)]) -> std::result::Result<usize, Vec<String>> {
    let mut problems = Vec::new();
    let mut indegree = vec![0usize; n];
    for (_, t) in arcs {
        indegree[*t] += 1;
    }
    let roots: Vec<usize> = (0..n).filter(|v| indegree[*v] == 0).collect();
    if roots.len() != 1 {
        problems.push(format!(
            "a tree needs exactly one root (vertex with in-degree 0), found {}",
            roots.len()
        ));
    }
    for (v, &deg) in indegree.iter().enumerate() {
        if deg > 1 {
            problems.push(format!("vertex {v} has in-degree {deg} (> 1)"));
        }
    }
    // For a well-formed candidate root (in-degrees 0 once and 1 elsewhere ⇒
    // |arcs| = n-1), check reachability to exclude cycles detached from it.
    if problems.is_empty() {
        let root = roots[0];
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(v) = stack.pop() {
            for (f, t) in arcs {
                if *f == v && !seen[*t] {
                    seen[*t] = true;
                    stack.push(*t);
                }
            }
        }
        if seen.iter().all(|s| *s) {
            return Ok(root);
        }
        problems.push("the join graph is not connected".into());
    }
    Err(problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DirtySpec;
    use conquer_engine::Database;
    use conquer_sql::parse_select;

    /// The paper's Figure 2 schema: order(id, orderid, custfk, cidfk,
    /// quantity, prob) and customer(id, custid, name, balance, prob).
    fn setup() -> (Catalog, DirtySpec) {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE customer (id TEXT, custid TEXT, name TEXT, balance INTEGER, prob DOUBLE);
             CREATE TABLE orders (id TEXT, orderid TEXT, custfk TEXT, cidfk TEXT, quantity INTEGER, prob DOUBLE);
             CREATE TABLE loyalty (id TEXT, custfk TEXT, cidfk TEXT, prob DOUBLE);",
        )
        .unwrap();
        let spec = DirtySpec::uniform(&["customer", "orders", "loyalty"]);
        (db.catalog().clone(), spec)
    }

    fn check(sql: &str) -> Result<JoinGraph> {
        let (cat, spec) = setup();
        check_rewritable(&cat, &spec, &parse_select(sql).unwrap())
    }

    /// Unwrap the reason tree out of a `check` failure.
    fn reason(err: CoreError) -> NotRewritable {
        match err {
            CoreError::NotRewritable(r) => r,
            other => panic!("expected NotRewritable, got: {other}"),
        }
    }

    #[test]
    fn single_relation_query_is_rewritable() {
        let g = check("select id from customer where balance > 10000").unwrap();
        assert_eq!(g.root, Some(0));
        assert!(g.arcs.is_empty());
    }

    #[test]
    fn fk_join_is_rewritable_with_order_as_root() {
        let g = check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.balance > 10000",
        )
        .unwrap();
        assert_eq!(g.root, Some(0));
        assert_eq!(g.arcs, vec![(0, 1)]);
        assert_eq!(g.describe(), "o -> c");
    }

    #[test]
    fn example7_root_id_not_selected() {
        // The paper's Example 7: id of `orders` (the root) is not projected.
        let err = check(
            "select c.id from orders o, customer c \
             where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000",
        )
        .unwrap_err();
        let r = reason(err);
        assert!(r.violates(Def7Clause::RootIdProjected), "{r}");
        assert!(r.obstacles[0].message.contains("o.id"), "{r}");
        // Span points at the root's FROM entry.
        assert!(!r.obstacles[0].span.is_none(), "{r:?}");
    }

    #[test]
    fn non_identifier_join_rejected() {
        let sql = "select o.id, c.id from orders o, customer c where o.custfk = c.custid";
        let r = reason(check(sql).unwrap_err());
        assert!(r.violates(Def7Clause::JoinsUseIdentifiers), "{r}");
        assert!(r.obstacles[0].message.contains("o.custfk"), "{r}");
        // The span covers the offending conjunct.
        let (s, e) = (
            r.obstacles[0].span.start as usize,
            r.obstacles[0].span.end as usize,
        );
        assert_eq!(&sql[s..e], "o.custfk = c.custid");
    }

    #[test]
    fn self_join_rejected() {
        let r =
            reason(check("select a.id from customer a, customer b where a.id = b.id").unwrap_err());
        assert!(r.violates(Def7Clause::NoSelfJoins), "{r}");
    }

    #[test]
    fn non_equi_join_rejected() {
        let r = reason(
            check("select o.id, c.id from orders o, customer c where o.quantity < c.balance")
                .unwrap_err(),
        );
        assert!(r.violates(Def7Clause::EquiJoins), "{r}");
    }

    #[test]
    fn disjunctive_join_rejected_but_local_disjunction_ok() {
        let r = reason(
            check(
                "select o.id, c.id from orders o, customer c \
                 where o.cidfk = c.id or o.custfk = c.id",
            )
            .unwrap_err(),
        );
        assert!(r.violates(Def7Clause::EquiJoins), "{r}");
        // Disjunction local to one relation is a selection and is fine.
        check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and (c.balance > 10 or c.name = 'John')",
        )
        .unwrap();
    }

    #[test]
    fn disconnected_graph_rejected() {
        let r = reason(check("select o.id, c.id from orders o, customer c").unwrap_err());
        assert!(r.violates(Def7Clause::GraphIsTree), "{r}");
    }

    #[test]
    fn two_children_tree_ok() {
        // orders → customer and loyalty → customer is NOT a tree (two roots);
        // but orders → customer plus orders → loyalty is (root = orders).
        let r = reason(
            check(
                "select o.id, c.id, l.id from orders o, customer c, loyalty l \
                 where o.cidfk = c.id and l.cidfk = c.id",
            )
            .unwrap_err(),
        );
        assert!(r.violates(Def7Clause::GraphIsTree), "{r}");
        // The defects are itemized as children of the graph obstacle.
        assert!(!r.obstacles[0].children.is_empty(), "{r}");

        let g = check(
            "select l.id, o.id, c.id from loyalty l, orders o, customer c \
             where l.custfk = o.id and l.cidfk = c.id",
        )
        .unwrap();
        assert_eq!(g.root, Some(0));
        assert_eq!(g.arcs.len(), 2);
    }

    #[test]
    fn id_to_id_join_contributes_no_arc() {
        // Allowed by condition 1 but leaves the graph disconnected → not a
        // tree for two relations.
        let r = reason(
            check("select o.id, c.id from orders o, customer c where o.id = c.id").unwrap_err(),
        );
        assert!(r.violates(Def7Clause::GraphIsTree), "{r}");
    }

    #[test]
    fn aggregate_and_distinct_shapes_rejected() {
        for sql in [
            "select distinct id from customer",
            "select id, count(*) from customer group by id",
            "select sum(balance) from customer",
        ] {
            let r = reason(check(sql).unwrap_err());
            assert!(r.violates(Def7Clause::SpjShape), "{sql}: {r}");
        }
    }

    #[test]
    fn unknown_dirty_relation_reported() {
        let (cat, _) = setup();
        let spec = DirtySpec::uniform(&["customer"]); // orders missing
        let err = check_rewritable(
            &cat,
            &spec,
            &parse_select("select o.id from orders o").unwrap(),
        )
        .unwrap_err();
        assert!(reason(err).violates(Def7Clause::DirtyMetadata));
    }

    #[test]
    fn all_obstacles_collected_and_rendered() {
        // One query violating three clauses at once: DISTINCT, a self-join,
        // and a non-identifier join.
        let sql = "select distinct a.id from customer a, customer b where a.custid = b.custid";
        let r = reason(check(sql).unwrap_err());
        assert!(r.violates(Def7Clause::SpjShape), "{r}");
        assert!(r.violates(Def7Clause::NoSelfJoins), "{r}");
        assert!(r.violates(Def7Clause::JoinsUseIdentifiers), "{r}");
        assert_eq!(r.obstacles.len(), 3, "{r}");
        let tree = r.render_tree(Some(sql));
        assert!(tree.contains("Definition 7"), "{tree}");
        assert!(tree.contains("├─"), "{tree}");
        assert!(tree.contains("└─"), "{tree}");
        assert!(tree.contains('^'), "snippets rendered: {tree}");
    }

    #[test]
    fn duplicate_arc_deduplicated() {
        let g = check(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.id = o.cidfk and c.balance > 0",
        )
        .unwrap();
        assert_eq!(g.arcs.len(), 1);
    }
}
