//! Answer provenance: *why* does a clean answer have its probability?
//!
//! The rewriting's `SUM(R1.prob·…·Rm.prob)` adds up one term per
//! combination of duplicates that joins into the answer (the paper's
//! Example 6 walks exactly this table: "(o2, c1) | 0.35 | join of
//! (o2,c1),(c1,$20K)" etc.). [`explain_answer`] reconstructs that table for
//! one answer tuple, so a user inspecting a surprising probability can see
//! which duplicate representations support it and by how much.

use conquer_sql::{Expr, SelectItem, SelectStatement};
use conquer_storage::{Row, Value};

use crate::dirty::DirtyDatabase;
use crate::error::CoreError;
use crate::graph::check_rewritable;
use crate::Result;

/// One supporting duplicate combination for an answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Support {
    /// The probability contribution (`Π prob` of the joined tuples).
    pub probability: f64,
    /// Per FROM-relation: the identifier and probability of the tuple
    /// combination behind this contribution, as `(binding, id, prob)`.
    pub tuples: Vec<(String, Value, f64)>,
}

/// The full explanation of one clean answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The answer tuple explained.
    pub answer: Row,
    /// Its clean-answer probability (sum of the supports).
    pub probability: f64,
    /// The supporting combinations, most probable first.
    pub supports: Vec<Support>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "answer (")?;
        for (i, v) in self.answer.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        writeln!(
            f,
            ") has probability {:.4} from {} combination(s):",
            self.probability,
            self.supports.len()
        )?;
        for s in &self.supports {
            write!(f, "  {:.4}  via", s.probability)?;
            for (binding, id, p) in &s.tuples {
                write!(f, "  {binding}[{id}]@{p:.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Explain one clean answer of a rewritable query: every combination of
/// duplicates that produces `answer`, with its probability contribution.
pub fn explain_answer(db: &DirtyDatabase, sql: &str, answer: &[Value]) -> Result<Explanation> {
    let stmt: SelectStatement = conquer_sql::parse_select(sql)?;
    let graph = check_rewritable(db.db().catalog(), db.spec(), &stmt)?;

    if answer.len() != stmt.projection.len() {
        return Err(CoreError::InvalidDirty(format!(
            "answer tuple has {} values but the query projects {} columns",
            answer.len(),
            stmt.projection.len()
        )));
    }

    // Build a probe query: the original projection, plus per relation its
    // identifier and probability columns. Strip ORDER BY/LIMIT — we need
    // every joined row.
    let mut probe = stmt.clone();
    probe.order_by.clear();
    probe.limit = None;
    let n_answer = probe.projection.len();
    for (i, binding) in graph.bindings.iter().enumerate() {
        let id_name = db
            .db()
            .catalog()
            .table(&graph.tables[i])?
            .schema()
            .column_at(graph.id_columns[i])
            .ok_or_else(|| {
                conquer_engine::EngineError::internal(format!(
                    "join graph cites identifier column #{} of {:?}, which does not exist",
                    graph.id_columns[i], graph.tables[i]
                ))
            })?
            .name()
            .to_string();
        let prob_name = db.spec().require(&graph.tables[i])?.prob_column.clone();
        probe.projection.push(SelectItem::Expr {
            expr: Expr::qualified(binding.clone(), id_name),
            alias: Some(format!("__id_{i}")),
        });
        probe.projection.push(SelectItem::Expr {
            expr: Expr::qualified(binding.clone(), prob_name),
            alias: Some(format!("__prob_{i}")),
        });
    }

    let result = db.db().prepare_select(&probe)?.query(db.db())?;
    let mut supports = Vec::new();
    let mut total = 0.0;
    for row in &result.rows {
        if &row[..n_answer] != answer {
            continue;
        }
        let mut probability = 1.0;
        let mut tuples = Vec::with_capacity(graph.bindings.len());
        for (i, binding) in graph.bindings.iter().enumerate() {
            let id = row[n_answer + 2 * i].clone();
            let p = row[n_answer + 2 * i + 1].as_f64().unwrap_or(0.0);
            probability *= p;
            tuples.push((binding.clone(), id, p));
        }
        total += probability;
        supports.push(Support {
            probability,
            tuples,
        });
    }
    supports.sort_by(|a, b| b.probability.total_cmp(&a.probability));
    Ok(Explanation {
        answer: answer.to_vec(),
        probability: total,
        supports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirtyDatabase, DirtySpec};
    use conquer_engine::Database;

    /// The Figure-2 database of the paper.
    fn figure2() -> DirtyDatabase {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE orders (id TEXT, cidfk TEXT, quantity INTEGER, prob DOUBLE);
             INSERT INTO orders VALUES
               ('o1', 'c1', 3, 1.0), ('o2', 'c1', 2, 0.5), ('o2', 'c2', 5, 0.5);
             CREATE TABLE customer (id TEXT, name TEXT, balance INTEGER, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'John', 20000, 0.7), ('c1', 'John', 30000, 0.3),
               ('c2', 'Mary', 27000, 0.2), ('c2', 'Marion', 5000, 0.8);",
        )
        .unwrap();
        DirtyDatabase::new(db, DirtySpec::uniform(&["orders", "customer"])).unwrap()
    }

    #[test]
    fn example6_support_table_reconstructed() {
        // The paper's Example 6 prints (o2,c1): 0.35 + 0.15 = 0.50 from the
        // joins with (c1,$20K) and (c1,$30K).
        let dirty = figure2();
        let sql = "select o.id, c.id from orders o, customer c \
                   where o.cidfk = c.id and c.balance > 10000";
        let exp = explain_answer(&dirty, sql, &["o2".into(), "c1".into()]).unwrap();
        assert!((exp.probability - 0.5).abs() < 1e-12);
        assert_eq!(exp.supports.len(), 2);
        assert!((exp.supports[0].probability - 0.35).abs() < 1e-12);
        assert!((exp.supports[1].probability - 0.15).abs() < 1e-12);
        // Each support names both relations' tuples.
        assert_eq!(exp.supports[0].tuples.len(), 2);
        assert_eq!(exp.supports[0].tuples[0].0, "o");
        assert_eq!(exp.supports[0].tuples[1].0, "c");
        let text = exp.to_string();
        assert!(text.contains("0.3500"), "{text}");
    }

    #[test]
    fn certain_answer_sums_to_one() {
        let dirty = figure2();
        let sql = "select o.id, c.id from orders o, customer c \
                   where o.cidfk = c.id and c.balance > 10000";
        let exp = explain_answer(&dirty, sql, &["o1".into(), "c1".into()]).unwrap();
        assert!((exp.probability - 1.0).abs() < 1e-12);
        assert_eq!(exp.supports.len(), 2); // both c1 representations qualify
    }

    #[test]
    fn absent_answer_has_no_support() {
        let dirty = figure2();
        let sql = "select o.id, c.id from orders o, customer c where o.cidfk = c.id";
        let exp = explain_answer(&dirty, sql, &["o1".into(), "c2".into()]).unwrap();
        assert_eq!(exp.supports.len(), 0);
        assert_eq!(exp.probability, 0.0);
    }

    #[test]
    fn explanation_total_matches_clean_answer() {
        let dirty = figure2();
        let sql = "select o.id, c.id from orders o, customer c \
                   where o.cidfk = c.id and c.balance > 10000";
        let answers = dirty.clean_answers(sql).unwrap();
        for (row, p) in &answers.rows {
            let exp = explain_answer(&dirty, sql, row).unwrap();
            assert!(
                (exp.probability - p).abs() < 1e-12,
                "explanation of {row:?} totals {} but the answer says {p}",
                exp.probability
            );
        }
    }

    #[test]
    fn wrong_arity_and_non_rewritable_rejected() {
        let dirty = figure2();
        let sql = "select o.id, c.id from orders o, customer c where o.cidfk = c.id";
        assert!(explain_answer(&dirty, sql, &["o1".into()]).is_err());
        let bad = "select c.id from orders o, customer c where o.cidfk = c.id";
        assert!(matches!(
            explain_answer(&dirty, bad, &["c1".into()]),
            Err(CoreError::NotRewritable(_))
        ));
    }
}
