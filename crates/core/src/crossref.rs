//! Cross-reference table support (Section 2.1).
//!
//! "Some tools, like WebSphere QualityStage, output cross-reference tables
//! that indicate which tuples are associated with which cluster." This
//! module applies such a table to a dirty relation: every row's identifier
//! column is set from the cross-reference mapping of its original key,
//! turning the external matcher's output into the identifier-column form
//! the rest of the system consumes.
//!
//! The catalog-level implementation lives in
//! [`conquer_storage::crossref`] so the query engine can execute
//! `APPLY CROSSREF` statements without depending on this crate; this
//! module re-wraps it in the core error vocabulary.

use conquer_storage::{Catalog, StorageError};

use crate::error::CoreError;
use crate::Result;

/// Apply a cross-reference table to a dirty relation.
///
/// * `table.key_column` — the relation's original (per-tuple) key;
/// * `xref.key/xref.id` — the matcher's mapping `original key → cluster id`;
/// * `table.id_column` — where the cluster identifier is written.
///
/// Every key of `table` must be mapped (a matcher that has seen the
/// relation maps all of it); unmapped keys are an error naming the first
/// offender. Duplicate mappings with conflicting ids are rejected.
/// Returns the number of distinct clusters assigned.
pub fn apply_crossref(
    catalog: &mut Catalog,
    table: &str,
    key_column: &str,
    id_column: &str,
    xref_table: &str,
    xref_key_column: &str,
    xref_id_column: &str,
) -> Result<usize> {
    conquer_storage::apply_crossref(
        catalog,
        table,
        key_column,
        id_column,
        xref_table,
        xref_key_column,
        xref_id_column,
    )
    .map_err(|e| match e {
        // Data-contract violations keep their Definition-2 flavored kind.
        StorageError::InvalidData(msg) => CoreError::InvalidDirty(msg),
        other => CoreError::from(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_engine::Database;

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE customer (id TEXT, custkey INTEGER, name TEXT, prob DOUBLE);
             INSERT INTO customer VALUES
               ('', 101, 'ann', 0.0), ('', 102, 'anne', 0.0), ('', 103, 'bob', 0.0);
             CREATE TABLE xref (orig INTEGER, cluster TEXT);
             INSERT INTO xref VALUES (101, 'c1'), (102, 'c1'), (103, 'c2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn crossref_assigns_cluster_identifiers() {
        let mut db = setup();
        let clusters = apply_crossref(
            db.catalog_mut(),
            "customer",
            "custkey",
            "id",
            "xref",
            "orig",
            "cluster",
        )
        .unwrap();
        assert_eq!(clusters, 2);
        let r = db
            .prepare("SELECT id FROM customer ORDER BY custkey")
            .unwrap()
            .query(&db)
            .unwrap();
        let ids: Vec<String> = r.rows.iter().map(|x| x[0].to_string()).collect();
        assert_eq!(ids, vec!["c1", "c1", "c2"]);
    }

    #[test]
    fn unmapped_key_rejected() {
        let mut db = setup();
        db.prepare("INSERT INTO customer VALUES ('', 999, 'zed', 0.0)")
            .unwrap()
            .run(&mut db)
            .unwrap();
        let err = apply_crossref(
            db.catalog_mut(),
            "customer",
            "custkey",
            "id",
            "xref",
            "orig",
            "cluster",
        )
        .unwrap_err();
        assert!(err.to_string().contains("999"), "{err}");
    }

    #[test]
    fn conflicting_mapping_rejected() {
        let mut db = setup();
        db.prepare("INSERT INTO xref VALUES (101, 'c9')")
            .unwrap()
            .run(&mut db)
            .unwrap();
        let err = apply_crossref(
            db.catalog_mut(),
            "customer",
            "custkey",
            "id",
            "xref",
            "orig",
            "cluster",
        )
        .unwrap_err();
        assert!(err.to_string().contains("both"), "{err}");
    }

    #[test]
    fn duplicate_consistent_mapping_allowed() {
        let mut db = setup();
        db.prepare("INSERT INTO xref VALUES (101, 'c1')")
            .unwrap()
            .run(&mut db)
            .unwrap();
        assert!(apply_crossref(
            db.catalog_mut(),
            "customer",
            "custkey",
            "id",
            "xref",
            "orig",
            "cluster",
        )
        .is_ok());
    }

    #[test]
    fn end_to_end_with_probabilities_and_answers() {
        use crate::{DirtyDatabase, DirtySpec};
        let mut db = setup();
        apply_crossref(
            db.catalog_mut(),
            "customer",
            "custkey",
            "id",
            "xref",
            "orig",
            "cluster",
        )
        .unwrap();
        // Uniform probabilities per cluster, then clean answers.
        db.prepare("UPDATE customer SET prob = 0.5 WHERE id = 'c1'")
            .unwrap()
            .run(&mut db)
            .unwrap();
        db.prepare("UPDATE customer SET prob = 1.0 WHERE id = 'c2'")
            .unwrap()
            .run(&mut db)
            .unwrap();
        db.catalog_mut().drop_table("xref").unwrap();
        let dirty = DirtyDatabase::new(db, DirtySpec::uniform(&["customer"])).unwrap();
        let ans = dirty
            .clean_answers("SELECT id FROM customer WHERE name LIKE 'an%'")
            .unwrap();
        assert!((ans.probability_of(&["c1".into()]).unwrap() - 1.0).abs() < 1e-9);
    }
}
