//! The clean-answer result type.

use std::fmt;

use conquer_engine::ExecStats;
use conquer_storage::{Row, Value};

/// Default tolerance when comparing answer probabilities (the rewritten
/// query and the naive evaluator accumulate floating point in different
/// orders).
pub const PROB_EPSILON: f64 = 1e-9;

/// Clean answers to a query: each answer tuple paired with its probability
/// of being an answer over the clean database (Definition 5).
///
/// When produced by the rewriting path, the executor's per-operator
/// statistics are forwarded and available via [`CleanAnswers::stats`].
/// Equality compares columns and rows only.
#[derive(Debug, Clone)]
pub struct CleanAnswers {
    /// Names of the answer columns (without the probability column).
    pub columns: Vec<String>,
    /// `(answer tuple, probability)` pairs.
    pub rows: Vec<(Row, f64)>,
    /// Executor statistics of the rewritten query, when it ran as one query.
    stats: Option<Box<ExecStats>>,
}

impl PartialEq for CleanAnswers {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl CleanAnswers {
    /// An answer set from columns and `(tuple, probability)` pairs.
    pub fn new(columns: Vec<String>, rows: Vec<(Row, f64)>) -> Self {
        CleanAnswers {
            columns,
            rows,
            stats: None,
        }
    }

    /// An empty answer set with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        CleanAnswers::new(columns, Vec::new())
    }

    /// Attach executor statistics (builder-style).
    pub fn with_stats(mut self, stats: Option<ExecStats>) -> Self {
        self.stats = stats.map(Box::new);
        self
    }

    /// Per-operator executor statistics of the rewritten query, when this
    /// answer set was computed by a single rewritten SQL query (the naive
    /// candidate-enumeration path runs many queries and forwards none).
    pub fn stats(&self) -> Option<&ExecStats> {
        self.stats.as_deref()
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The probability of a specific answer tuple, if present.
    pub fn probability_of(&self, tuple: &[Value]) -> Option<f64> {
        self.rows
            .iter()
            .find(|(r, _)| r.as_slice() == tuple)
            .map(|(_, p)| *p)
    }

    /// Answers sorted by decreasing probability (ties: by tuple order) —
    /// the presentation the paper motivates: "which query answers are most
    /// likely to be present in the clean database".
    pub fn ranked(&self) -> Vec<(&Row, f64)> {
        let mut out: Vec<(&Row, f64)> = self.rows.iter().map(|(r, p)| (r, *p)).collect();
        out.sort_by(|(ra, pa), (rb, pb)| {
            pb.partial_cmp(pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| ra.cmp(rb))
        });
        out
    }

    /// Answers with probability 1 (within `eps`): the *consistent answers*
    /// of Arenas et al., which the paper shows to be the certainty fragment
    /// of clean answers.
    pub fn consistent(&self, eps: f64) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|(_, p)| (p - 1.0).abs() <= eps)
            .map(|(r, _)| r)
            .collect()
    }

    /// True when both answer sets contain the same tuples with probabilities
    /// equal within `eps` (row order is ignored). Tuples with probability
    /// below `eps` are treated as absent — a candidate enumeration may list
    /// a tuple with probability 0 that the rewriting never produces.
    pub fn approx_same(&self, other: &CleanAnswers, eps: f64) -> bool {
        let sig = |a: &CleanAnswers| {
            let mut v: Vec<(Row, f64)> = a.rows.iter().filter(|(_, p)| *p > eps).cloned().collect();
            v.sort_by(|(ra, _), (rb, _)| ra.cmp(rb));
            v
        };
        let (a, b) = (sig(self), sig(other));
        a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|((ra, pa), (rb, pb))| ra == rb && (pa - pb).abs() <= eps)
    }

    /// Sum of all answer probabilities (diagnostic; equals the expected
    /// number of answers over the clean database).
    pub fn total_probability(&self) -> f64 {
        self.rows.iter().map(|(_, p)| *p).sum()
    }
}

impl fmt::Display for CleanAnswers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.columns {
            write!(f, "{c} | ")?;
        }
        writeln!(f, "probability")?;
        for (row, p) in self.ranked() {
            for v in row {
                write!(f, "{v} | ")?;
            }
            writeln!(f, "{p:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers() -> CleanAnswers {
        CleanAnswers::new(
            vec!["id".into()],
            vec![
                (vec!["c2".into()], 0.2),
                (vec!["c1".into()], 1.0),
                (vec!["c3".into()], 0.0),
            ],
        )
    }

    #[test]
    fn probability_lookup() {
        let a = answers();
        assert_eq!(a.probability_of(&["c1".into()]), Some(1.0));
        assert_eq!(a.probability_of(&["zz".into()]), None);
    }

    #[test]
    fn ranked_sorts_by_probability() {
        let a = answers();
        let r = a.ranked();
        assert_eq!(r[0].1, 1.0);
        assert_eq!(r[1].1, 0.2);
    }

    #[test]
    fn consistent_extracts_certainty_fragment() {
        let a = answers();
        let c = a.consistent(1e-9);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0][0], Value::text("c1"));
    }

    #[test]
    fn approx_same_ignores_order_and_zero_rows() {
        let a = answers();
        let b = CleanAnswers::new(
            vec!["id".into()],
            vec![(vec!["c1".into()], 1.0 + 1e-12), (vec!["c2".into()], 0.2)],
        );
        assert!(a.approx_same(&b, 1e-9));
        let c = CleanAnswers::new(
            vec!["id".into()],
            vec![(vec!["c1".into()], 0.9), (vec!["c2".into()], 0.2)],
        );
        assert!(!a.approx_same(&c, 1e-9));
    }

    #[test]
    fn display_contains_rows() {
        let text = answers().to_string();
        assert!(text.contains("c1"), "{text}");
        assert!(text.contains("probability"), "{text}");
    }
}
