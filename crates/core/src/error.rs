//! Core-layer errors, including the Definition 7 rewritability explainer.

use std::fmt;

use conquer_engine::EngineError;
use conquer_sql::{render_snippet, Span};

/// Which clause of the rewritable class (Definition 7), or which of its
/// SPJ-shape preconditions, a query violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Def7Clause {
    /// Precondition: the statement must be a plain select-project-join
    /// query — no DISTINCT, grouping, HAVING or aggregates.
    SpjShape,
    /// Precondition: every FROM relation needs identifier/probability
    /// metadata in the [`crate::DirtySpec`].
    DirtyMetadata,
    /// Precondition: join predicates must be simple column equalities.
    EquiJoins,
    /// Condition 1: every join involves the identifier of at least one of
    /// the joined relations.
    JoinsUseIdentifiers,
    /// Condition 2: the join graph is a rooted tree.
    GraphIsTree,
    /// Condition 3: no relation appears twice in FROM (no self-joins).
    NoSelfJoins,
    /// Condition 4: the identifier of the root relation appears in the
    /// select clause.
    RootIdProjected,
}

impl Def7Clause {
    /// Short human-readable citation of the violated clause.
    pub fn title(self) -> &'static str {
        match self {
            Def7Clause::SpjShape => "precondition: plain select-project-join shape",
            Def7Clause::DirtyMetadata => "precondition: dirty metadata for every relation",
            Def7Clause::EquiJoins => "precondition: joins are column equalities",
            Def7Clause::JoinsUseIdentifiers => "condition 1: every join involves an identifier",
            Def7Clause::GraphIsTree => "condition 2: the join graph is a tree",
            Def7Clause::NoSelfJoins => "condition 3: no self-joins",
            Def7Clause::RootIdProjected => "condition 4: the root identifier is projected",
        }
    }
}

impl fmt::Display for Def7Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// One node of the rewritability reason tree: a violated clause of
/// Definition 7, where in the source it happened, and any finer-grained
/// sub-reasons.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteObstacle {
    /// The clause of Definition 7 this obstacle violates.
    pub clause: Def7Clause,
    /// What exactly is wrong, naming the offending relations/columns.
    pub message: String,
    /// Source span of the offending fragment ([`Span::NONE`] when the
    /// obstacle concerns the query as a whole).
    pub span: Span,
    /// Finer-grained sub-obstacles (e.g. each structural defect that keeps
    /// the join graph from being a tree).
    pub children: Vec<RewriteObstacle>,
}

impl RewriteObstacle {
    /// A leaf obstacle with no span.
    pub fn new(clause: Def7Clause, message: impl Into<String>) -> Self {
        RewriteObstacle {
            clause,
            message: message.into(),
            span: Span::NONE,
            children: Vec::new(),
        }
    }

    /// Attach the source span of the offending fragment.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attach a finer-grained sub-obstacle.
    pub fn with_child(mut self, child: RewriteObstacle) -> Self {
        self.children.push(child);
        self
    }
}

/// Why a query falls outside the rewritable class of Definition 7: a tree
/// of [`RewriteObstacle`]s, each citing the violated clause and (where
/// known) the source span of the offending fragment.
///
/// Unlike a fail-fast error, the checker collects *every* top-level
/// obstacle it can see, so one round of fixes can address them all —
/// typically by adding the root identifier to the select clause, as the
/// paper suggests.
#[derive(Debug, Clone, PartialEq)]
pub struct NotRewritable {
    /// The top-level obstacles, in source order.
    pub obstacles: Vec<RewriteObstacle>,
}

impl NotRewritable {
    /// Wrap a collection of obstacles (callers ensure it is non-empty).
    pub fn new(obstacles: Vec<RewriteObstacle>) -> Self {
        NotRewritable { obstacles }
    }

    /// A single-obstacle reason with no span.
    pub fn because(clause: Def7Clause, message: impl Into<String>) -> Self {
        NotRewritable {
            obstacles: vec![RewriteObstacle::new(clause, message)],
        }
    }

    /// Does any obstacle (at any depth) violate `clause`?
    pub fn violates(&self, clause: Def7Clause) -> bool {
        fn walk(o: &RewriteObstacle, clause: Def7Clause) -> bool {
            o.clause == clause || o.children.iter().any(|c| walk(c, clause))
        }
        self.obstacles.iter().any(|o| walk(o, clause))
    }

    /// Render the reason tree, optionally with caret snippets against the
    /// original SQL for every obstacle that carries a span.
    pub fn render_tree(&self, sql: Option<&str>) -> String {
        let mut out = String::from("query is outside the rewritable class (Definition 7):\n");
        for (i, o) in self.obstacles.iter().enumerate() {
            render_obstacle(o, "", i + 1 == self.obstacles.len(), sql, &mut out);
        }
        out.pop(); // trailing newline
        out
    }
}

fn render_obstacle(
    o: &RewriteObstacle,
    indent: &str,
    last: bool,
    sql: Option<&str>,
    out: &mut String,
) {
    let branch = if last { "└─ " } else { "├─ " };
    out.push_str(indent);
    out.push_str(branch);
    out.push_str(&format!("[{}] {}\n", o.clause.title(), o.message));
    let child_indent = format!("{indent}{}", if last { "   " } else { "│  " });
    if let Some(src) = sql {
        if !o.span.is_none() {
            for line in render_snippet(src, o.span).lines() {
                out.push_str(&child_indent);
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    for (i, c) in o.children.iter().enumerate() {
        render_obstacle(c, &child_indent, i + 1 == o.children.len(), sql, out);
    }
}

impl fmt::Display for NotRewritable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_tree(None))
    }
}

impl std::error::Error for NotRewritable {}

/// Errors raised by clean-answer machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying engine failed (parse, bind, execute).
    Engine(EngineError),
    /// The query is not in the rewritable class.
    NotRewritable(NotRewritable),
    /// The dirty database violates Definition 2 (bad identifier/probability
    /// columns, cluster probabilities that do not sum to 1, …).
    InvalidDirty(String),
    /// Naive evaluation would enumerate more candidates than allowed.
    TooManyCandidates {
        /// How many candidate databases the dirty database induces.
        candidates: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::NotRewritable(r) => write!(f, "query is not rewritable: {r}"),
            CoreError::InvalidDirty(m) => write!(f, "invalid dirty database: {m}"),
            CoreError::TooManyCandidates { candidates, limit } => write!(
                f,
                "naive evaluation requires {candidates} candidate databases, \
                 which exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            CoreError::NotRewritable(r) => Some(r),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<NotRewritable> for CoreError {
    fn from(e: NotRewritable) -> Self {
        CoreError::NotRewritable(e)
    }
}

impl From<conquer_sql::ParseError> for CoreError {
    fn from(e: conquer_sql::ParseError) -> Self {
        CoreError::Engine(EngineError::Parse(e))
    }
}

impl From<conquer_storage::StorageError> for CoreError {
    fn from(e: conquer_storage::StorageError) -> Self {
        CoreError::Engine(EngineError::Storage(e))
    }
}
