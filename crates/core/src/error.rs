//! Core-layer errors, including rewritability diagnostics.

use std::fmt;

use conquer_engine::EngineError;

/// Why a query falls outside the rewritable class of Definition 7.
///
/// Each variant corresponds to one of the paper's four conditions (plus the
/// SPJ-shape preconditions the theorem assumes). The diagnostics name the
/// offending relation/attribute so a user can adapt the query — typically by
/// adding the root identifier to the select clause, as the paper suggests.
#[derive(Debug, Clone, PartialEq)]
pub enum NotRewritable {
    /// The statement is not a plain SPJ query (it already has grouping,
    /// aggregates, HAVING or DISTINCT).
    NotSpj(String),
    /// A join predicate is not a simple column equality
    /// (the class allows only equality joins).
    NonEquiJoin(String),
    /// Condition 1: a join equates two non-identifier attributes.
    JoinWithoutIdentifier(String),
    /// Condition 2: the join graph is not a tree.
    GraphNotTree(String),
    /// Condition 3: a relation appears more than once in FROM (self-join).
    SelfJoin(String),
    /// Condition 4: the identifier of the root relation is missing from the
    /// select clause.
    RootIdentifierNotSelected {
        /// Binding name of the root relation.
        root: String,
        /// Its identifier column.
        id_column: String,
    },
    /// A relation in FROM has no dirty metadata in the [`crate::DirtySpec`].
    UnknownDirtyRelation(String),
}

impl fmt::Display for NotRewritable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotRewritable::NotSpj(m) => {
                write!(f, "not a plain select-project-join query: {m}")
            }
            NotRewritable::NonEquiJoin(m) => {
                write!(f, "join predicate is not an equality between columns: {m}")
            }
            NotRewritable::JoinWithoutIdentifier(m) => write!(
                f,
                "join does not involve the identifier of either relation \
                 (condition 1 of the rewritable class): {m}"
            ),
            NotRewritable::GraphNotTree(m) => {
                write!(f, "join graph is not a tree (condition 2): {m}")
            }
            NotRewritable::SelfJoin(t) => write!(
                f,
                "relation {t:?} appears more than once in FROM (condition 3 forbids self-joins)"
            ),
            NotRewritable::RootIdentifierNotSelected { root, id_column } => write!(
                f,
                "the identifier {root}.{id_column} of the join-graph root must appear \
                 in the select clause (condition 4); add it to the projection"
            ),
            NotRewritable::UnknownDirtyRelation(t) => write!(
                f,
                "relation {t:?} has no identifier/probability metadata in the DirtySpec"
            ),
        }
    }
}

impl std::error::Error for NotRewritable {}

/// Errors raised by clean-answer machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying engine failed (parse, bind, execute).
    Engine(EngineError),
    /// The query is not in the rewritable class.
    NotRewritable(NotRewritable),
    /// The dirty database violates Definition 2 (bad identifier/probability
    /// columns, cluster probabilities that do not sum to 1, …).
    InvalidDirty(String),
    /// Naive evaluation would enumerate more candidates than allowed.
    TooManyCandidates {
        /// How many candidate databases the dirty database induces.
        candidates: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::NotRewritable(r) => write!(f, "query is not rewritable: {r}"),
            CoreError::InvalidDirty(m) => write!(f, "invalid dirty database: {m}"),
            CoreError::TooManyCandidates { candidates, limit } => write!(
                f,
                "naive evaluation requires {candidates} candidate databases, \
                 which exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            CoreError::NotRewritable(r) => Some(r),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<NotRewritable> for CoreError {
    fn from(e: NotRewritable) -> Self {
        CoreError::NotRewritable(e)
    }
}

impl From<conquer_sql::ParseError> for CoreError {
    fn from(e: conquer_sql::ParseError) -> Self {
        CoreError::Engine(EngineError::Parse(e))
    }
}

impl From<conquer_storage::StorageError> for CoreError {
    fn from(e: conquer_storage::StorageError) -> Self {
        CoreError::Engine(EngineError::Storage(e))
    }
}
