//! Naive clean-answer evaluation by candidate-database enumeration
//! (Definitions 3–5, applied literally).
//!
//! The number of candidate databases is the product of all cluster sizes —
//! exponential in the number of clusters — so this evaluator is only usable
//! on small databases. It serves three purposes:
//!
//! 1. the **correctness oracle** for `RewriteClean` (property-tested:
//!    rewritten answers == naive answers on every rewritable query);
//! 2. evaluating **non-rewritable** queries such as the paper's Example 7;
//! 3. reproducing the paper's worked examples (the eight candidate
//!    databases of Example 2 with their probabilities of Example 3).

use std::collections::{HashMap, HashSet};

use conquer_engine::Database;
use conquer_sql::SelectStatement;
use conquer_storage::{Catalog, Row, Table, Value};

use crate::answers::CleanAnswers;
use crate::error::CoreError;
use crate::spec::DirtySpec;
use crate::Result;

/// Limits for naive evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveOptions {
    /// Refuse to enumerate more candidate databases than this.
    pub max_candidates: u128,
}

impl Default for NaiveOptions {
    fn default() -> Self {
        NaiveOptions {
            max_candidates: 1 << 20,
        }
    }
}

/// One cluster of a dirty relation: its identifier value and the positions
/// of its member rows.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The shared identifier value.
    pub id: Value,
    /// Row positions within the table, in insertion order.
    pub rows: Vec<usize>,
}

/// Extract the clusters of a table under the spec, sorted by identifier for
/// deterministic enumeration order.
pub fn clusters_of(table: &Table, spec: &DirtySpec) -> Result<Vec<Cluster>> {
    let meta = spec.require(table.name())?;
    let id_col = table.column_index(&meta.id_column)?;
    let mut by_id: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        by_id.entry(row[id_col].clone()).or_default().push(i);
    }
    let mut out: Vec<Cluster> = by_id
        .into_iter()
        .map(|(id, rows)| Cluster { id, rows })
        .collect();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(out)
}

/// An enumerator of candidate databases for a set of dirty relations.
///
/// Iterating yields each candidate's catalog and probability; the catalogs
/// of relations *not* in `tables` are carried through unchanged (their
/// choices are independent of the query and integrate to probability 1).
pub struct CandidateDatabases {
    base: Catalog,
    /// Per dirty table: name, prob column index, clusters.
    parts: Vec<TablePart>,
    /// Odometer over all clusters (flattened across tables).
    odometer: Vec<usize>,
    /// Cluster boundaries: (table index, cluster index) per odometer digit.
    digits: Vec<(usize, usize)>,
    done: bool,
}

struct TablePart {
    name: String,
    prob_col: usize,
    clusters: Vec<Cluster>,
}

impl CandidateDatabases {
    /// Build an enumerator over the listed tables of `catalog`.
    pub fn new(catalog: &Catalog, spec: &DirtySpec, tables: &[String]) -> Result<Self> {
        let mut parts = Vec::new();
        for name in tables {
            let table = catalog.table(name)?;
            let meta = spec.require(name)?;
            let prob_col = table.column_index(&meta.prob_column)?;
            parts.push(TablePart {
                name: table.name().to_string(),
                prob_col,
                clusters: clusters_of(table, spec)?,
            });
        }
        let mut digits = Vec::new();
        for (ti, p) in parts.iter().enumerate() {
            for ci in 0..p.clusters.len() {
                digits.push((ti, ci));
            }
        }
        Ok(CandidateDatabases {
            base: catalog.clone(),
            odometer: vec![0; digits.len()],
            parts,
            digits,
            done: false,
        })
    }

    /// Total number of candidate databases (product of cluster sizes).
    ///
    /// (Named to avoid shadowing by `Iterator::count`, which consumes the
    /// enumerator.)
    pub fn total_candidates(&self) -> u128 {
        self.parts
            .iter()
            .flat_map(|p| p.clusters.iter())
            .map(|c| c.rows.len() as u128)
            .product()
    }

    /// Materialize the candidate selected by the current odometer.
    ///
    /// `None` is unreachable by construction (tables, cluster row indices,
    /// and schemas all come from `base` itself) but propagated instead of
    /// panicking so the iterator simply ends if that invariant ever breaks.
    fn current(&self) -> Option<(Catalog, f64)> {
        let mut catalog = self.base.clone();
        let mut probability = 1.0;
        for (ti, part) in self.parts.iter().enumerate() {
            let base_table = self.base.table(&part.name).ok()?;
            let mut table = Table::new(part.name.clone(), base_table.schema().clone());
            for (digit, (dti, ci)) in self.digits.iter().enumerate() {
                if *dti != ti {
                    continue;
                }
                let cluster = &part.clusters[*ci];
                let row_idx = cluster.rows[self.odometer[digit]];
                let row = base_table.row(row_idx)?.clone();
                probability *= row[part.prob_col].as_f64().unwrap_or(0.0);
                table.insert(row).ok()?;
            }
            catalog.replace_table(table);
        }
        Some((catalog, probability))
    }

    fn advance(&mut self) {
        for digit in (0..self.odometer.len()).rev() {
            let (ti, ci) = self.digits[digit];
            let size = self.parts[ti].clusters[ci].rows.len();
            self.odometer[digit] += 1;
            if self.odometer[digit] < size {
                return;
            }
            self.odometer[digit] = 0;
        }
        self.done = true;
    }
}

impl Iterator for CandidateDatabases {
    /// `(candidate catalog, probability of being the clean database)`.
    type Item = (Catalog, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = self.current()?;
        self.advance();
        Some(item)
    }
}

/// Evaluate clean answers by full candidate enumeration (Definition 5).
///
/// For each candidate database, the query's *distinct* answer tuples receive
/// the candidate's probability; an answer's final probability is the sum
/// over the candidates that produce it.
pub fn naive_clean_answers(
    catalog: &Catalog,
    spec: &DirtySpec,
    stmt: &SelectStatement,
    options: NaiveOptions,
) -> Result<CleanAnswers> {
    // Only the relations the query references need enumerating; all other
    // relations' cluster choices cannot affect the answer and their
    // probabilities marginalize to 1.
    let mut tables: Vec<String> = stmt.from.iter().map(|t| t.table.clone()).collect();
    tables.sort();
    tables.dedup();

    let candidates = CandidateDatabases::new(catalog, spec, &tables)?;
    let total = candidates.total_candidates();
    if total > options.max_candidates {
        return Err(CoreError::TooManyCandidates {
            candidates: total,
            limit: options.max_candidates,
        });
    }

    let mut columns: Option<Vec<String>> = None;
    let mut order: Vec<Row> = Vec::new();
    let mut probs: HashMap<Row, f64> = HashMap::new();

    for (candidate, probability) in candidates {
        let db = Database::from_catalog(candidate);
        let result = db.prepare_select(stmt)?.query(&db)?;
        if columns.is_none() {
            columns = Some(result.columns.clone());
        }
        // Set semantics per candidate: a tuple is "an answer of this
        // candidate" regardless of its multiplicity.
        let distinct: HashSet<Row> = result.rows.into_iter().collect();
        for row in distinct {
            match probs.get_mut(&row) {
                Some(p) => *p += probability,
                None => {
                    probs.insert(row.clone(), probability);
                    order.push(row);
                }
            }
        }
    }

    let columns = match columns {
        Some(c) => c,
        // Zero candidates can only happen with an empty dirty table; run
        // the query once on the base catalog just for the column names.
        None => {
            let db = Database::from_catalog(catalog.clone());
            db.prepare_select(stmt)?.query(&db)?.columns
        }
    };
    let rows = order
        .into_iter()
        .map(|r| (probs[&r], r))
        .map(|(p, r)| (r, p))
        .collect();
    Ok(CleanAnswers::new(columns, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_sql::parse_select;

    /// The dirty database of the paper's Figure 2.
    fn figure2() -> (Catalog, DirtySpec) {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE orders (id TEXT, orderid TEXT, custfk TEXT, cidfk TEXT, quantity INTEGER, prob DOUBLE);
             INSERT INTO orders VALUES
               ('o1', '11', 'm1', 'c1', 3, 1.0),
               ('o2', '12', 'm2', 'c1', 2, 0.5),
               ('o2', '13', 'm3', 'c2', 5, 0.5);
             CREATE TABLE customer (id TEXT, custid TEXT, name TEXT, balance INTEGER, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'm1', 'John', 20000, 0.7),
               ('c1', 'm2', 'John', 30000, 0.3),
               ('c2', 'm3', 'Mary', 27000, 0.2),
               ('c2', 'm4', 'Marion', 5000, 0.8);",
        )
        .unwrap();
        (
            db.catalog().clone(),
            DirtySpec::uniform(&["orders", "customer"]),
        )
    }

    #[test]
    fn eight_candidates_with_example3_probabilities() {
        let (cat, spec) = figure2();
        let cands =
            CandidateDatabases::new(&cat, &spec, &["orders".to_string(), "customer".to_string()])
                .unwrap();
        assert_eq!(cands.total_candidates(), 8);
        let mut probs: Vec<f64> = cands.map(|(_, p)| p).collect();
        assert_eq!(probs.len(), 8);
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-12,
            "candidate probabilities sum to 1, got {total}"
        );
        // Example 3's multiset {.07, .28, .03, .12, .07, .28, .03, .12}.
        probs.sort_by(f64::total_cmp);
        let expected = [0.03, 0.03, 0.07, 0.07, 0.12, 0.12, 0.28, 0.28];
        for (a, b) in probs.iter().zip(expected) {
            assert!((a - b).abs() < 1e-12, "{probs:?}");
        }
    }

    #[test]
    fn example4_clean_answers() {
        // q1: customers with balance > $10K → {(c1, 1), (c2, 0.2)}.
        let (cat, spec) = figure2();
        let q = parse_select("select id from customer c where balance > 10000").unwrap();
        let ans = naive_clean_answers(&cat, &spec, &q, NaiveOptions::default()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!((ans.probability_of(&["c1".into()]).unwrap() - 1.0).abs() < 1e-12);
        assert!((ans.probability_of(&["c2".into()]).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn example6_clean_answers() {
        // q2: orders joined with customers with balance > $10K.
        let (cat, spec) = figure2();
        let q = parse_select(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.balance > 10000",
        )
        .unwrap();
        let ans = naive_clean_answers(&cat, &spec, &q, NaiveOptions::default()).unwrap();
        let p = |o: &str, c: &str| ans.probability_of(&[o.into(), c.into()]).unwrap();
        assert!((p("o1", "c1") - 1.0).abs() < 1e-12);
        assert!((p("o2", "c1") - 0.5).abs() < 1e-12);
        assert!((p("o2", "c2") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn example7_clean_answers_where_grouping_fails() {
        // q3 is NOT rewritable; the naive evaluator still answers it:
        // c1 with probability 0.3, c2 not an answer (probability 0).
        let (cat, spec) = figure2();
        let q = parse_select(
            "select c.id from orders o, customer c \
             where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000",
        )
        .unwrap();
        let ans = naive_clean_answers(&cat, &spec, &q, NaiveOptions::default()).unwrap();
        assert!((ans.probability_of(&["c1".into()]).unwrap() - 0.3).abs() < 1e-12);
        // c2 never satisfies the query in any candidate.
        assert!(ans.probability_of(&["c2".into()]).unwrap_or(0.0) < 1e-12);
    }

    #[test]
    fn candidate_limit_enforced() {
        let (cat, spec) = figure2();
        let q = parse_select("select id from customer").unwrap();
        let err =
            naive_clean_answers(&cat, &spec, &q, NaiveOptions { max_candidates: 2 }).unwrap_err();
        assert!(matches!(
            err,
            CoreError::TooManyCandidates {
                candidates: 4,
                limit: 2
            }
        ));
    }

    #[test]
    fn unreferenced_tables_not_enumerated() {
        // Query touches only customer (4 candidates), not orders (x2).
        let (cat, spec) = figure2();
        let q = parse_select("select id from customer").unwrap();
        // max_candidates = 4 suffices ⇒ orders' clusters were not included.
        let ans = naive_clean_answers(&cat, &spec, &q, NaiveOptions { max_candidates: 4 }).unwrap();
        assert_eq!(ans.len(), 2);
        assert!((ans.total_probability() - 2.0).abs() < 1e-12); // both ids certain
    }

    #[test]
    fn clusters_sorted_and_complete() {
        let (cat, spec) = figure2();
        let cl = clusters_of(cat.table("customer").unwrap(), &spec).unwrap();
        assert_eq!(cl.len(), 2);
        assert_eq!(cl[0].id, Value::text("c1"));
        assert_eq!(cl[0].rows, vec![0, 1]);
        assert_eq!(cl[1].rows, vec![2, 3]);
    }

    #[test]
    fn duplicate_answers_within_candidate_counted_once() {
        // Two orders referencing the same (certain) customer: projecting
        // just the customer id yields the same tuple twice per candidate —
        // its probability must still be 1, not 2.
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE o (id TEXT, cidfk TEXT, prob DOUBLE);
             INSERT INTO o VALUES ('o1', 'c1', 1.0), ('o2', 'c1', 1.0);
             CREATE TABLE c (id TEXT, prob DOUBLE);
             INSERT INTO c VALUES ('c1', 1.0);",
        )
        .unwrap();
        let spec = DirtySpec::uniform(&["o", "c"]);
        let q = parse_select("select c.id from o, c where o.cidfk = c.id").unwrap();
        let ans = naive_clean_answers(db.catalog(), &spec, &q, NaiveOptions::default()).unwrap();
        assert_eq!(ans.len(), 1);
        assert!((ans.probability_of(&["c1".into()]).unwrap() - 1.0).abs() < 1e-12);
    }
}
