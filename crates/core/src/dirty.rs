//! The `DirtyDatabase` facade: a database plus dirty metadata, with
//! clean-answer evaluation.

use conquer_engine::{Database, QueryResult};
use conquer_sql::{parse_select, BinaryOp, Expr, OrderByItem, SelectItem, SelectStatement};
use conquer_storage::Row;

use crate::answers::CleanAnswers;
use crate::error::CoreError;
use crate::graph::{check_rewritable, JoinGraph};
use crate::naive::{clusters_of, naive_clean_answers, Cluster, NaiveOptions};
use crate::rewrite::RewriteClean;
use crate::spec::DirtySpec;
use crate::Result;

/// How [`DirtyDatabase::clean_answers_with`] evaluates a query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvalStrategy {
    /// Use `RewriteClean` only; error if the query is not rewritable.
    #[default]
    Rewrite,
    /// Enumerate candidate databases (bounded by the options).
    Naive(NaiveOptions),
    /// Try the rewriting; if the query is not rewritable, fall back to the
    /// naive evaluator.
    Auto(NaiveOptions),
}

/// A dirty database: an engine [`Database`] whose relations carry cluster
/// identifiers and tuple probabilities described by a [`DirtySpec`]
/// (Definition 2).
#[derive(Debug, Clone)]
pub struct DirtyDatabase {
    db: Database,
    spec: DirtySpec,
}

impl DirtyDatabase {
    /// Wrap a database, validating Definition 2 (identifier and probability
    /// columns exist, probabilities within each cluster sum to 1).
    pub fn new(db: Database, spec: DirtySpec) -> Result<Self> {
        spec.validate(db.catalog())?;
        Ok(DirtyDatabase { db, spec })
    }

    /// Wrap without validation (bulk-loaded data known to be consistent;
    /// the generator's output, for instance).
    pub fn new_unvalidated(db: Database, spec: DirtySpec) -> Self {
        DirtyDatabase { db, spec }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The dirty metadata.
    pub fn spec(&self) -> &DirtySpec {
        &self.spec
    }

    /// Re-validate after mutation.
    pub fn validate(&self) -> Result<()> {
        self.spec.validate(self.db.catalog())
    }

    /// The clusters of one dirty relation, sorted by identifier.
    pub fn clusters(&self, table: &str) -> Result<Vec<Cluster>> {
        clusters_of(self.db.catalog().table(table)?, &self.spec)
    }

    /// Total number of candidate databases induced by the listed tables
    /// (all registered tables if `None`).
    pub fn candidate_count(&self, tables: Option<&[String]>) -> Result<u128> {
        let owned: Vec<String> = match tables {
            Some(t) => t.to_vec(),
            None => self.spec.tables().map(|(n, _)| n.to_string()).collect(),
        };
        let mut count: u128 = 1;
        for t in &owned {
            for c in self.clusters(t)? {
                count = count.saturating_mul(c.rows.len() as u128);
            }
        }
        Ok(count)
    }

    /// Check the four rewritability conditions for a query (SQL text).
    pub fn check_rewritable(&self, sql: &str) -> Result<JoinGraph> {
        let stmt = parse_select(sql)?;
        check_rewritable(self.db.catalog(), &self.spec, &stmt)
    }

    /// Statically analyze a query against this dirty database: all the
    /// engine lints ([`Database::analyze`]) plus a `CQ1007` warning when the
    /// query falls outside the rewritable class and clean-answer evaluation
    /// would have to fall back to naive enumeration — including the
    /// estimated number of candidate databases that implies.
    pub fn analyze(&self, sql: &str) -> Vec<conquer_engine::Diagnostic> {
        let mut diags = self.db.analyze(sql);
        // Rewritability is only worth reporting for queries that at least
        // bind cleanly.
        if diags.iter().any(|d| d.is_error()) {
            return diags;
        }
        let Ok(stmt) = parse_select(sql) else {
            return diags;
        };
        if let Ok(Err(reason)) =
            crate::graph::explain_rewritable(self.db.catalog(), &self.spec, &stmt)
        {
            let tables: Vec<String> = stmt
                .from
                .iter()
                .map(|t| t.table.clone())
                .filter(|t| self.spec.meta(t).is_some())
                .collect();
            let candidates = self.candidate_count(Some(&tables)).unwrap_or(u128::MAX);
            let span = reason
                .obstacles
                .first()
                .map(|o| o.span)
                .unwrap_or(conquer_sql::Span::NONE);
            diags.push(
                conquer_engine::Diagnostic::new(
                    conquer_engine::Code::NaiveFallback,
                    span,
                    format!(
                        "query is outside the rewritable class (Definition 7); naive \
                         evaluation would enumerate ~{candidates} candidate database(s)"
                    ),
                )
                .with_help(reason.render_tree(Some(sql))),
            );
        }
        diags
    }

    /// Produce the rewritten (clean-answer) query for inspection.
    pub fn rewrite(&self, sql: &str) -> Result<SelectStatement> {
        let stmt = parse_select(sql)?;
        RewriteClean.rewrite(self.db.catalog(), &self.spec, &stmt)
    }

    /// Clean answers via `RewriteClean` (errors if not rewritable).
    pub fn clean_answers(&self, sql: &str) -> Result<CleanAnswers> {
        self.clean_answers_with(sql, EvalStrategy::Rewrite)
    }

    /// Clean answers with an explicit evaluation strategy.
    pub fn clean_answers_with(&self, sql: &str, strategy: EvalStrategy) -> Result<CleanAnswers> {
        let stmt = parse_select(sql)?;
        self.clean_answers_stmt(&stmt, strategy)
    }

    /// Clean answers for an already-parsed query.
    pub fn clean_answers_stmt(
        &self,
        stmt: &SelectStatement,
        strategy: EvalStrategy,
    ) -> Result<CleanAnswers> {
        match strategy {
            EvalStrategy::Rewrite => self.rewritten_answers(stmt),
            EvalStrategy::Naive(opts) => {
                naive_clean_answers(self.db.catalog(), &self.spec, stmt, opts)
            }
            EvalStrategy::Auto(opts) => match self.rewritten_answers(stmt) {
                Ok(ans) => Ok(ans),
                Err(CoreError::NotRewritable(_)) => {
                    naive_clean_answers(self.db.catalog(), &self.spec, stmt, opts)
                }
                Err(other) => Err(other),
            },
        }
    }

    /// The `k` most probable clean answers, ranked by probability — the
    /// presentation the paper motivates ("which query answers are most
    /// likely to be present in the clean database"). The ranking and limit
    /// are pushed into the rewritten SQL (`ORDER BY probability DESC LIMIT
    /// k`), so the engine sorts groups, not join rows.
    pub fn clean_answers_topk(&self, sql: &str, k: u64) -> Result<CleanAnswers> {
        let stmt = parse_select(sql)?;
        let mut rewritten = RewriteClean.rewrite(self.db.catalog(), &self.spec, &stmt)?;
        let prob_alias = probability_alias(&rewritten);
        rewritten.order_by = vec![OrderByItem {
            expr: Expr::column(prob_alias),
            desc: true,
        }];
        rewritten.limit = Some(k);
        let result = self.db.prepare_select(&rewritten)?.query(&self.db)?;
        Ok(result_to_answers(result))
    }

    /// Clean answers with probability at least `tau`, filtered inside the
    /// rewritten SQL via `HAVING SUM(probs) >= tau` — groups below the
    /// threshold are discarded before projection.
    pub fn clean_answers_above(&self, sql: &str, tau: f64) -> Result<CleanAnswers> {
        let stmt = parse_select(sql)?;
        let mut rewritten = RewriteClean.rewrite(self.db.catalog(), &self.spec, &stmt)?;
        let Some(SelectItem::Expr { expr: sum_expr, .. }) = rewritten.projection.last() else {
            return Err(conquer_engine::EngineError::internal(
                "RewriteClean must append the probability aggregate as the last projection item",
            )
            .into());
        };
        rewritten.having = Some(Expr::binary(
            sum_expr.clone(),
            BinaryOp::GtEq,
            Expr::float(tau),
        ));
        let result = self.db.prepare_select(&rewritten)?.query(&self.db)?;
        Ok(result_to_answers(result))
    }

    /// Consistent answers (Arenas et al.): the probability-1 fragment of the
    /// clean answers.
    pub fn consistent_answers(&self, sql: &str) -> Result<Vec<Row>> {
        let answers = self.clean_answers(sql)?;
        Ok(answers.consistent(1e-9).into_iter().cloned().collect())
    }

    fn rewritten_answers(&self, stmt: &SelectStatement) -> Result<CleanAnswers> {
        let rewritten = RewriteClean.rewrite(self.db.catalog(), &self.spec, stmt)?;
        let result = self.db.prepare_select(&rewritten)?.query(&self.db)?;
        Ok(result_to_answers(result))
    }
}

/// Split a rewritten-query result into `(answer tuple, probability)` pairs —
/// the probability is the last column (the appended `SUM(probs)`).
pub fn result_to_answers(mut result: QueryResult) -> CleanAnswers {
    let stats = result.take_stats();
    let prob_idx = result.columns.len().saturating_sub(1);
    result.columns.truncate(prob_idx);
    let rows = result
        .rows
        .into_iter()
        .map(|mut row| {
            let p = row.pop().and_then(|v| v.as_f64()).unwrap_or(0.0);
            (row, p)
        })
        .collect();
    CleanAnswers::new(result.columns, rows).with_stats(stats)
}

/// The output name of the rewriting's appended probability column.
fn probability_alias(rewritten: &SelectStatement) -> String {
    match rewritten.projection.last() {
        Some(SelectItem::Expr { alias: Some(a), .. }) => a.clone(),
        _ => crate::rewrite::PROBABILITY_COLUMN.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 database (loyaltycard + customer).
    fn figure1() -> DirtyDatabase {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE loyaltycard (id TEXT, cardid INTEGER, custfk TEXT, prob DOUBLE);
             INSERT INTO loyaltycard VALUES
               ('t', 111, 'c1', 0.4),
               ('t', 111, 'c2', 0.6);
             CREATE TABLE customer (id TEXT, name TEXT, income INTEGER, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'John', 120000, 0.9),
               ('c1', 'John', 80000, 0.1),
               ('c2', 'Mary', 140000, 0.4),
               ('c2', 'Marion', 40000, 0.6);",
        )
        .unwrap();
        DirtyDatabase::new(db, DirtySpec::uniform(&["loyaltycard", "customer"])).unwrap()
    }

    #[test]
    fn figure1_card_111_is_60_percent() {
        // The introduction's motivating example: card 111 belongs to a
        // customer earning over $100K with probability 0.6.
        let dirty = figure1();
        let ans = dirty
            .clean_answers(
                "select l.id, l.cardid from loyaltycard l, customer c \
                 where l.custfk = c.id and c.income > 100000",
            )
            .unwrap();
        assert_eq!(ans.len(), 1);
        let p = ans.probability_of(&["t".into(), 111i64.into()]).unwrap();
        assert!((p - 0.6).abs() < 1e-12, "expected 0.6, got {p}");
        // And the naive evaluator agrees.
        let naive = dirty
            .clean_answers_with(
                "select l.id, l.cardid from loyaltycard l, customer c \
                 where l.custfk = c.id and c.income > 100000",
                EvalStrategy::Naive(NaiveOptions::default()),
            )
            .unwrap();
        assert!(ans.approx_same(&naive, 1e-9));
    }

    #[test]
    fn offline_cleaning_loses_answers() {
        // The paper's argument against cleaning first: keeping only the
        // most probable tuple per cluster leaves card 111 out entirely.
        let dirty = figure1();
        let mut best = Database::new();
        best.execute_script(
            "CREATE TABLE loyaltycard (id TEXT, cardid INTEGER, custfk TEXT, prob DOUBLE);
             INSERT INTO loyaltycard VALUES ('t', 111, 'c2', 1.0);
             CREATE TABLE customer (id TEXT, name TEXT, income INTEGER, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'John', 120000, 1.0),
               ('c2', 'Marion', 40000, 1.0);",
        )
        .unwrap();
        let cleaned = best
            .prepare(
                "select l.cardid from loyaltycard l, customer c \
                 where l.custfk = c.id and c.income > 100000",
            )
            .unwrap()
            .query(&best)
            .unwrap();
        assert!(cleaned.is_empty(), "offline cleaning misses card 111");
        // …whereas clean answers still surface it with probability 0.6.
        let ans = dirty
            .clean_answers(
                "select l.id from loyaltycard l, customer c \
                 where l.custfk = c.id and c.income > 100000",
            )
            .unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn auto_falls_back_to_naive() {
        let dirty = figure1();
        // Root identifier (loyaltycard.id) not selected → not rewritable.
        let sql = "select c.id from loyaltycard l, customer c \
                   where l.custfk = c.id and c.income > 100000";
        let err = dirty.clean_answers(sql).unwrap_err();
        assert!(matches!(err, CoreError::NotRewritable(_)));
        let ans = dirty
            .clean_answers_with(sql, EvalStrategy::Auto(NaiveOptions::default()))
            .unwrap();
        // c1 is an answer when the card points at c1 (0.4) and John's
        // income is 120K (0.9): 0.36. c2 when the card points at c2 (0.6)
        // and Mary/140K is chosen (0.4): 0.24.
        assert!((ans.probability_of(&["c1".into()]).unwrap() - 0.36).abs() < 1e-12);
        assert!((ans.probability_of(&["c2".into()]).unwrap() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn consistent_answers_are_probability_one() {
        let dirty = figure1();
        let rows = dirty
            .consistent_answers("select id from customer c where income > 50000")
            .unwrap();
        // c1 always earns >50K (120K or 80K); c2 only with Mary (0.4).
        assert_eq!(rows, vec![vec!["c1".into()]]);
    }

    #[test]
    fn validation_rejects_broken_probabilities() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (id TEXT, prob DOUBLE);
             INSERT INTO t VALUES ('a', 0.5), ('a', 0.1);",
        )
        .unwrap();
        let err = DirtyDatabase::new(db, DirtySpec::uniform(&["t"])).unwrap_err();
        assert!(matches!(err, CoreError::InvalidDirty(_)));
    }

    #[test]
    fn candidate_count_and_clusters() {
        let dirty = figure1();
        assert_eq!(dirty.candidate_count(None).unwrap(), 8);
        assert_eq!(
            dirty
                .candidate_count(Some(&["customer".to_string()]))
                .unwrap(),
            4
        );
        let cl = dirty.clusters("customer").unwrap();
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn rewrite_is_inspectable() {
        let dirty = figure1();
        let rw = dirty
            .rewrite("select id from customer c where income > 100000")
            .unwrap();
        assert_eq!(
            rw.to_string(),
            "SELECT id, SUM(c.prob) AS probability FROM customer c \
             WHERE income > 100000 GROUP BY id"
        );
    }

    #[test]
    fn topk_returns_most_probable_answers() {
        let dirty = figure1();
        // All customers with any income: c1 and c2 both certain; restrict
        // to a predicate that differentiates them.
        let sql = "select id from customer c where income > 100000";
        let top1 = dirty.clean_answers_topk(sql, 1).unwrap();
        assert_eq!(top1.len(), 1);
        assert_eq!(top1.rows[0].0, vec![conquer_storage::Value::text("c1")]);
        assert!((top1.rows[0].1 - 0.9).abs() < 1e-12);
        let top5 = dirty.clean_answers_topk(sql, 5).unwrap();
        assert_eq!(top5.len(), 2, "k larger than the answer set returns all");
        assert!(top5.rows[0].1 >= top5.rows[1].1, "ranked by probability");
    }

    #[test]
    fn threshold_filters_inside_sql() {
        let dirty = figure1();
        let sql = "select id from customer c where income > 100000";
        let all = dirty.clean_answers(sql).unwrap();
        assert_eq!(all.len(), 2); // 0.9 and 0.4
        let confident = dirty.clean_answers_above(sql, 0.5).unwrap();
        assert_eq!(confident.len(), 1);
        assert!((confident.rows[0].1 - 0.9).abs() < 1e-12);
        let none = dirty.clean_answers_above(sql, 0.95).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn rewritable_check_reports_reason() {
        let dirty = figure1();
        let err = dirty
            .check_rewritable("select name from customer c")
            .unwrap_err();
        match err {
            CoreError::NotRewritable(r) => {
                assert!(r.violates(crate::error::Def7Clause::RootIdProjected), "{r}")
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn analyze_warns_about_naive_fallback_with_candidate_count() {
        let dirty = figure1();
        // Root identifier not selected → not rewritable; the two FROM
        // relations induce 2 × 4 = 8 candidate databases.
        let sql = "select c.id from loyaltycard l, customer c \
                   where l.custfk = c.id and c.income > 100000";
        let diags = dirty.analyze(sql);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code.as_str(), "CQ1007");
        assert!(!diags[0].is_error());
        assert!(
            diags[0].message.contains("~8 candidate"),
            "{}",
            diags[0].message
        );
        let help = diags[0].help.as_deref().unwrap_or("");
        assert!(help.contains("Definition 7"), "{help}");
        // A rewritable query gets no fallback warning.
        assert!(dirty
            .analyze(
                "select l.id from loyaltycard l, customer c \
                 where l.custfk = c.id and c.income > 100000"
            )
            .is_empty());
    }
}
