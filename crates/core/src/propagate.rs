//! Identifier propagation (Section 2.1).
//!
//! After tuple matching assigns cluster identifiers to a parent relation,
//! every foreign key referencing it must be updated to refer to the
//! identifiers. The paper describes two styles, both supported here:
//!
//! * [`propagate_new_column`] — add a new column (the paper's `cidfk` in
//!   Figure 2) holding the parent identifier for each child row, keeping the
//!   original foreign key;
//! * [`propagate_in_place`] — overwrite the foreign key values with the
//!   identifiers (the style used in the paper's experiments, Section 5.3:
//!   "the approach that replaces the values of the original keys of the
//!   relations with the identifier selected by the tuple matching tool").

use std::collections::HashMap;

use conquer_storage::{Catalog, Column, DataType, Value};

use crate::error::CoreError;
use crate::Result;

/// Build the `original key → cluster identifier` mapping from a parent
/// table. Fails if one key maps to two identifiers (the matcher's output
/// would be inconsistent).
fn key_to_id_map(
    catalog: &Catalog,
    parent: &str,
    parent_key: &str,
    parent_id: &str,
) -> Result<HashMap<Value, Value>> {
    let table = catalog.table(parent)?;
    let key_col = table.column_index(parent_key)?;
    let id_col = table.column_index(parent_id)?;
    let mut map = HashMap::with_capacity(table.len());
    for row in table.rows() {
        let key = row[key_col].clone();
        let id = row[id_col].clone();
        if key.is_null() {
            continue;
        }
        if let Some(prev) = map.insert(key.clone(), id.clone()) {
            if prev != id {
                return Err(CoreError::InvalidDirty(format!(
                    "key {key} of {parent:?} maps to two identifiers ({prev} and {id})"
                )));
            }
        }
    }
    Ok(map)
}

/// Identifier data type of the parent's id column (for the new column).
fn id_type(catalog: &Catalog, parent: &str, parent_id: &str) -> Result<DataType> {
    let table = catalog.table(parent)?;
    let col = table.column_index(parent_id)?;
    Ok(table
        .schema()
        .column_at(col)
        .ok_or_else(|| {
            conquer_engine::EngineError::internal(format!(
                "column {parent}.{parent_id} resolved to index {col} but has no schema entry"
            ))
        })?
        .data_type())
}

/// Add `new_column` to `child`, holding the parent identifier referenced by
/// `child_fk` (NULL when the foreign key has no match — dangling references
/// are reported by the returned count of unmatched rows).
pub fn propagate_new_column(
    catalog: &mut Catalog,
    parent: &str,
    parent_key: &str,
    parent_id: &str,
    child: &str,
    child_fk: &str,
    new_column: &str,
) -> Result<usize> {
    let map = key_to_id_map(catalog, parent, parent_key, parent_id)?;
    let ty = id_type(catalog, parent, parent_id)?;
    let child_table = catalog.table(child)?;
    let fk_col = child_table.column_index(child_fk)?;
    let mut unmatched = 0usize;
    let values: Vec<Value> = child_table
        .rows()
        .iter()
        .map(|row| match map.get(&row[fk_col]) {
            Some(id) => id.clone(),
            None => {
                unmatched += 1;
                Value::Null
            }
        })
        .collect();
    catalog
        .table_mut(child)?
        .add_column(Column::new(new_column, ty), values)
        .map_err(CoreError::from)?;
    Ok(unmatched)
}

/// Overwrite `child_fk` in place with the parent identifiers. Unmatched
/// foreign keys are left untouched; their count is returned.
pub fn propagate_in_place(
    catalog: &mut Catalog,
    parent: &str,
    parent_key: &str,
    parent_id: &str,
    child: &str,
    child_fk: &str,
) -> Result<usize> {
    let map = key_to_id_map(catalog, parent, parent_key, parent_id)?;
    let mut unmatched = 0usize;
    catalog
        .table_mut(child)?
        .update_column(child_fk, |_, old| match map.get(old) {
            Some(id) => id.clone(),
            None => {
                unmatched += 1;
                old.clone()
            }
        })?;
    Ok(unmatched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_engine::Database;

    /// Parent `customer` with original keys m1..m4 clustered into c1/c2,
    /// child `orders` referencing the original keys (pre-propagation
    /// Figure 2).
    fn setup() -> Catalog {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE customer (id TEXT, custid TEXT, name TEXT, prob DOUBLE);
             INSERT INTO customer VALUES
               ('c1', 'm1', 'John', 0.7), ('c1', 'm2', 'John', 0.3),
               ('c2', 'm3', 'Mary', 0.2), ('c2', 'm4', 'Marion', 0.8);
             CREATE TABLE orders (id TEXT, custfk TEXT, quantity INTEGER, prob DOUBLE);
             INSERT INTO orders VALUES
               ('o1', 'm1', 3, 1.0), ('o2', 'm2', 2, 0.5), ('o2', 'm3', 5, 0.5);",
        )
        .unwrap();
        db.catalog().clone()
    }

    #[test]
    fn new_column_propagation_matches_figure2() {
        let mut cat = setup();
        let unmatched = propagate_new_column(
            &mut cat, "customer", "custid", "id", "orders", "custfk", "cidfk",
        )
        .unwrap();
        assert_eq!(unmatched, 0);
        let orders = cat.table("orders").unwrap();
        let cid = orders.column_index("cidfk").unwrap();
        let got: Vec<String> = orders.rows().iter().map(|r| r[cid].to_string()).collect();
        assert_eq!(got, vec!["c1", "c1", "c2"]); // exactly Figure 2's cidfk
    }

    #[test]
    fn in_place_propagation_rewrites_fk() {
        let mut cat = setup();
        let unmatched =
            propagate_in_place(&mut cat, "customer", "custid", "id", "orders", "custfk").unwrap();
        assert_eq!(unmatched, 0);
        let orders = cat.table("orders").unwrap();
        let fk = orders.column_index("custfk").unwrap();
        let got: Vec<String> = orders.rows().iter().map(|r| r[fk].to_string()).collect();
        assert_eq!(got, vec!["c1", "c1", "c2"]);
    }

    #[test]
    fn dangling_fk_counted() {
        let mut cat = setup();
        cat.table_mut("orders")
            .unwrap()
            .insert(vec!["o3".into(), "m9".into(), 1.into(), 1.0.into()])
            .unwrap();
        let unmatched = propagate_new_column(
            &mut cat, "customer", "custid", "id", "orders", "custfk", "cidfk",
        )
        .unwrap();
        assert_eq!(unmatched, 1);
        let orders = cat.table("orders").unwrap();
        let cid = orders.column_index("cidfk").unwrap();
        assert!(orders.rows()[3][cid].is_null());
    }

    #[test]
    fn inconsistent_matcher_output_rejected() {
        let mut cat = setup();
        // Same original key m1 assigned to two clusters.
        cat.table_mut("customer")
            .unwrap()
            .insert(vec!["c9".into(), "m1".into(), "Johnny".into(), 1.0.into()])
            .unwrap();
        let err = propagate_new_column(
            &mut cat, "customer", "custid", "id", "orders", "custfk", "cidfk",
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidDirty(_)));
    }
}
