//! The `RewriteClean` query rewriting (Figure 4 of the paper).
//!
//! Given a rewritable SPJ query
//!
//! ```sql
//! SELECT A1, …, An FROM R1, …, Rm WHERE W
//! ```
//!
//! produce
//!
//! ```sql
//! SELECT A1, …, An, SUM(R1.prob * … * Rm.prob) AS probability
//! FROM R1, …, Rm WHERE W
//! GROUP BY A1, …, An
//! ```
//!
//! The rewriting is purely syntactic (AST → AST) and engine-independent —
//! the paper's key practical point is that clean answers come out of an
//! ordinary SQL engine at ordinary SQL cost. `ORDER BY` and `LIMIT` are
//! carried through; within the rewritable class the query has no grouping,
//! aggregates or DISTINCT to preserve.

use conquer_sql::{AggFunc, Expr, SelectItem, SelectStatement};
use conquer_storage::Catalog;

use crate::graph::check_rewritable;
use crate::spec::DirtySpec;
use crate::Result;

/// Name given to the appended probability column (uniquified on collision).
pub const PROBABILITY_COLUMN: &str = "probability";

/// The `RewriteClean` transformation.
#[derive(Debug, Clone, Default)]
pub struct RewriteClean;

impl RewriteClean {
    /// Check the query is rewritable (Definition 7) and rewrite it.
    pub fn rewrite(
        &self,
        catalog: &Catalog,
        spec: &DirtySpec,
        stmt: &SelectStatement,
    ) -> Result<SelectStatement> {
        check_rewritable(catalog, spec, stmt)?;
        self.rewrite_unchecked(spec, stmt)
    }

    /// Apply Figure 4 without the rewritability check.
    ///
    /// Useful to demonstrate (as the paper's Example 7 does) that the
    /// grouping-and-summing strategy returns *wrong* probabilities outside
    /// the rewritable class.
    pub fn rewrite_unchecked(
        &self,
        spec: &DirtySpec,
        stmt: &SelectStatement,
    ) -> Result<SelectStatement> {
        let mut out = stmt.clone();

        // SUM(R1.prob * … * Rm.prob)
        let mut prob_factors = Vec::with_capacity(stmt.from.len());
        for tref in &stmt.from {
            let meta = spec.require(&tref.table)?;
            prob_factors.push(Expr::qualified(tref.binding_name(), &meta.prob_column));
        }
        let sum = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::product(prob_factors))),
            distinct: false,
        };

        // GROUP BY the projected attributes (deduplicated).
        let mut group_by: Vec<Expr> = Vec::new();
        for item in &stmt.projection {
            let SelectItem::Expr { expr, .. } = item else {
                return Err(crate::error::NotRewritable::because(
                    crate::error::Def7Clause::SpjShape,
                    "wildcard projections cannot be rewritten; list the attributes explicitly",
                )
                .into());
            };
            if !group_by.contains(expr) {
                group_by.push(expr.clone());
            }
        }
        out.group_by = group_by;

        out.projection.push(SelectItem::Expr {
            expr: sum,
            alias: Some(self.probability_alias(stmt)),
        });
        Ok(out)
    }

    /// Pick an output name for the probability column that does not collide
    /// with existing projection names.
    fn probability_alias(&self, stmt: &SelectStatement) -> String {
        let existing: Vec<String> = stmt
            .projection
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    alias: None,
                } => Some(c.name.clone()),
                _ => None,
            })
            .collect();
        let mut name = PROBABILITY_COLUMN.to_string();
        let mut i = 1;
        while existing.contains(&name) {
            name = format!("{PROBABILITY_COLUMN}_{i}");
            i += 1;
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_sql::parse_select;

    fn spec() -> DirtySpec {
        DirtySpec::uniform(&["customer", "orders"])
    }

    #[test]
    fn example5_rewriting() {
        // Paper Example 5: single-relation query.
        let q = parse_select("select id from customer c where balance > 10000").unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        assert_eq!(
            rw.to_string(),
            "SELECT id, SUM(c.prob) AS probability FROM customer c \
             WHERE balance > 10000 GROUP BY id"
        );
    }

    #[test]
    fn example6_rewriting() {
        // Paper Example 6: foreign-key join.
        let q = parse_select(
            "select o.id, c.id from orders o, customer c \
             where o.cidfk = c.id and c.balance > 10000",
        )
        .unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        assert_eq!(
            rw.to_string(),
            "SELECT o.id, c.id, SUM(o.prob * c.prob) AS probability \
             FROM orders o, customer c \
             WHERE o.cidfk = c.id AND c.balance > 10000 GROUP BY o.id, c.id"
        );
    }

    #[test]
    fn order_by_and_limit_carried_through() {
        let q = parse_select(
            "select o.id from orders o where o.quantity > 1 order by o.id desc limit 7",
        )
        .unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        assert!(
            rw.to_string()
                .ends_with("GROUP BY o.id ORDER BY o.id DESC LIMIT 7"),
            "{rw}"
        );
    }

    #[test]
    fn expression_projections_grouped() {
        let q = parse_select("select o.id, o.quantity * 2 as dbl from orders o").unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        assert_eq!(rw.group_by.len(), 2);
        assert_eq!(rw.group_by[1].to_string(), "o.quantity * 2");
    }

    #[test]
    fn duplicate_projection_grouped_once() {
        let q = parse_select("select o.id, o.id from orders o").unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        assert_eq!(rw.group_by.len(), 1);
    }

    #[test]
    fn probability_alias_uniquified() {
        let q = parse_select("select o.id as probability from orders o").unwrap();
        let rw = RewriteClean.rewrite_unchecked(&spec(), &q).unwrap();
        let SelectItem::Expr { alias: Some(a), .. } = rw.projection.last().unwrap() else {
            panic!()
        };
        assert_eq!(a, "probability_1");
    }

    #[test]
    fn wildcard_rejected() {
        let q = parse_select("select * from orders").unwrap();
        assert!(RewriteClean.rewrite_unchecked(&spec(), &q).is_err());
    }

    #[test]
    fn missing_spec_entry_rejected() {
        let q = parse_select("select l.id from lineitem l").unwrap();
        assert!(RewriteClean.rewrite_unchecked(&spec(), &q).is_err());
    }
}
