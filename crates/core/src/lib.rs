//! # conquer-core
//!
//! The paper's contribution: *clean answers* over dirty databases.
//!
//! A **dirty database** (Definition 2) is a database in which each relation
//! carries a clustering of its tuples — tuples in the same cluster are
//! potential duplicates of one real-world entity — and a probability
//! function per cluster (probabilities within a cluster sum to 1). Here the
//! clustering is encoded by an *identifier column* (shared value = same
//! cluster) and the probabilities by a *probability column*, exactly as the
//! paper's Figure 2 tables do; [`DirtySpec`] names those columns.
//!
//! A **candidate database** (Definition 3) picks exactly one tuple per
//! cluster; its probability is the product of the chosen tuples'
//! probabilities (Definition 4). A **clean answer** (Definition 5) is an
//! answer tuple together with the summed probability of the candidate
//! databases that produce it.
//!
//! Two evaluation strategies are provided:
//!
//! * [`naive`] — materialize every candidate database and apply Definition 5
//!   literally. Exponential; used as the correctness oracle in tests and to
//!   answer non-rewritable queries on small databases (the paper's
//!   Example 7 query is handled this way).
//! * [`rewrite`] — the `RewriteClean` SQL rewriting (Figure 4), valid for
//!   the class of *rewritable* queries (Definition 7, checked by
//!   [`JoinGraph`]): group by the projected attributes and sum the product
//!   of the relations' probability columns. Runs directly on the dirty
//!   database with ordinary SQL execution cost.
//!
//! [`DirtyDatabase::clean_answers`] ties it together: check rewritability,
//! rewrite, execute — falling back to the naive evaluator only if asked.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod answers;
pub mod crossref;
pub mod dirty;
pub mod error;
pub mod expected;
pub mod explain;
pub mod graph;
pub mod naive;
pub mod propagate;
pub mod rewrite;
pub mod spec;

/// The workspace's instrumented synchronization layer (ranked lock wrappers,
/// lock-order deadlock detection, the deterministic schedule explorer). This
/// re-export of the `conquer-sync` foundation crate is the canonical path.
pub use conquer_sync as sync;

pub use answers::CleanAnswers;
pub use crossref::apply_crossref;
pub use dirty::{DirtyDatabase, EvalStrategy};
pub use error::{CoreError, Def7Clause, NotRewritable, RewriteObstacle};
pub use expected::{naive_expected, RewriteExpected};
pub use explain::{explain_answer, Explanation, Support};
pub use graph::{explain_rewritable, JoinGraph};
pub use naive::{CandidateDatabases, NaiveOptions};
pub use propagate::{propagate_in_place, propagate_new_column};
pub use rewrite::RewriteClean;
pub use spec::{DirtySpec, DirtyTableMeta};

/// Convenience result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
