//! Deeper join-graph scenarios: multi-level foreign-key chains and fan-out
//! trees, checked for rewritability and validated against the naive
//! evaluator on databases small enough to enumerate.

use conquer_core::{
    naive::NaiveOptions, CoreError, Def7Clause, DirtyDatabase, DirtySpec, EvalStrategy,
};
use conquer_engine::Database;

/// A four-level chain: lineitem → orders → customer → nation, each dirty
/// with two 2-tuple clusters (2^8 = 256 candidates; nation clean).
fn chain_db() -> DirtyDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE nation (id TEXT, name TEXT, prob DOUBLE);
         INSERT INTO nation VALUES ('n1', 'CA', 1.0), ('n2', 'US', 1.0);
         CREATE TABLE customer (id TEXT, nfk TEXT, balance INTEGER, prob DOUBLE);
         INSERT INTO customer VALUES
           ('c1', 'n1', 10, 0.6), ('c1', 'n1', 20, 0.4),
           ('c2', 'n2', 30, 0.5), ('c2', 'n2', 40, 0.5);
         CREATE TABLE orders (id TEXT, cfk TEXT, qty INTEGER, prob DOUBLE);
         INSERT INTO orders VALUES
           ('o1', 'c1', 1, 0.7), ('o1', 'c1', 2, 0.3),
           ('o2', 'c2', 3, 0.9), ('o2', 'c2', 4, 0.1);
         CREATE TABLE lineitem (id TEXT, ofk TEXT, price INTEGER, prob DOUBLE);
         INSERT INTO lineitem VALUES
           ('l1', 'o1', 100, 0.5), ('l1', 'o1', 200, 0.5),
           ('l2', 'o2', 300, 0.8), ('l2', 'o2', 400, 0.2);",
    )
    .unwrap();
    DirtyDatabase::new(
        db,
        DirtySpec::uniform(&["nation", "customer", "orders", "lineitem"]),
    )
    .unwrap()
}

const CHAIN_SQL: &str = "select l.id, o.id, c.id, n.name \
     from lineitem l, orders o, customer c, nation n \
     where l.ofk = o.id and o.cfk = c.id and c.nfk = n.id and c.balance < 35";

#[test]
fn four_level_chain_is_rewritable_with_lineitem_root() {
    let dirty = chain_db();
    let graph = dirty.check_rewritable(CHAIN_SQL).unwrap();
    assert_eq!(graph.root, Some(0), "lineitem is the chain's root");
    assert_eq!(graph.arcs.len(), 3);
    assert_eq!(graph.describe(), "l -> o, o -> c, c -> n");
}

#[test]
fn chain_rewriting_matches_enumeration() {
    let dirty = chain_db();
    let rewritten = dirty.clean_answers(CHAIN_SQL).unwrap();
    let naive = dirty
        .clean_answers_with(CHAIN_SQL, EvalStrategy::Naive(NaiveOptions::default()))
        .unwrap();
    assert!(
        rewritten.approx_same(&naive, 1e-9),
        "chain query:\nrewritten {rewritten}\nnaive {naive}"
    );
    // Sanity: l1 joins c1 whose balance is always < 35 ⇒ certainty 1;
    // l2 joins c2 whose balance < 35 only for the 30-balance tuple (0.5).
    assert!(
        (rewritten
            .probability_of(&["l1".into(), "o1".into(), "c1".into(), "CA".into()])
            .unwrap()
            - 1.0)
            .abs()
            < 1e-9
    );
    assert!(
        (rewritten
            .probability_of(&["l2".into(), "o2".into(), "c2".into(), "US".into()])
            .unwrap()
            - 0.5)
            .abs()
            < 1e-9
    );
}

#[test]
fn fan_out_tree_rewritable_from_the_hub() {
    // lineitem joins two parents (orders and customer directly):
    // arcs l→o and l→c form a tree rooted at l.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE o (id TEXT, prob DOUBLE);
         INSERT INTO o VALUES ('o1', 0.5), ('o1', 0.5);
         CREATE TABLE c (id TEXT, prob DOUBLE);
         INSERT INTO c VALUES ('c1', 1.0);
         CREATE TABLE l (id TEXT, ofk TEXT, cfk TEXT, prob DOUBLE);
         INSERT INTO l VALUES ('l1', 'o1', 'c1', 0.25), ('l1', 'o1', 'c1', 0.75);",
    )
    .unwrap();
    let dirty = DirtyDatabase::new(db, DirtySpec::uniform(&["o", "c", "l"])).unwrap();
    let sql = "select l.id, o.id, c.id from l, o, c where l.ofk = o.id and l.cfk = c.id";
    let graph = dirty.check_rewritable(sql).unwrap();
    assert_eq!(graph.arcs.len(), 2);
    let rewritten = dirty.clean_answers(sql).unwrap();
    let naive = dirty
        .clean_answers_with(sql, EvalStrategy::Naive(NaiveOptions::default()))
        .unwrap();
    assert!(rewritten.approx_same(&naive, 1e-9));
    // The single answer is certain: every candidate contains one l1, one o1,
    // one c1 and they always join.
    assert_eq!(rewritten.len(), 1);
    assert!((rewritten.rows[0].1 - 1.0).abs() < 1e-9);
}

#[test]
fn middle_of_chain_as_root_fails_condition_four() {
    // Projecting o.id but not l.id: the root (lineitem) id is missing.
    let dirty = chain_db();
    let sql = "select o.id, c.id, n.name \
               from lineitem l, orders o, customer c, nation n \
               where l.ofk = o.id and o.cfk = c.id and c.nfk = n.id";
    let err = dirty.clean_answers(sql).unwrap_err();
    assert!(matches!(
        err,
        CoreError::NotRewritable(ref r) if r.violates(Def7Clause::RootIdProjected)
    ));
    // …and the naive fallback still answers it correctly (256 candidates).
    let ans = dirty
        .clean_answers_with(sql, EvalStrategy::Auto(NaiveOptions::default()))
        .unwrap();
    assert_eq!(ans.len(), 2);
    for (_, p) in &ans.rows {
        assert!(
            (p - 1.0).abs() < 1e-9,
            "unfiltered chain answers are certain"
        );
    }
}

#[test]
fn diamond_shape_rejected_as_non_tree() {
    // l references o twice… not expressible without two FK columns; use a
    // genuine diamond: l→o, l→c, o→c makes c have in-degree 2.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE c (id TEXT, prob DOUBLE);
         INSERT INTO c VALUES ('c1', 1.0);
         CREATE TABLE o (id TEXT, cfk TEXT, prob DOUBLE);
         INSERT INTO o VALUES ('o1', 'c1', 1.0);
         CREATE TABLE l (id TEXT, ofk TEXT, cfk TEXT, prob DOUBLE);
         INSERT INTO l VALUES ('l1', 'o1', 'c1', 1.0);",
    )
    .unwrap();
    let dirty = DirtyDatabase::new(db, DirtySpec::uniform(&["c", "o", "l"])).unwrap();
    let err = dirty
        .check_rewritable(
            "select l.id, o.id, c.id from l, o, c \
             where l.ofk = o.id and l.cfk = c.id and o.cfk = c.id",
        )
        .unwrap_err();
    assert!(matches!(
        err,
        CoreError::NotRewritable(ref r) if r.violates(Def7Clause::GraphIsTree)
    ));
}

#[test]
fn chain_certainty_composes_multiplicatively() {
    // A chain where each hop has an uncertain join attribute would multiply
    // probabilities; here the FK values are certain, so filtering on the
    // leaf controls the probability alone.
    let dirty = chain_db();
    let sql = "select l.id, o.id, c.id, n.name \
               from lineitem l, orders o, customer c, nation n \
               where l.ofk = o.id and o.cfk = c.id and c.nfk = n.id \
                 and l.price >= 200 and o.qty <= 3";
    let rewritten = dirty.clean_answers(sql).unwrap();
    let naive = dirty
        .clean_answers_with(sql, EvalStrategy::Naive(NaiveOptions::default()))
        .unwrap();
    assert!(rewritten.approx_same(&naive, 1e-9));
    // l1: price≥200 with prob 0.5; o1: qty≤3 always (1 or 2) ⇒ 0.5.
    assert!(
        (rewritten
            .probability_of(&["l1".into(), "o1".into(), "c1".into(), "CA".into()])
            .unwrap()
            - 0.5)
            .abs()
            < 1e-9
    );
    // l2: price≥200 always; o2: qty≤3 with prob 0.9 ⇒ 0.9.
    assert!(
        (rewritten
            .probability_of(&["l2".into(), "o2".into(), "c2".into(), "US".into()])
            .unwrap()
            - 0.9)
            .abs()
            < 1e-9
    );
}
