//! Deterministic schedule-exploration (model) tests for the engine's three
//! concurrency kernels, driven through the canonical `conquer_core::sync`
//! re-export:
//!
//! 1. **Snapshot pin vs. writer publish vs. checkpoint truncation** — a
//!    pinned snapshot stays byte-identical while a writer commits and a
//!    checkpoint truncates the WAL under it, in every interleaving; and
//!    with two concurrent writers no epoch bump is ever lost.
//! 2. **AdmissionGate acquire/release/timeout** — slot accounting is exact
//!    (never over max_running, drains to zero) across every interleaving,
//!    including spurious wakeups and zero-duration timeouts.
//! 3. **Plan/result-cache epoch sweep** — a reader racing a writer's
//!    publish+sweep never observes an answer whose row set contradicts the
//!    epoch it is stamped with.
//!
//! Each kernel also proves its own teeth: re-running the exploration with a
//! seeded mutant armed (`conquer_sync::arm_mutant`) must find a failing
//! schedule. The mutants live behind `cfg(any(debug_assertions, feature =
//! "analysis"))` in the production crates and fire only on virtual model
//! threads, so they can never leak into ordinary execution.
#![cfg(any(debug_assertions, feature = "analysis"))]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use conquer_core::sync::sched::Explorer;
use conquer_core::sync::{arm_mutant, clear_mutants, rank, Mutex, MutexGuard};
use conquer_engine::{
    AdmissionGate, Database, EngineError, SharedConfig, SharedDatabase, Snapshot,
};
use conquer_storage::Value;

/// Mutant arming is process-global (though it only fires on model threads),
/// so tests that arm or must-not-see mutants serialize on this lock.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

fn count_rows(snap: &Snapshot, table: &str) -> usize {
    snap.db().catalog().table(table).unwrap().len()
}

fn scalar(result: &conquer_engine::QueryResult) -> i64 {
    match result.iter_rows().next().unwrap()[0] {
        Value::Int(n) => n,
        ref v => panic!("expected integer scalar, got {v:?}"),
    }
}

// ---------------------------------------------------------------------------
// Kernel 1: snapshot pin vs. writer publish vs. checkpoint truncation
// ---------------------------------------------------------------------------

fn model_tempdir() -> PathBuf {
    std::env::temp_dir().join(format!("conquer_model_snap_{}", std::process::id()))
}

#[test]
fn snapshot_stays_immutable_under_publish_and_checkpoint() {
    let _s = serialize();
    let dir = model_tempdir();
    let report = Explorer::new().max_preemptions(1).explore(|exec| {
        let _ = std::fs::remove_dir_all(&dir);
        let (shared, _report) =
            SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
        let setup = shared.session();
        setup
            .execute("CREATE TABLE t (id INTEGER, val INTEGER)")
            .unwrap();
        setup.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        let e0 = shared.epoch();

        let db = shared.clone();
        exec.spawn("writer", move || {
            db.session()
                .execute("INSERT INTO t VALUES (2, 20)")
                .unwrap();
        });

        let db = shared.clone();
        exec.spawn("checkpointer", move || {
            // A checkpoint folds state and truncates the WAL but never
            // bumps the epoch or perturbs published versions.
            let info = db.checkpoint().unwrap().expect("durable handle");
            assert!(
                info.epoch == e0 || info.epoch == e0 + 1,
                "epoch {}",
                info.epoch
            );
        });

        let db = shared.clone();
        exec.spawn("reader", move || {
            let snap = db.snapshot();
            let epoch = snap.epoch();
            let before = count_rows(&snap, "t");
            let expect = if epoch == e0 { 1 } else { 2 };
            assert_eq!(before, expect, "rows inconsistent with epoch {epoch}");
            // Yield (an instrumented lock op) so the writer/checkpointer can
            // run between the two reads of the same pinned snapshot.
            let _ = db.epoch();
            assert_eq!(snap.epoch(), epoch, "pinned snapshot changed epoch");
            assert_eq!(
                count_rows(&snap, "t"),
                before,
                "pinned snapshot changed rows"
            );
        });

        let db = shared.clone();
        exec.check(move || {
            assert_eq!(db.epoch(), e0 + 1, "exactly one epoch bump");
            assert_eq!(count_rows(&db.snapshot(), "t"), 2);
        });
    });
    report.assert_passed();
    assert!(report.schedules > 1, "three racing threads must interleave");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_writers_never_lose_an_epoch_bump_and_mutant_is_caught() {
    let _s = serialize();
    let run = || {
        Explorer::new().explore(|exec| {
            let shared = SharedDatabase::new(Database::new());
            let setup = shared.session();
            setup.execute("CREATE TABLE t (id INTEGER)").unwrap();
            let e0 = shared.epoch();
            for w in 0..2 {
                let db = shared.clone();
                exec.spawn(&format!("writer-{w}"), move || {
                    db.session()
                        .execute(&format!("INSERT INTO t VALUES ({w})"))
                        .unwrap();
                });
            }
            let db = shared.clone();
            exec.check(move || {
                assert_eq!(db.epoch(), e0 + 2, "an epoch bump was lost");
                assert_eq!(
                    count_rows(&db.snapshot(), "t"),
                    2,
                    "a committed row was lost"
                );
            });
        })
    };

    run().assert_passed();

    // Seeded mutant: publish without holding the writer lock. Both writers
    // clone the same base version in some schedule, so one commit — and its
    // epoch bump — vanishes. The exploration must find that schedule.
    arm_mutant("shared::unserialized-publish");
    let report = run();
    clear_mutants();
    let failure = report
        .failure
        .expect("the unserialized-publish mutant must be caught");
    assert!(failure.contains("lost"), "unexpected failure: {failure}");
}

// ---------------------------------------------------------------------------
// Kernel 2: AdmissionGate acquire / release / timeout
// ---------------------------------------------------------------------------

/// Admit, track the concurrency high-water mark while holding the slot
/// (with an instrumented yield point in the middle), then release.
fn gated_section(gate: &AdmissionGate, active: &AtomicUsize, hw: &AtomicUsize) {
    let permit = gate.admit(None).unwrap();
    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
    hw.fetch_max(now, Ordering::SeqCst);
    let _ = gate.running(); // yield while the slot is held
    active.fetch_sub(1, Ordering::SeqCst);
    drop(permit);
}

#[test]
fn gate_slot_accounting_is_exact_in_every_schedule() {
    let _s = serialize();
    let report = Explorer::new().explore(|exec| {
        let gate = Arc::new(AdmissionGate::new(1, 2));
        let active = Arc::new(AtomicUsize::new(0));
        let hw = Arc::new(AtomicUsize::new(0));
        for t in 0..2 {
            let (gate, active, hw) = (Arc::clone(&gate), Arc::clone(&active), Arc::clone(&hw));
            exec.spawn(&format!("query-{t}"), move || {
                gated_section(&gate, &active, &hw)
            });
        }
        exec.check(move || {
            assert!(hw.load(Ordering::SeqCst) <= 1, "gate over-admitted");
            assert_eq!(gate.running(), 0, "slots must drain to zero");
            assert_eq!(gate.queued(), 0, "queue must drain to zero");
        });
    });
    report.assert_passed();
    assert!(report.schedules > 1);
}

#[test]
fn gate_zero_timeout_sheds_exactly_when_full() {
    let _s = serialize();
    let timeouts = Arc::new(AtomicUsize::new(0));
    let admits = Arc::new(AtomicUsize::new(0));
    let (t_out, a_out) = (Arc::clone(&timeouts), Arc::clone(&admits));
    let report = Explorer::new().explore(move |exec| {
        let gate = Arc::new(AdmissionGate::new(1, 2));
        let holder = Arc::clone(&gate);
        exec.spawn("holder", move || {
            let permit = holder.admit(None).unwrap();
            let _ = holder.running(); // yield while holding
            drop(permit);
        });
        let (gate2, t, a) = (Arc::clone(&gate), Arc::clone(&t_out), Arc::clone(&a_out));
        exec.spawn("impatient", move || {
            // Zero patience: admitted instantly or a typed Timeout — and
            // either way the queue count is restored.
            match gate2.admit(Some(Duration::ZERO)) {
                Ok(permit) => {
                    a.fetch_add(1, Ordering::SeqCst);
                    drop(permit);
                }
                Err(EngineError::Timeout { .. }) => {
                    t.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        });
        let gate = Arc::clone(&gate);
        exec.check(move || {
            assert_eq!(gate.running(), 0);
            assert_eq!(gate.queued(), 0, "a timed-out waiter leaked a queue slot");
        });
    });
    report.assert_passed();
    assert!(
        timeouts.load(Ordering::SeqCst) > 0,
        "some schedule must hit the timeout"
    );
    assert!(
        admits.load(Ordering::SeqCst) > 0,
        "some schedule must admit instantly"
    );
}

#[test]
fn gate_spurious_wakeups_are_rechecked_and_mutant_is_caught() {
    let _s = serialize();
    let run = || {
        Explorer::new().explore(|exec| {
            let gate = Arc::new(AdmissionGate::new(1, 2));
            // Every wait in this execution wakes spuriously once before any
            // real notify; correct code re-checks the predicate and stays.
            assert!(gate.inject_spurious_wakes(1));
            let active = Arc::new(AtomicUsize::new(0));
            let hw = Arc::new(AtomicUsize::new(0));
            for t in 0..2 {
                let (gate, active, hw) = (Arc::clone(&gate), Arc::clone(&active), Arc::clone(&hw));
                exec.spawn(&format!("query-{t}"), move || {
                    gated_section(&gate, &active, &hw)
                });
            }
            exec.check(move || {
                assert!(hw.load(Ordering::SeqCst) <= 1, "gate over-admitted");
                assert_eq!(gate.running(), 0);
                assert_eq!(gate.queued(), 0);
            });
        })
    };

    run().assert_passed();

    // Seeded mutant: trust the first wake without re-checking the predicate.
    // The spurious wake then admits a second query into a one-slot gate.
    arm_mutant("gate::no-recheck");
    let report = run();
    clear_mutants();
    let failure = report
        .failure
        .expect("the no-recheck mutant must be caught");
    assert!(
        failure.contains("over-admitted"),
        "unexpected failure: {failure}"
    );
}

// ---------------------------------------------------------------------------
// Kernel 3: plan/result-cache epoch sweep
// ---------------------------------------------------------------------------

/// Cross join: ineligible for the morsel-parallel driver, so the model
/// threads never spawn real worker threads under the virtual scheduler.
const CACHE_SQL: &str = "SELECT COUNT(*) FROM ta, tb";

/// Query through the caches and assert the answer is consistent with the
/// epoch it is stamped with: 1x1 rows at the setup epoch, 2x1 after the
/// concurrent INSERT published.
fn query_consistent(shared: &SharedDatabase, e0: u64) {
    let r = shared.session().query(CACHE_SQL).unwrap();
    assert!(
        r.epoch == e0 || r.epoch == e0 + 1,
        "unexpected epoch {}",
        r.epoch
    );
    let expect = if r.epoch == e0 { 1 } else { 2 };
    assert_eq!(
        scalar(&r.result),
        expect,
        "stale answer served for epoch {}",
        r.epoch
    );
}

fn explore_cache_sweep() -> conquer_core::sync::sched::Report {
    // One preemption keeps the space exhaustible even when `--features
    // fault` compiles a registry-lock acquisition into every failpoint
    // (which multiplies the sync ops per commit); the stale-answer window
    // (publish → preempt → read → sweep) needs only one switch to reach.
    Explorer::new().max_preemptions(1).explore(|exec| {
        let shared = SharedDatabase::new(Database::new());
        let setup = shared.session();
        setup.execute("CREATE TABLE ta (id INTEGER)").unwrap();
        setup.execute("CREATE TABLE tb (id INTEGER)").unwrap();
        setup.execute("INSERT INTO ta VALUES (1)").unwrap();
        setup.execute("INSERT INTO tb VALUES (1)").unwrap();
        let e0 = shared.epoch();

        let db = shared.clone();
        exec.spawn("reader-a", move || query_consistent(&db, e0));
        let db = shared.clone();
        exec.spawn("writer", move || {
            db.session().execute("INSERT INTO ta VALUES (2)").unwrap();
        });
        let db = shared.clone();
        exec.spawn("reader-b", move || query_consistent(&db, e0));

        let db = shared.clone();
        exec.check(move || {
            assert_eq!(db.epoch(), e0 + 1);
            // After the dust settles the caches must answer at the new
            // epoch with the new row set.
            let r = db.session().query(CACHE_SQL).unwrap();
            assert_eq!(r.epoch, e0 + 1);
            assert_eq!(scalar(&r.result), 2);
        });
    })
}

#[test]
fn cache_sweep_never_serves_stale_answers_and_mutant_is_caught() {
    let _s = serialize();
    explore_cache_sweep().assert_passed();

    // Seeded mutant: the LRU ignores the epoch stamp on lookup. In the
    // window between the writer's version swap and its cache sweep (two
    // separate lock acquisitions), a reader looking up at the new epoch
    // finds the old entry and serves a stale row count for a fresh epoch.
    arm_mutant("lru::ignore-epoch");
    let report = explore_cache_sweep();
    clear_mutants();
    let failure = report
        .failure
        .expect("the ignore-epoch mutant must be caught");
    assert!(
        failure.contains("stale answer"),
        "unexpected failure: {failure}"
    );
}

// ---------------------------------------------------------------------------
// Kernel 4: snapshot pin vs. view-delta publish vs. checkpoint
// ---------------------------------------------------------------------------

/// Within one `Database` (a pinned snapshot or the current version), the
/// maintained view must equal a from-scratch recompute of its base table.
/// The recompute is a plain in-test fold (no engine execution, so no
/// worker-pool threads the explorer cannot schedule); the fixture uses
/// dyadic probabilities so the comparison is exact equality.
fn view_consistent(db: &Database, ctx: &str) -> Vec<(i64, f64)> {
    let cell = |v: &Value| match v {
        Value::Int(n) => *n as f64,
        Value::Float(f) => *f,
        other => panic!("{ctx}: unexpected {other:?}"),
    };
    let viewed: Vec<(i64, f64)> = db
        .catalog()
        .table("v")
        .unwrap()
        .rows()
        .iter()
        .map(|r| (cell(&r[0]) as i64, cell(&r[1])))
        .collect();
    let mut groups: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    for r in db.catalog().table("t").unwrap().rows() {
        *groups.entry(cell(&r[1]) as i64).or_insert(0.0) += cell(&r[2]);
    }
    let recomputed: Vec<(i64, f64)> = groups.into_iter().collect();
    assert_eq!(
        viewed, recomputed,
        "{ctx}: view diverged from its base table"
    );
    viewed
}

fn explore_view_publish(dir: &PathBuf) -> conquer_core::sync::sched::Report {
    Explorer::new().max_preemptions(1).explore(|exec| {
        let _ = std::fs::remove_dir_all(dir);
        let (shared, _report) = SharedDatabase::open_durable(dir, SharedConfig::default()).unwrap();
        let setup = shared.session();
        setup
            .execute("CREATE TABLE t (id TEXT, g INTEGER, prob DOUBLE)")
            .unwrap();
        setup
            .execute("INSERT INTO t VALUES ('a', 1, 0.5), ('a', 2, 0.5), ('b', 1, 0.25)")
            .unwrap();
        setup
            .execute(
                "CREATE MATERIALIZED VIEW v AS \
                 SELECT g, SUM(prob) AS p FROM t GROUP BY g",
            )
            .unwrap();
        let e0 = shared.epoch();

        // Writer: moves both 'a' tuples one group up — every view delta
        // retracts from one accumulator and adds to another, inside the
        // same publish.
        let db = shared.clone();
        exec.spawn("view-writer", move || {
            db.session()
                .execute("UPDATE t SET g = g + 1 WHERE id = 'a'")
                .unwrap();
        });

        // Checkpointer: folds and truncates under the writer; it must
        // neither tear the view nor perturb published versions.
        let db = shared.clone();
        exec.spawn("checkpointer", move || {
            let _ = db.checkpoint().unwrap().expect("durable handle");
        });

        // Reader: pins a snapshot; the view inside it is consistent with
        // the base table inside it, and stays byte-identical across the
        // writer's delta publish.
        let db = shared.clone();
        exec.spawn("reader", move || {
            let snap = db.snapshot();
            let before = view_consistent(snap.db(), "pinned snapshot");
            let _ = db.epoch(); // yield so the publish can land in between
            let after = view_consistent(snap.db(), "pinned snapshot (re-read)");
            assert_eq!(before, after, "pinned snapshot changed view contents");
        });

        let db = shared.clone();
        exec.check(move || {
            assert_eq!(db.epoch(), e0 + 1, "exactly one epoch bump");
            let snap = db.snapshot();
            let finals = view_consistent(snap.db(), "final state");
            assert_eq!(
                finals,
                vec![(1, 0.25), (2, 0.5), (3, 0.5)],
                "maintained groups wrong after publish"
            );
        });
    })
}

#[test]
fn view_delta_publish_is_atomic_and_skip_retract_mutant_is_caught() {
    let _s = serialize();
    let dir = std::env::temp_dir().join(format!("conquer_model_view_{}", std::process::id()));

    let report = explore_view_publish(&dir);
    report.assert_passed();
    assert!(report.schedules > 1, "three racing threads must interleave");

    // Seeded mutant: maintenance "forgets" to retract outgoing tuples
    // from their old accumulator, so the stale contribution survives the
    // publish. In every schedule the final view then disagrees with a
    // recompute; the exploration must find (at least) one.
    arm_mutant("view::skip-retract");
    let report = explore_view_publish(&dir);
    clear_mutants();
    let failure = report
        .failure
        .expect("the skip-retract mutant must be caught");
    assert!(
        failure.contains("view diverged") || failure.contains("maintained groups"),
        "unexpected failure: {failure}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
