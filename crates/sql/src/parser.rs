//! Recursive-descent SQL parser.

use std::fmt;

use conquer_storage::DataType;

use crate::ast::*;
use crate::lexer::{Keyword, LexError, Lexer, Token, TokenKind};
use crate::span::{SourceContext, Span};

/// A parse (or lex) error with the byte offset where it occurred.
///
/// Errors returned by the public parse entry points also carry a
/// [`SourceContext`] (line, column and the offending line of SQL), so
/// `Display` renders a caret snippet instead of a raw byte offset.
/// `context` is ignored by `==`.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the SQL text.
    pub offset: usize,
    /// Line/column plus offending line, captured at the parse entry points.
    pub context: Option<SourceContext>,
}

impl ParseError {
    /// A context-free error; the entry points attach context on the way out.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
            context: None,
        }
    }

    /// Attach line/column context from the SQL text this error came from.
    pub fn with_source(mut self, sql: &str) -> Self {
        if self.context.is_none() {
            self.context = Some(SourceContext::at(sql, self.offset));
        }
        self
    }
}

// Context is derived presentation data; equality is message + offset.
impl PartialEq for ParseError {
    fn eq(&self, other: &ParseError) -> bool {
        self.message == other.message && self.offset == other.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.context {
            Some(ctx) => write!(
                f,
                "parse error at line {}, column {}: {}\n{}",
                ctx.line,
                ctx.column,
                self.message,
                ctx.snippet()
            ),
            None => write!(f, "parse error at offset {}: {}", self.offset, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.message, e.offset)
    }
}

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let inner = |sql: &str| {
        let mut p = Parser::new(sql)?;
        let stmt = p.statement()?;
        p.eat_kind(&TokenKind::Semicolon);
        p.expect_eof()?;
        Ok(stmt)
    };
    inner(sql).map_err(|e: ParseError| e.with_source(sql))
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let inner = |sql: &str| {
        let mut p = Parser::new(sql)?;
        let mut out = Vec::new();
        loop {
            while p.eat_kind(&TokenKind::Semicolon) {}
            if p.at_eof() {
                return Ok(out);
            }
            out.push(p.statement()?);
        }
    };
    inner(sql).map_err(|e: ParseError| e.with_source(sql))
}

/// Parse a `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement, ParseError> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(
            ParseError::new(format!("expected a SELECT statement, found {other}"), 0)
                .with_source(sql),
        ),
    }
}

/// Parse a standalone scalar expression (useful in tests and tools).
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let inner = |sql: &str| {
        let mut p = Parser::new(sql)?;
        let e = p.expr()?;
        p.expect_eof()?;
        Ok(e)
    };
    inner(sql).map_err(|e: ParseError| e.with_source(sql))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(sql).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(message, self.peek().offset))
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_kind(&TokenKind::Keyword(kw))
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        self.expect_kind(&TokenKind::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {}", self.peek().kind))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(s) = self.advance().kind else {
                    unreachable!()
                };
                Ok(s)
            }
            // The paper's running example uses a relation literally named
            // `order` (Figure 2). Accept ORDER as a soft identifier whenever
            // it cannot start an ORDER BY clause.
            TokenKind::Keyword(Keyword::Order)
                if self.peek2() != &TokenKind::Keyword(Keyword::By) =>
            {
                self.advance();
                Ok("order".to_string())
            }
            other => {
                let msg = format!("expected identifier, found {other}");
                self.err(msg)
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match &self.peek().kind {
            TokenKind::Keyword(Keyword::Select) => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(Keyword::Create)
                if self.peek2() == &TokenKind::Keyword(Keyword::Materialized) =>
            {
                Ok(Statement::CreateView(self.create_view()?))
            }
            TokenKind::Keyword(Keyword::Create) => Ok(Statement::CreateTable(self.create_table()?)),
            TokenKind::Keyword(Keyword::Insert) => Ok(Statement::Insert(self.insert()?)),
            TokenKind::Keyword(Keyword::Delete) => Ok(Statement::Delete(self.delete()?)),
            TokenKind::Keyword(Keyword::Update) => Ok(Statement::Update(self.update()?)),
            TokenKind::Keyword(Keyword::Drop) => {
                self.advance();
                if self.eat_kw(Keyword::Materialized) {
                    self.expect_kw(Keyword::View)?;
                    Ok(Statement::DropView(self.ident()?))
                } else {
                    self.expect_kw(Keyword::Table)?;
                    Ok(Statement::DropTable(self.ident()?))
                }
            }
            TokenKind::Keyword(Keyword::Refresh) => {
                self.advance();
                self.expect_kw(Keyword::Materialized)?;
                self.expect_kw(Keyword::View)?;
                Ok(Statement::RefreshView(self.ident()?))
            }
            TokenKind::Keyword(Keyword::Recluster) => Ok(Statement::Recluster(self.recluster()?)),
            TokenKind::Keyword(Keyword::Reannotate) => {
                Ok(Statement::Reannotate(self.reannotate()?))
            }
            TokenKind::Keyword(Keyword::Apply) => {
                Ok(Statement::ApplyCrossref(self.apply_crossref()?))
            }
            TokenKind::Keyword(Keyword::Explain) => {
                self.advance();
                let analyze = self.eat_kw(Keyword::Analyze);
                Ok(Statement::Explain {
                    analyze,
                    query: self.select()?,
                })
            }
            other => {
                let msg = format!(
                    "expected SELECT, CREATE, INSERT, DELETE, UPDATE, DROP, REFRESH, \
                     RECLUSTER, REANNOTATE, APPLY or EXPLAIN, found {other}"
                );
                self.err(msg)
            }
        }
    }

    fn create_table(&mut self) -> Result<CreateTable, ParseError> {
        self.expect_kw(Keyword::Create)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let t = self.advance();
        let ty = match t.kind {
            TokenKind::Keyword(Keyword::Integer) | TokenKind::Keyword(Keyword::Int) => {
                DataType::Int
            }
            TokenKind::Keyword(Keyword::Double) | TokenKind::Keyword(Keyword::Float) => {
                DataType::Float
            }
            TokenKind::Keyword(Keyword::Decimal) => {
                // DECIMAL(p, s) — modelled as Float.
                if self.eat_kind(&TokenKind::LParen) {
                    self.number_literal()?;
                    if self.eat_kind(&TokenKind::Comma) {
                        self.number_literal()?;
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                }
                DataType::Float
            }
            TokenKind::Keyword(Keyword::Text) => DataType::Text,
            TokenKind::Keyword(Keyword::Varchar) | TokenKind::Keyword(Keyword::Char) => {
                // VARCHAR(n) — length is accepted and ignored.
                if self.eat_kind(&TokenKind::LParen) {
                    self.number_literal()?;
                    self.expect_kind(&TokenKind::RParen)?;
                }
                DataType::Text
            }
            TokenKind::Keyword(Keyword::Boolean) => DataType::Bool,
            TokenKind::Keyword(Keyword::Date) => DataType::Date,
            other => {
                return Err(ParseError::new(
                    format!("expected a data type, found {other}"),
                    t.offset,
                ))
            }
        };
        Ok(ty)
    }

    fn number_literal(&mut self) -> Result<(), ParseError> {
        match self.peek().kind {
            TokenKind::Int(_) | TokenKind::Float(_) => {
                self.advance();
                Ok(())
            }
            _ => self.err("expected a numeric literal"),
        }
    }

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.eat_kind(&TokenKind::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_kind(&TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        if self.peek().kind == TokenKind::Keyword(Keyword::Select) {
            let query = self.select()?;
            return Ok(Insert {
                table,
                columns,
                source: InsertSource::Query(Box::new(query)),
            });
        }
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                row.push(self.expr()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            source: InsertSource::Values(rows),
        })
    }

    fn delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Delete { table, selection })
    }

    fn update(&mut self) -> Result<Update, ParseError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_kind(&TokenKind::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            assignments,
            selection,
        })
    }

    fn create_view(&mut self) -> Result<CreateView, ParseError> {
        self.expect_kw(Keyword::Create)?;
        self.expect_kw(Keyword::Materialized)?;
        self.expect_kw(Keyword::View)?;
        let name = self.ident()?;
        self.expect_kw(Keyword::As)?;
        let query = self.select()?;
        Ok(CreateView { name, query })
    }

    /// `(<ident>, <ident>)` — the column pair naming a dirty relation's
    /// cluster structure in RECLUSTER/REANNOTATE/APPLY CROSSREF.
    fn column_pair(&mut self) -> Result<(String, String), ParseError> {
        self.expect_kind(&TokenKind::LParen)?;
        let first = self.ident()?;
        self.expect_kind(&TokenKind::Comma)?;
        let second = self.ident()?;
        self.expect_kind(&TokenKind::RParen)?;
        Ok((first, second))
    }

    fn recluster(&mut self) -> Result<Recluster, ParseError> {
        self.expect_kw(Keyword::Recluster)?;
        let table = self.ident()?;
        let (id_column, prob_column) = self.column_pair()?;
        self.expect_kw(Keyword::To)?;
        let target = self.expr()?;
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Recluster {
            table,
            id_column,
            prob_column,
            target,
            selection,
        })
    }

    fn reannotate(&mut self) -> Result<Reannotate, ParseError> {
        self.expect_kw(Keyword::Reannotate)?;
        let table = self.ident()?;
        let (id_column, prob_column) = self.column_pair()?;
        self.expect_kw(Keyword::Set)?;
        let value = self.expr()?;
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Reannotate {
            table,
            id_column,
            prob_column,
            value,
            selection,
        })
    }

    fn apply_crossref(&mut self) -> Result<ApplyCrossref, ParseError> {
        self.expect_kw(Keyword::Apply)?;
        self.expect_kw(Keyword::Crossref)?;
        let xref_table = self.ident()?;
        let (xref_key_column, xref_id_column) = self.column_pair()?;
        self.expect_kw(Keyword::To)?;
        let table = self.ident()?;
        let (key_column, id_column) = self.column_pair()?;
        Ok(ApplyCrossref {
            xref_table,
            xref_key_column,
            xref_id_column,
            table,
            key_column,
            id_column,
        })
    }

    fn select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);

        let mut projection = vec![self.select_item()?];
        while self.eat_kind(&TokenKind::Comma) {
            projection.push(self.select_item()?);
        }

        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from.push(self.table_ref()?);
            while self.eat_kind(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            }
        }

        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance().kind {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return self.err(format!("expected a row count after LIMIT, found {other}"))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(q) = &self.peek().kind {
            if self.peek2() == &TokenKind::Dot {
                // look two ahead for `*`
                let q = q.clone();
                let third = &self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].kind;
                if third == &TokenKind::Star {
                    self.advance();
                    self.advance();
                    self.advance();
                    return Ok(SelectItem::QualifiedWildcard(q));
                }
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) || matches!(self.peek().kind, TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        // Identifiers are ASCII and lower-cased in place, so the source
        // length of the table name equals its parsed length.
        let start = self.peek().offset;
        let table = self.ident()?;
        let span = Span::at(start, table.len());
        let alias = if self.eat_kw(Keyword::As) || matches!(self.peek().kind, TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias, span })
    }

    /// Entry point of the expression grammar (lowest precedence: `OR`).
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;
        // Optional comparison / LIKE / IN / BETWEEN / IS NULL suffix.
        let op = match &self.peek().kind {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        let negated = if self.peek().kind == TokenKind::Keyword(Keyword::Not)
            && matches!(
                self.peek2(),
                TokenKind::Keyword(Keyword::Like)
                    | TokenKind::Keyword(Keyword::In)
                    | TokenKind::Keyword(Keyword::Between)
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::Like) {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect_kind(&TokenKind::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return self.err("expected LIKE, IN or BETWEEN after NOT");
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kind(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Constant-fold a negated numeric literal so `-1` is a literal.
            return Ok(match inner {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(*i)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(*x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s.clone())))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Date) => {
                self.advance();
                match self.advance() {
                    Token {
                        kind: TokenKind::Str(s),
                        offset,
                    } => {
                        let d = s
                            .parse()
                            .map_err(|e| ParseError::new(format!("{e}"), offset))?;
                        Ok(Expr::Literal(Literal::Date(d)))
                    }
                    Token { kind, offset } => Err(ParseError::new(
                        format!("expected a date string after DATE, found {kind}"),
                        offset,
                    )),
                }
            }
            TokenKind::Keyword(Keyword::Case) => {
                self.advance();
                let operand = if self.peek().kind == TokenKind::Keyword(Keyword::When) {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                let mut branches = Vec::new();
                while self.eat_kw(Keyword::When) {
                    let when = self.expr()?;
                    self.expect_kw(Keyword::Then)?;
                    let then = self.expr()?;
                    branches.push((when, then));
                }
                if branches.is_empty() {
                    return self.err("CASE requires at least one WHEN branch");
                }
                let else_expr = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw(Keyword::End)?;
                Ok(Expr::Case {
                    operand,
                    branches,
                    else_expr,
                })
            }
            TokenKind::Keyword(k)
                if matches!(
                    k,
                    Keyword::Sum | Keyword::Count | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                let func = match k {
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Count => AggFunc::Count,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                self.advance();
                self.expect_kind(&TokenKind::LParen)?;
                let distinct = self.eat_kw(Keyword::Distinct);
                let arg = if self.eat_kind(&TokenKind::Star) {
                    if func != AggFunc::Count {
                        return self.err("only COUNT accepts '*'");
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect_kind(&TokenKind::RParen)?;
                Ok(Expr::Aggregate {
                    func,
                    arg,
                    distinct,
                })
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                if self.eat_kind(&TokenKind::Dot) {
                    let col_off = self.peek().offset;
                    let col = self.ident()?;
                    Ok(Expr::Column(ColumnRef {
                        qualifier: Some(name),
                        name: col.clone(),
                        span: Span::new(t.offset, col_off + col.len()),
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        span: Span::at(t.offset, name.len()),
                        qualifier: None,
                        name,
                    }))
                }
            }
            // `order.id` — qualified reference to the soft keyword `order`.
            TokenKind::Keyword(Keyword::Order) if self.peek2() == &TokenKind::Dot => {
                self.advance();
                self.advance();
                let col_off = self.peek().offset;
                let col = self.ident()?;
                Ok(Expr::Column(ColumnRef {
                    qualifier: Some("order".into()),
                    name: col.clone(),
                    span: Span::new(t.offset, col_off + col.len()),
                }))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                let msg = format!("expected an expression, found {other}");
                self.err(msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query_q1() {
        // Example 4 of the paper.
        let q = parse_select("select id from customer c where balance > 10000").unwrap();
        assert_eq!(q.from, vec![TableRef::aliased("customer", "c")]);
        assert_eq!(q.projection.len(), 1);
        assert!(q.selection.is_some());
    }

    #[test]
    fn parse_rewritten_query() {
        // Example 6's rewriting.
        let q = parse_select(
            "select o.id, c.id, sum(o.prob * c.prob) \
             from order o, customer c \
             where o.cidfk=c.id and c.balance > 10000 \
             group by o.id, c.id",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert!(matches!(
            &q.projection[2],
            SelectItem::Expr {
                expr: Expr::Aggregate {
                    func: AggFunc::Sum,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn parse_tpch_q3_shape() {
        // The paper's Section 5.3 query.
        let q = parse_select(
            "select l_orderkey, l_extendedprice*(1-l_discount) as revenue, \
                    o_orderdate, o_shippriority \
             from customer, orders, lineitem \
             where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
               and l_orderkey = o_orderkey and o_orderdate < DATE '1995-03-15' \
               and l_shipdate > DATE '1995-03-15' \
             order by revenue desc, o_orderdate",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        match &q.projection[1] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "revenue"),
            other => panic!("unexpected projection: {other:?}"),
        }
    }

    #[test]
    fn parse_in_between_like_isnull() {
        let q = parse_select(
            "select a from t where a in (1,2,3) and b between 1 and 5 \
             and c like 'x%' and d is not null and e not like '_y' \
             and f not in (7) and g not between 0 and 1 and h is null",
        )
        .unwrap();
        let conjuncts = q.selection.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 8);
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                Expr::int(1),
                BinaryOp::Add,
                Expr::binary(Expr::int(2), BinaryOp::Mul, Expr::int(3))
            )
        );
        let e = parse_expr("a or b and not c = 1").unwrap();
        // ((a) OR ((b) AND (NOT (c = 1))))
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::And,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        *right,
                        Expr::Unary {
                            op: UnaryOp::Not,
                            ..
                        }
                    ))
                }
                other => panic!("bad tree: {other:?}"),
            },
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn negative_literals_folded() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::int(-5));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::float(-2.5));
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn create_table_types() {
        let s = parse_statement(
            "create table t (a integer, b double, c varchar(25), d date, e boolean, f decimal(15,2))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert_eq!(
            ct.columns.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Text,
                DataType::Date,
                DataType::Bool,
                DataType::Float
            ]
        );
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("insert into t (a, b) values (1, 'x'), (2, 'y''z')").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        let InsertSource::Values(rows) = &ins.source else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Expr::str("y'z"));
    }

    #[test]
    fn wildcards() {
        let q = parse_select("select * from t").unwrap();
        assert_eq!(q.projection, vec![SelectItem::Wildcard]);
        let q = parse_select("select c.* , d.x from t c, u d").unwrap();
        assert_eq!(q.projection[0], SelectItem::QualifiedWildcard("c".into()));
    }

    #[test]
    fn errors_are_informative() {
        let err = parse_select("select from t").unwrap_err();
        assert!(err.message.contains("expected an expression"), "{err}");
        let err = parse_select("select a from t where").unwrap_err();
        assert!(err.message.contains("expected an expression"), "{err}");
        let err = parse_statement("alter table t").unwrap_err();
        assert!(err.message.contains("expected SELECT"), "{err}");
        let err = parse_select("select a from t limit x").unwrap_err();
        assert!(err.message.contains("LIMIT"), "{err}");
    }

    #[test]
    fn trailing_semicolon_ok_garbage_rejected() {
        assert!(parse_select("select a from t;").is_ok());
        assert!(parse_select("select a from t; select").is_err());
        let stmts = parse_statements("select a from t; select b from u;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn statement_display_roundtrip() {
        for sql in [
            "SELECT DISTINCT a, b AS c FROM t x, u WHERE a = 1 AND b < 2.5 \
             GROUP BY a, b HAVING COUNT(*) > 1 ORDER BY a DESC, b LIMIT 3",
            "SELECT o.id, c.id, SUM(o.prob * c.prob) FROM order o, customer c \
             WHERE o.cidfk = c.id AND c.balance > 10000 GROUP BY o.id, c.id",
            "SELECT * FROM t WHERE a IS NOT NULL AND b NOT IN (1, 2) OR NOT c LIKE 'x%'",
            "SELECT a FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1995-01-01'",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
            "EXPLAIN SELECT a FROM t WHERE a > 1",
            "EXPLAIN ANALYZE SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a LIMIT 5",
            "CREATE TABLE t (a INTEGER, b DOUBLE, c TEXT, d DATE, e BOOLEAN)",
            "CREATE MATERIALIZED VIEW v AS SELECT c.id, SUM(c.prob) AS p \
             FROM customer c WHERE c.balance > 100 GROUP BY c.id",
            "DROP MATERIALIZED VIEW v",
            "REFRESH MATERIALIZED VIEW v",
            "RECLUSTER customer (id, prob) TO 'c2' WHERE name = 'ann'",
            "RECLUSTER customer (id, prob) TO 'c1'",
            "REANNOTATE customer (id, prob) SET prob * 0.5 WHERE id = 'c1'",
            "REANNOTATE customer (id, prob) SET 0.25",
            "APPLY CROSSREF xref (orig, cluster) TO customer (custkey, id)",
        ] {
            let stmt = parse_statement(sql).unwrap();
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(stmt, reparsed, "roundtrip mismatch for {sql}");
        }
    }

    #[test]
    fn count_distinct_and_star() {
        let e = parse_expr("count(distinct x)").unwrap();
        assert!(matches!(
            e,
            Expr::Aggregate {
                func: AggFunc::Count,
                distinct: true,
                ..
            }
        ));
        let e = parse_expr("count(*)").unwrap();
        assert!(matches!(
            e,
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
        assert!(parse_expr("sum(*)").is_err());
    }

    #[test]
    fn view_and_dirty_mutation_statements_parse() {
        let stmt = parse_statement(
            "create materialized view hot as \
             select o.id, sum(o.prob * c.prob) as p from orders o, customer c \
             where o.cidfk = c.id group by o.id",
        )
        .unwrap();
        let Statement::CreateView(cv) = stmt else {
            panic!("expected CreateView");
        };
        assert_eq!(cv.name, "hot");
        assert_eq!(cv.query.from.len(), 2);

        assert_eq!(
            parse_statement("drop materialized view hot").unwrap(),
            Statement::DropView("hot".into())
        );
        assert_eq!(
            parse_statement("refresh materialized view hot").unwrap(),
            Statement::RefreshView("hot".into())
        );

        let Statement::Recluster(rc) =
            parse_statement("RECLUSTER customer (id, prob) TO 'c7' WHERE custkey = 3").unwrap()
        else {
            panic!("expected Recluster");
        };
        assert_eq!(
            (rc.table.as_str(), rc.id_column.as_str()),
            ("customer", "id")
        );
        assert_eq!(rc.prob_column, "prob");
        assert!(rc.selection.is_some());

        let Statement::Reannotate(ra) =
            parse_statement("REANNOTATE customer (id, prob) SET prob / 2").unwrap()
        else {
            panic!("expected Reannotate");
        };
        assert_eq!(ra.table, "customer");
        assert!(ra.selection.is_none());

        let Statement::ApplyCrossref(ax) =
            parse_statement("APPLY CROSSREF xref (orig, cluster) TO customer (custkey, id)")
                .unwrap()
        else {
            panic!("expected ApplyCrossref");
        };
        assert_eq!(ax.xref_table, "xref");
        assert_eq!(ax.table, "customer");
        assert_eq!(ax.key_column, "custkey");
        assert_eq!(ax.id_column, "id");

        // Malformed shapes fail with parse errors, not panics.
        for bad in [
            "CREATE MATERIALIZED v AS SELECT a FROM t",
            "DROP MATERIALIZED TABLE v",
            "REFRESH VIEW v",
            "RECLUSTER customer (id) TO 'c1'",
            "REANNOTATE customer (id, prob) 0.5",
            "APPLY CROSSREF xref (a, b) customer (c, d)",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad} should not parse");
        }
    }
}
