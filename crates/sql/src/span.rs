//! Source spans and the caret-snippet renderer.
//!
//! The lexer records a byte offset for every token; this module turns those
//! offsets into user-facing positions: a [`Span`] is a half-open byte range
//! over the original SQL text, [`line_col`] converts an offset into a
//! 1-based line/column pair, and [`render_snippet`] produces the
//! `rustc`-style two-line excerpt with a caret run under the offending
//! slice.
//!
//! # Spans are invisible to equality
//!
//! Spans are *metadata*: two ASTs that differ only in where their tokens
//! came from are the same query. `Span` therefore implements `PartialEq`,
//! `Eq`, `Hash`, `PartialOrd` and `Ord` as if every span were equal, so it
//! can be embedded in AST nodes that derive those traits (notably
//! [`crate::ColumnRef`], which is used as a map key) without breaking AST
//! equality or the parser/printer round-trip property
//! (`parse(print(ast)) == ast` — the printed AST has no spans).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A half-open byte range `[start, end)` into the SQL text a node was
/// parsed from. `Span::NONE` (the default) marks nodes built
/// programmatically rather than parsed.
#[derive(Clone, Copy, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Span {
    /// The empty span of programmatically built nodes.
    pub const NONE: Span = Span { start: 0, end: 0 };

    /// Span over `[start, end)`. Offsets beyond `u32::MAX` saturate (SQL
    /// statements of 4 GiB are not a target).
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start: start.min(u32::MAX as usize) as u32,
            end: end.min(u32::MAX as usize) as u32,
        }
    }

    /// Span of a single token starting at `offset` with byte length `len`.
    pub fn at(offset: usize, len: usize) -> Span {
        Span::new(offset, offset + len)
    }

    /// True for the no-information span.
    pub fn is_none(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both inputs; `NONE` operands are ignored.
    pub fn union(self, other: Span) -> Span {
        if self.is_none() {
            return other;
        }
        if other.is_none() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

// Equality-transparent: see the module docs.
impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl Hash for Span {
    fn hash<H: Hasher>(&self, _: &mut H) {}
}

impl PartialOrd for Span {
    fn partial_cmp(&self, other: &Span) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Span {
    fn cmp(&self, _: &Span) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

// `Debug` prints the actual range (useful in test failures) even though
// `==` ignores it.
impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "Span(-)")
        } else {
            write!(f, "Span({}..{})", self.start, self.end)
        }
    }
}

/// 1-based line and column (in characters) of a byte offset in `src`.
/// Offsets past the end clamp to the final position.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let column = src[line_start..offset].chars().count() + 1;
    (line, column)
}

/// Render a `rustc`-style source excerpt for `span` in `src`:
///
/// ```text
///  1 | select namex from customer c
///    |        ^^^^^
/// ```
///
/// Multi-line spans are clipped to their first line. A `NONE` span (or an
/// offset past the end of a trailing newline-free line) produces a caret at
/// the clamped position so the output always points *somewhere*.
pub fn render_snippet(src: &str, span: Span) -> String {
    let start = (span.start as usize).min(src.len());
    let (line_no, _) = line_col(src, start);
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let line_text = &src[line_start..line_end];

    // Caret run: character-based, clipped to the line.
    let caret_start = src[line_start..start].chars().count();
    let span_end = (span.end as usize).clamp(start, line_end);
    let caret_len = src[start..span_end].chars().count().max(1);

    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    format!(
        "{pad} |\n{gutter} | {line_text}\n{pad} | {}{}",
        " ".repeat(caret_start),
        "^".repeat(caret_len),
    )
}

/// Source context captured into a [`crate::ParseError`] at the parse entry
/// points, so the error can display line/column and the offending line
/// without keeping the whole statement alive.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceContext {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (characters) of the error.
    pub column: usize,
    /// The full text of that line.
    pub line_text: String,
}

impl SourceContext {
    /// Capture the context of `offset` within `src`.
    pub fn at(src: &str, offset: usize) -> SourceContext {
        let (line, column) = line_col(src, offset);
        let offset = offset.min(src.len());
        let start = src[..offset].rfind('\n').map_or(0, |i| i + 1);
        let end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        SourceContext {
            line,
            column,
            line_text: src[start..end].to_string(),
        }
    }

    /// The two-line gutter/caret excerpt for this context.
    pub fn snippet(&self) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        format!(
            "{pad} |\n{gutter} | {}\n{pad} | {}^",
            self.line_text,
            " ".repeat(self.column.saturating_sub(1)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_invisible_to_equality() {
        assert_eq!(Span::new(3, 7), Span::NONE);
        assert_eq!(Span::new(1, 2), Span::new(50, 60));
        let mut set = std::collections::HashSet::new();
        set.insert(("a", Span::new(0, 1)));
        assert!(set.contains(&("a", Span::new(9, 10))));
    }

    #[test]
    fn union_ignores_none() {
        let s = Span::new(5, 9).union(Span::NONE);
        assert_eq!((s.start, s.end), (5, 9));
        let s = Span::new(5, 9).union(Span::new(2, 6));
        assert_eq!((s.start, s.end), (2, 9));
    }

    #[test]
    fn line_col_multiline() {
        let src = "select a\nfrom t\nwhere b";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 7), (1, 8));
        assert_eq!(line_col(src, 9), (2, 1));
        assert_eq!(line_col(src, 22), (3, 7));
        // Past the end clamps.
        assert_eq!(line_col(src, 999), (3, 8));
    }

    #[test]
    fn snippet_points_at_the_slice() {
        let src = "select namex from customer";
        let s = render_snippet(src, Span::new(7, 12));
        assert_eq!(s, "  |\n1 | select namex from customer\n  |        ^^^^^");
    }

    #[test]
    fn snippet_second_line() {
        let src = "select a\nfrom nowhere";
        let s = render_snippet(src, Span::new(14, 21));
        assert_eq!(s, "  |\n2 | from nowhere\n  |      ^^^^^^^");
    }

    #[test]
    fn source_context_snippet() {
        let ctx = SourceContext::at("select a from", 13);
        assert_eq!((ctx.line, ctx.column), (1, 14));
        assert!(ctx.snippet().ends_with("^"), "{}", ctx.snippet());
    }
}
