//! # conquer-sql
//!
//! SQL front-end for the ConQuer clean-answers system: a lexer, an abstract
//! syntax tree, a recursive-descent parser, and a pretty-printer that renders
//! ASTs back to SQL text.
//!
//! The dialect covers what the paper's workload needs (Section 5.3 runs
//! thirteen TPC-H select-project-join queries with their aggregates removed):
//!
//! * `SELECT [DISTINCT] <exprs with aliases | *>`
//! * `FROM t1 [AS] a1, t2 [AS] a2, …` (comma joins — the paper's queries are
//!   written in this style, see q3 in Section 5.3)
//! * `WHERE` with `AND`/`OR`/`NOT`, comparisons, `BETWEEN`, `IN (list)`,
//!   `LIKE`, `IS [NOT] NULL`, arithmetic
//! * `GROUP BY`, `HAVING`, aggregates `SUM`/`COUNT`/`AVG`/`MIN`/`MAX`
//! * `ORDER BY … [ASC|DESC]`, `LIMIT`
//! * `DATE 'YYYY-MM-DD'` literals
//! * `CREATE TABLE` / `INSERT INTO … VALUES` so the engine is usable as a
//!   standalone database.
//!
//! The `RewriteClean` transformation in `conquer-core` is AST→AST; the
//! pretty-printer makes rewritten queries inspectable and round-trippable
//! (property-tested: `parse(print(ast)) == ast`).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod span;

pub use ast::{
    AggFunc, ApplyCrossref, BinaryOp, ColumnRef, CreateTable, CreateView, Delete, Expr, Insert,
    InsertSource, Literal, OrderByItem, Reannotate, Recluster, SelectItem, SelectStatement,
    Statement, TableRef, UnaryOp, Update,
};
pub use lexer::{Keyword, Lexer, Token, TokenKind};
pub use parser::{parse_expr, parse_select, parse_statement, parse_statements, ParseError};
pub use span::{line_col, render_snippet, SourceContext, Span};
