//! The SQL abstract syntax tree and its pretty-printer.
//!
//! All identifier fields are stored lower-cased (the lexer normalizes them),
//! so AST equality is case-insensitive equality of the original SQL.
//! `Display` renders ASTs back to parseable SQL with minimal parentheses;
//! the parser/printer pair round-trips (property-tested in the crate tests).

use std::fmt;

use conquer_storage::{DataType, Date};

use crate::span::Span;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`
    CreateTable(CreateTable),
    /// `INSERT INTO name [(cols)] VALUES (…), (…)`
    Insert(Insert),
    /// `DROP TABLE name`
    DropTable(String),
    /// `DELETE FROM name [WHERE …]`
    Delete(Delete),
    /// `UPDATE name SET col = expr, … [WHERE …]`
    Update(Update),
    /// `SELECT …`
    Select(SelectStatement),
    /// `EXPLAIN [ANALYZE] SELECT …` — show the physical plan, optionally
    /// executing it to collect per-operator runtime statistics.
    Explain {
        /// Execute the query and report measured operator statistics.
        analyze: bool,
        /// The query being explained.
        query: SelectStatement,
    },
    /// `CREATE MATERIALIZED VIEW name AS SELECT …`
    CreateView(CreateView),
    /// `DROP MATERIALIZED VIEW name`
    DropView(String),
    /// `REFRESH MATERIALIZED VIEW name` — recompute from scratch.
    RefreshView(String),
    /// `RECLUSTER table (id, prob) TO target [WHERE …]` — move matching
    /// tuples into the duplicate cluster `target`.
    Recluster(Recluster),
    /// `REANNOTATE table (id, prob) SET expr [WHERE …]` — overwrite the
    /// probability annotation of matching tuples.
    Reannotate(Reannotate),
    /// `APPLY CROSSREF xref (key, id) TO table (key, id)` — ingest a
    /// matcher's cross-reference table into a dirty relation's identifier
    /// column.
    ApplyCrossref(ApplyCrossref),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(s) => s.fmt(f),
            Statement::Insert(s) => s.fmt(f),
            Statement::DropTable(name) => write!(f, "DROP TABLE {name}"),
            Statement::Delete(s) => s.fmt(f),
            Statement::Update(s) => s.fmt(f),
            Statement::Select(s) => s.fmt(f),
            Statement::Explain { analyze, query } => {
                write!(
                    f,
                    "EXPLAIN {}{query}",
                    if *analyze { "ANALYZE " } else { "" }
                )
            }
            Statement::CreateView(s) => s.fmt(f),
            Statement::DropView(name) => write!(f, "DROP MATERIALIZED VIEW {name}"),
            Statement::RefreshView(name) => write!(f, "REFRESH MATERIALIZED VIEW {name}"),
            Statement::Recluster(s) => s.fmt(f),
            Statement::Reannotate(s) => s.fmt(f),
            Statement::ApplyCrossref(s) => s.fmt(f),
        }
    }
}

/// `CREATE MATERIALIZED VIEW` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View name (becomes a queryable relation of that name).
    pub name: String,
    /// The defining query (must be maintainable: GROUP BY + one SUM).
    pub query: SelectStatement,
}

impl fmt::Display for CreateView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE MATERIALIZED VIEW {} AS {}",
            self.name, self.query
        )
    }
}

/// `RECLUSTER` statement: a dirty-data mutation moving tuples between
/// duplicate clusters. `(id_column, prob_column)` names the cluster
/// structure; probabilities of every affected cluster are renormalized to
/// sum to 1 afterwards (Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Recluster {
    /// Target dirty relation.
    pub table: String,
    /// The cluster-identifier column.
    pub id_column: String,
    /// The probability column (renormalized per affected cluster).
    pub prob_column: String,
    /// Constant expression for the destination cluster identifier.
    pub target: Expr,
    /// Which tuples move; absent moves every row.
    pub selection: Option<Expr>,
}

impl fmt::Display for Recluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RECLUSTER {} ({}, {}) TO {}",
            self.table, self.id_column, self.prob_column, self.target
        )?;
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `REANNOTATE` statement: overwrite the probability annotation of
/// matching tuples with the value of an expression (evaluated against the
/// old row). Unlike [`Recluster`] nothing is renormalized — the caller
/// controls the exact probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Reannotate {
    /// Target dirty relation.
    pub table: String,
    /// The cluster-identifier column (names the cluster structure).
    pub id_column: String,
    /// The probability column being overwritten.
    pub prob_column: String,
    /// New probability, evaluated per matching row.
    pub value: Expr,
    /// Which tuples are re-annotated; absent re-annotates every row.
    pub selection: Option<Expr>,
}

impl fmt::Display for Reannotate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REANNOTATE {} ({}, {}) SET {}",
            self.table, self.id_column, self.prob_column, self.value
        )?;
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `APPLY CROSSREF` statement: ingest an external matcher's
/// cross-reference table (`original key → cluster id`) into a dirty
/// relation's identifier column (Section 2.1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyCrossref {
    /// The cross-reference table.
    pub xref_table: String,
    /// Its original-key column.
    pub xref_key_column: String,
    /// Its cluster-identifier column.
    pub xref_id_column: String,
    /// The dirty relation being rewritten.
    pub table: String,
    /// The relation's original-key column (joined against the xref keys).
    pub key_column: String,
    /// The relation's identifier column (written from the mapping).
    pub id_column: String,
}

impl fmt::Display for ApplyCrossref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "APPLY CROSSREF {} ({}, {}) TO {} ({}, {})",
            self.xref_table,
            self.xref_key_column,
            self.xref_id_column,
            self.table,
            self.key_column,
            self.id_column
        )
    }
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<(String, DataType)>,
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, (name, ty)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} {ty}")?;
        }
        write!(f, ")")
    }
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Where the rows come from.
    pub source: InsertSource,
}

/// The data source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)` — one expression row per tuple.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …` — rows produced by a query.
    Query(Box<SelectStatement>),
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if let Some(cols) = &self.columns {
            write!(f, " ({})", cols.join(", "))?;
        }
        match &self.source {
            InsertSource::Values(rows) => {
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            InsertSource::Query(q) => write!(f, " {q}"),
        }
    }
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional predicate; absent deletes every row.
    pub selection: Option<Expr>,
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET` assignments in order.
    pub assignments: Vec<(String, Expr)>,
    /// Optional predicate; absent updates every row.
    pub selection: Option<Expr>,
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, e)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} = {e}")?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// A `SELECT` statement (the only query form in the dialect; the paper's
/// rewriting targets select-project-join queries).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The select list.
    pub projection: Vec<SelectItem>,
    /// Comma-joined base relations.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// One entry of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name, if given.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Build an unaliased column item `qualifier.name`.
    pub fn column(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr: Expr::qualified(qualifier, name),
            alias: None,
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} AS {a}"),
        }
    }
}

/// A base relation in the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Optional alias; the binder falls back to the table name.
    pub alias: Option<String>,
    /// Source location of the table name (equality-transparent metadata;
    /// [`Span::NONE`] when built programmatically).
    pub span: Span,
}

impl TableRef {
    /// A reference without an alias.
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into().to_ascii_lowercase(),
            alias: None,
            span: Span::NONE,
        }
    }

    /// A reference with an alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into().to_ascii_lowercase(),
            alias: Some(alias.into().to_ascii_lowercase()),
            span: Span::NONE,
        }
    }

    /// The same reference carrying a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The name this relation is referred to by in expressions.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            None => f.write_str(&self.table),
            Some(a) => write!(f, "{} {}", self.table, a),
        }
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression (may reference a select alias).
    pub expr: Expr,
    /// `DESC`?
    pub desc: bool,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A possibly-qualified column reference.
///
/// The `span` field is equality-transparent metadata (see
/// [`Span`]): it never affects `==`, hashing, or ordering, so
/// `ColumnRef` remains usable as a map key and AST round-trip equality
/// holds for parsed vs. printed trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias, if qualified.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Source location of the (possibly qualified) reference;
    /// [`Span::NONE`] when built programmatically.
    pub span: Span,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A literal value in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// `TRUE` / `FALSE`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'YYYY-MM-DD'`
    Date(Date),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Bool(true) => f.write_str("TRUE"),
            Literal::Bool(false) => f.write_str("FALSE"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    /// Printing/parsing precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        use BinaryOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | NotEq | Lt | LtEq | Gt | GtEq => 4,
            Add | Sub => 5,
            Mul | Div | Mod => 6,
        }
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Or => "OR",
            And => "AND",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
        }
    }

    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// `NOT expr` or `-expr`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] LIKE pattern` (`%` any run, `_` one char).
    Like {
        /// The matched expression.
        expr: Box<Expr>,
        /// The pattern (usually a string literal).
        pattern: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// An aggregate call. `arg == None` means `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// The argument, or `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// `DISTINCT` inside the call?
        distinct: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Simple-case operand (`CASE x WHEN v …`), if any.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` expression (defaults to NULL).
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// An unqualified column reference.
    pub fn column(name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef {
            qualifier: None,
            name: name.into().to_ascii_lowercase(),
            span: Span::NONE,
        })
    }

    /// A qualified column reference `qualifier.name`.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
            span: Span::NONE,
        })
    }

    /// An integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Literal(Literal::Int(v))
    }

    /// A float literal.
    pub fn float(v: f64) -> Self {
        Expr::Literal(Literal::Float(v))
    }

    /// A string literal.
    pub fn str(v: impl Into<String>) -> Self {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// Combine two expressions with a binary operator.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Self {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Self {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Self {
        Expr::binary(self, BinaryOp::Eq, other)
    }

    /// Multiply a list of expressions together (used by `RewriteClean` for
    /// the `R1.prob * … * Rm.prob` product). Panics on an empty list.
    pub fn product(mut exprs: Vec<Expr>) -> Self {
        assert!(!exprs.is_empty(), "product of no expressions");
        let mut acc = exprs.remove(0);
        for e in exprs {
            acc = Expr::binary(acc, BinaryOp::Mul, e);
        }
        acc
    }

    /// Printing precedence of this node.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => 3,
            Expr::Like { .. }
            | Expr::InList { .. }
            | Expr::Between { .. }
            | Expr::IsNull { .. } => 4,
            Expr::Unary {
                op: UnaryOp::Neg, ..
            } => 7,
            Expr::Column(_) | Expr::Literal(_) | Expr::Aggregate { .. } | Expr::Case { .. } => 8,
        }
    }

    /// True if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
        }
    }

    /// Visit every column reference in the expression.
    pub fn visit_columns<'a, F: FnMut(&'a ColumnRef)>(&'a self, f: &mut F) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit_columns(f);
                pattern.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.visit_columns(f);
                }
                for (w, t) in branches {
                    w.visit_columns(f);
                    t.visit_columns(f);
                }
                if let Some(e) = else_expr {
                    e.visit_columns(f);
                }
            }
        }
    }

    /// Split a predicate tree at top-level `AND`s into conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    left,
                    op: BinaryOp::And,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Fold a list of predicates back into a single `AND` tree
    /// (returns `None` for an empty list).
    pub fn conjunction(preds: Vec<Expr>) -> Option<Expr> {
        let mut it = preds.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, p| acc.and(p)))
    }
}

/// Print `e`, parenthesizing if its precedence is below `min_prec`.
fn fmt_prec(e: &Expr, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
    if e.precedence() < min_prec {
        write!(f, "(")?;
        fmt_expr(e, f)?;
        write!(f, ")")
    } else {
        fmt_expr(e, f)
    }
}

fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Column(c) => write!(f, "{c}"),
        Expr::Literal(l) => write!(f, "{l}"),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            write!(f, "NOT ")?;
            fmt_prec(expr, f, 4)
        }
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => {
            write!(f, "-")?;
            fmt_prec(expr, f, 8)
        }
        Expr::Binary { left, op, right } => {
            let p = op.precedence();
            // Left-associative: the right child needs strictly higher
            // precedence to avoid parens; comparisons are non-associative so
            // both sides need higher precedence.
            let (lp, rp) = if op.is_comparison() {
                (p + 1, p + 1)
            } else {
                (p, p + 1)
            };
            fmt_prec(left, f, lp)?;
            write!(f, " {} ", op.symbol())?;
            fmt_prec(right, f, rp)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            fmt_prec(expr, f, 5)?;
            write!(f, "{} LIKE ", if *negated { " NOT" } else { "" })?;
            fmt_prec(pattern, f, 5)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            fmt_prec(expr, f, 5)?;
            write!(f, "{} IN (", if *negated { " NOT" } else { "" })?;
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(e, f)?;
            }
            write!(f, ")")
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            fmt_prec(expr, f, 5)?;
            write!(f, "{} BETWEEN ", if *negated { " NOT" } else { "" })?;
            fmt_prec(low, f, 5)?;
            write!(f, " AND ")?;
            fmt_prec(high, f, 5)
        }
        Expr::IsNull { expr, negated } => {
            fmt_prec(expr, f, 5)?;
            write!(f, " IS{} NULL", if *negated { " NOT" } else { "" })
        }
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            write!(f, "{}(", func.name())?;
            if *distinct {
                write!(f, "DISTINCT ")?;
            }
            match arg {
                None => write!(f, "*")?,
                Some(a) => fmt_expr(a, f)?,
            }
            write!(f, ")")
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            write!(f, "CASE")?;
            if let Some(o) = operand {
                write!(f, " ")?;
                fmt_expr(o, f)?;
            }
            for (w, t) in branches {
                write!(f, " WHEN ")?;
                fmt_expr(w, f)?;
                write!(f, " THEN ")?;
                fmt_expr(t, f)?;
            }
            if let Some(e) = else_expr {
                write!(f, " ELSE ")?;
                fmt_expr(e, f)?;
            }
            write!(f, " END")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_printing() {
        // (a OR b) AND c must keep its parens.
        let e = Expr::binary(
            Expr::binary(Expr::column("a"), BinaryOp::Or, Expr::column("b")),
            BinaryOp::And,
            Expr::column("c"),
        );
        assert_eq!(e.to_string(), "(a OR b) AND c");

        // a OR (b AND c) needs none.
        let e = Expr::binary(
            Expr::column("a"),
            BinaryOp::Or,
            Expr::binary(Expr::column("b"), BinaryOp::And, Expr::column("c")),
        );
        assert_eq!(e.to_string(), "a OR b AND c");
    }

    #[test]
    fn arithmetic_printing() {
        // l_extendedprice * (1 - l_discount)
        let e = Expr::binary(
            Expr::column("l_extendedprice"),
            BinaryOp::Mul,
            Expr::binary(Expr::int(1), BinaryOp::Sub, Expr::column("l_discount")),
        );
        assert_eq!(e.to_string(), "l_extendedprice * (1 - l_discount)");
    }

    #[test]
    fn left_associativity_no_extra_parens() {
        let e = Expr::binary(
            Expr::binary(Expr::column("a"), BinaryOp::Sub, Expr::column("b")),
            BinaryOp::Sub,
            Expr::column("c"),
        );
        assert_eq!(e.to_string(), "a - b - c");
        // a - (b - c) keeps parens
        let e = Expr::binary(
            Expr::column("a"),
            BinaryOp::Sub,
            Expr::binary(Expr::column("b"), BinaryOp::Sub, Expr::column("c")),
        );
        assert_eq!(e.to_string(), "a - (b - c)");
    }

    #[test]
    fn product_builder() {
        let e = Expr::product(vec![
            Expr::qualified("o", "prob"),
            Expr::qualified("c", "prob"),
            Expr::qualified("l", "prob"),
        ]);
        assert_eq!(e.to_string(), "o.prob * c.prob * l.prob");
    }

    #[test]
    fn conjunct_roundtrip() {
        let a = Expr::column("a").eq(Expr::int(1));
        let b = Expr::column("b").eq(Expr::int(2));
        let c = Expr::column("c").eq(Expr::int(3));
        let all = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let parts: Vec<String> = all.conjuncts().iter().map(|e| e.to_string()).collect();
        assert_eq!(parts, vec!["a = 1", "b = 2", "c = 3"]);
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn select_display() {
        let q = SelectStatement {
            projection: vec![
                SelectItem::column("o", "id"),
                SelectItem::Expr {
                    expr: Expr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(Expr::qualified("o", "prob"))),
                        distinct: false,
                    },
                    alias: Some("probability".into()),
                },
            ],
            from: vec![TableRef::aliased("order", "o")],
            selection: Some(Expr::qualified("o", "quantity").eq(Expr::int(3))),
            group_by: vec![Expr::qualified("o", "id")],
            order_by: vec![OrderByItem {
                expr: Expr::column("probability"),
                desc: true,
            }],
            limit: Some(10),
            ..Default::default()
        };
        assert_eq!(
            q.to_string(),
            "SELECT o.id, SUM(o.prob) AS probability FROM order o \
             WHERE o.quantity = 3 GROUP BY o.id ORDER BY probability DESC LIMIT 10"
        );
    }

    #[test]
    fn string_literal_escaped() {
        assert_eq!(Expr::str("it's").to_string(), "'it''s'");
    }

    #[test]
    fn count_star() {
        let e = Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert_eq!(e.to_string(), "COUNT(*)");
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("x"))),
            distinct: false,
        };
        let e = Expr::binary(Expr::int(1), BinaryOp::Add, agg);
        assert!(e.contains_aggregate());
        assert!(!Expr::column("x").contains_aggregate());
    }
}
