//! SQL lexer.
//!
//! Turns SQL text into a token stream. Identifiers and keywords are
//! case-insensitive; string literals use single quotes with `''` escaping;
//! `--` starts a line comment.

use std::fmt;

/// Reserved words recognized by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    Having,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    And,
    Or,
    Not,
    As,
    In,
    Like,
    Between,
    Is,
    Null,
    True,
    False,
    Sum,
    Count,
    Avg,
    Min,
    Max,
    Create,
    Table,
    Insert,
    Into,
    Values,
    Date,
    Delete,
    Update,
    Set,
    Case,
    When,
    Then,
    Else,
    End,
    Drop,
    Explain,
    Analyze,
    Materialized,
    View,
    Refresh,
    Recluster,
    Reannotate,
    Apply,
    Crossref,
    To,
    Integer,
    Int,
    Double,
    Float,
    Text,
    Varchar,
    Char,
    Boolean,
    Decimal,
}

impl Keyword {
    /// Parse a word into a keyword (case-insensitive).
    pub fn parse_word(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "HAVING" => Having,
            "ORDER" => Order,
            "BY" => By,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "AS" => As,
            "IN" => In,
            "LIKE" => Like,
            "BETWEEN" => Between,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "SUM" => Sum,
            "COUNT" => Count,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            "CREATE" => Create,
            "TABLE" => Table,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "DATE" => Date,
            "DELETE" => Delete,
            "DROP" => Drop,
            "UPDATE" => Update,
            "SET" => Set,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "EXPLAIN" => Explain,
            "ANALYZE" | "ANALYSE" => Analyze,
            "MATERIALIZED" => Materialized,
            "VIEW" => View,
            "REFRESH" => Refresh,
            "RECLUSTER" => Recluster,
            "REANNOTATE" => Reannotate,
            "APPLY" => Apply,
            "CROSSREF" => Crossref,
            "TO" => To,
            "INTEGER" => Integer,
            "INT" | "BIGINT" => Int,
            "DOUBLE" => Double,
            "FLOAT" | "REAL" => Float,
            "TEXT" | "STRING" => Text,
            "VARCHAR" => Varchar,
            "CHAR" => Char,
            "BOOLEAN" | "BOOL" => Boolean,
            "DECIMAL" | "NUMERIC" => Decimal,
            _ => return None,
        })
    }
}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word.
    Keyword(Keyword),
    /// An identifier (lower-cased) — table, column or alias name.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Percent => f.write_str("'%'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::NotEq => f.write_str("'<>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::LtEq => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::GtEq => f.write_str("'>='"),
            TokenKind::Semicolon => f.write_str("';'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the input.
    pub offset: usize,
}

/// Lexer error: an unexpected character or malformed literal.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// The SQL lexer. Construct with [`Lexer::new`] and call
/// [`Lexer::tokenize`].
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let offset = self.pos;
            let Some(&c) = self.bytes.get(self.pos) else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                });
                return Ok(tokens);
            };
            let kind = match c {
                b',' => self.one(TokenKind::Comma),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'.' => self.one(TokenKind::Dot),
                b'*' => self.one(TokenKind::Star),
                b'+' => self.one(TokenKind::Plus),
                b'-' => self.one(TokenKind::Minus),
                b'/' => self.one(TokenKind::Slash),
                b'%' => self.one(TokenKind::Percent),
                b';' => self.one(TokenKind::Semicolon),
                b'=' => self.one(TokenKind::Eq),
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.one(TokenKind::LtEq),
                        Some(b'>') => self.one(TokenKind::NotEq),
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.one(TokenKind::GtEq)
                    } else {
                        TokenKind::Gt
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.one(TokenKind::NotEq)
                    } else {
                        return Err(LexError {
                            message: "unexpected character '!'".into(),
                            offset,
                        });
                    }
                }
                b'\'' => self.string(offset)?,
                b'0'..=b'9' => self.number(offset)?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.word(),
                other => {
                    return Err(LexError {
                        message: format!("unexpected character {:?}", other as char),
                        offset,
                    })
                }
            };
            tokens.push(Token { kind, offset });
        }
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            // `--` line comment
            if self.bytes.get(self.pos) == Some(&b'-')
                && self.bytes.get(self.pos + 1) == Some(&b'-')
            {
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn string(&mut self, offset: usize) -> Result<TokenKind, LexError> {
        debug_assert_eq!(self.bytes[self.pos], b'\'');
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset,
                    })
                }
                Some(b'\'') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Str(out));
                    }
                }
                Some(_) => {
                    // Advance by whole UTF-8 chars (the byte peek above
                    // guarantees at least one remains).
                    let Some(ch) = self.src[self.pos..].chars().next() else {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            offset,
                        });
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self, offset: usize) -> Result<TokenKind, LexError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        // Fractional part — but not if the dot starts something else like
        // `1..2`; a digit must follow.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|c| c.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|c| matches!(c, b'e' | b'E'))
        {
            let mut p = self.pos + 1;
            if self.bytes.get(p).is_some_and(|c| matches!(c, b'+' | b'-')) {
                p += 1;
            }
            if self.bytes.get(p).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos = p;
                while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| LexError {
                    message: format!("bad float literal: {e}"),
                    offset,
                })
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| LexError {
                    message: format!("bad integer literal: {e}"),
                    offset,
                })
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::parse_word(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text.to_ascii_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_select() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT id FROM customer WHERE balance > 10"),
            vec![
                Keyword(super::Keyword::Select),
                Ident("id".into()),
                Keyword(super::Keyword::From),
                Ident("customer".into()),
                Keyword(super::Keyword::Where),
                Ident("balance".into()),
                Gt,
                Int(10),
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("<= >= <> != = < > + - * / % . , ; ( )"),
            vec![
                LtEq, GtEq, NotEq, NotEq, Eq, Lt, Gt, Plus, Minus, Star, Slash, Percent, Dot,
                Comma, Semicolon, LParen, RParen, Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 3.5 0.06 1e3 2.5E-2"),
            vec![
                Int(42),
                Float(3.5),
                Float(0.06),
                Float(1000.0),
                Float(0.025),
                Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'BUILDING' 'it''s'"),
            vec![
                TokenKind::Str("BUILDING".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- get everything\n1"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn idents_lowercased_keywords_case_insensitive() {
        assert_eq!(
            kinds("SeLeCt MyCol"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("mycol".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::new("a  bb").tokenize().unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn bang_alone_is_error() {
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }
}
