//! Workspace hygiene lints, run as `cargo run -p xtask -- tidy`.
//!
//! Five checks, all textual and std-only (no external dependencies), each
//! implemented as a pure function over a workspace root so the self-tests
//! can run them against seeded fixture trees:
//!
//! 1. **std-sync ban** — no raw `std::sync` lock types (`Mutex`, `RwLock`,
//!    `Condvar`, guards) outside `crates/sync`. Everything else must go
//!    through `conquer_sync`, whose wrappers carry ranks and feed the
//!    lock-order analyzer. Non-lock `std::sync` items (`Arc`, `atomic`,
//!    `LazyLock`, `OnceLock`, `mpsc`, …) stay allowed — in particular
//!    `std::sync::LazyLock<Mutex<..>>` is fine: the inner `Mutex` resolves
//!    to the ranked wrapper.
//! 2. **failpoint cross-check** — every failpoint name a test arms must be
//!    registered somewhere in library code (`fault::trigger(..)` /
//!    `fault_point(..)` / `FaultWriter::new(.., ..)`). A renamed or deleted
//!    point otherwise turns its fault-injection tests into silent no-ops.
//! 3. **env-docs** — every `CONQUER_*` environment variable the code reads
//!    must appear in DESIGN.md's configuration table.
//! 4. **unwrap ban** — every library crate root carries
//!    `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`,
//!    and no `.unwrap()` / `.expect(` appears in library source outside
//!    `#[cfg(test)]` modules. `crates/bench` (measurement scaffolding that
//!    panics on broken setups by design) and `src/bin` entrypoints are
//!    exempt.
//! 5. **std-fs ban** — no raw `std::fs` IO in library source outside the
//!    `vfs` module and `#[cfg(test)]` modules. Storage IO must flow
//!    through `conquer_storage::vfs` so fault injection and crash-state
//!    enumeration see every byte. `crates/sync`, `crates/bench`, and
//!    `src/bin` entrypoints are exempt (they never touch durable state).
//!
//! `crates/xtask` itself and `vendor/` are out of scope for every check.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => {
            let root = workspace_root();
            let failures = run_tidy(&root);
            if failures > 0 {
                eprintln!("tidy: {failures} violation(s)");
                std::process::exit(1);
            }
            println!("tidy: all checks passed");
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- tidy");
            std::process::exit(2);
        }
    }
}

fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.ancestors().nth(2) {
        Some(root) => root.to_path_buf(),
        None => manifest.to_path_buf(),
    }
}

type Check = fn(&Path) -> Vec<String>;

fn run_tidy(root: &Path) -> usize {
    let checks: [(&str, Check); 5] = [
        ("std-sync lock ban", check_std_sync),
        ("failpoint cross-check", check_failpoints),
        ("env-var docs", check_env_docs),
        ("unwrap/expect ban", check_unwrap_ban),
        ("std-fs IO ban", check_std_fs),
    ];
    let mut total = 0;
    for (name, check) in checks {
        let violations = check(root);
        if violations.is_empty() {
            println!("tidy: {name}: ok");
        } else {
            println!("tidy: {name}: {} violation(s)", violations.len());
            for v in &violations {
                println!("  {v}");
            }
            total += violations.len();
        }
    }
    total
}

// ---------------------------------------------------------------- walking

/// Subdirectories of `crates/` (sorted), minus an exclusion list of crate
/// names.
fn crate_dirs(root: &Path, exclude: &[&str]) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return dirs;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let excluded = exclude.iter().any(|e| name.to_str() == Some(e));
        if path.is_dir() && !excluded {
            dirs.push(path);
        }
    }
    dirs.sort();
    dirs
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, &mut out);
    out.sort();
    out
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_default()
}

fn display(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
}

// ------------------------------------------------------------- text utils

/// Blank out `// ...` line-comment tails, preserving byte offsets and
/// newlines so line numbers computed on the stripped text match the
/// original. (A `//` inside a string literal also truncates its line —
/// acceptable for a lint, and none of the patterns we search for hide
/// behind one in this tree.)
fn strip_line_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.split_inclusive('\n') {
        match line.find("//") {
            Some(idx) => {
                out.push_str(&line[..idx]);
                for ch in line[idx..].chars() {
                    out.push(if ch == '\n' { '\n' } else { ' ' });
                }
            }
            None => out.push_str(line),
        }
    }
    out
}

fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// The contents of string literals on one line (escape-naive: splits on
/// `"`, which is exact for the plain literals these checks target).
fn string_literals(line: &str) -> Vec<&str> {
    line.split('"').skip(1).step_by(2).collect()
}

fn is_ident_char(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '_'
}

/// Does `hay` contain `word` as a standalone identifier that is not a path
/// segment qualified from the left (i.e. not preceded by `:`)?
fn contains_bare_word(hay: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let prev_ok = hay[..start]
            .chars()
            .next_back()
            .is_none_or(|ch| !is_ident_char(ch) && ch != ':');
        let next_ok = hay[end..]
            .chars()
            .next()
            .is_none_or(|ch| !is_ident_char(ch));
        if prev_ok && next_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Given text starting at `{`, the contents up to the matching `}` (or to
/// the end if unbalanced).
fn brace_group(text: &str) -> &str {
    let mut depth = 0usize;
    for (idx, ch) in text.char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return &text[1..idx];
                }
            }
            _ => {}
        }
    }
    text.get(1..).unwrap_or("")
}

// ---------------------------------------------------- check 1: std::sync

const BANNED_SYNC: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// No raw `std::sync` lock primitives outside the sync layer.
fn check_std_sync(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let mut scopes = crate_dirs(root, &["sync", "xtask"]);
    scopes.push(root.join("src"));
    for scope in scopes {
        for file in rs_files(&scope) {
            scan_std_sync(&read(&file), &display(root, &file), &mut violations);
        }
    }
    violations
}

fn scan_std_sync(text: &str, file: &str, violations: &mut Vec<String>) {
    const NEEDLE: &str = "std::sync::";
    let stripped = strip_line_comments(text);
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(NEEDLE) {
        let at = from + pos;
        let rest = &stripped[at + NEEDLE.len()..];
        from = at + NEEDLE.len();
        let line = line_of(&stripped, at);
        if rest.starts_with('{') {
            let group = brace_group(rest);
            for name in BANNED_SYNC {
                if contains_bare_word(group, name) {
                    violations.push(format!(
                        "{file}:{line}: `{name}` imported from `std::sync` — use \
                         `conquer_sync::{name}` (ranked + analyzable) instead"
                    ));
                }
            }
        } else {
            let ident: String = rest.chars().take_while(|&ch| is_ident_char(ch)).collect();
            if BANNED_SYNC.contains(&ident.as_str()) {
                violations.push(format!(
                    "{file}:{line}: raw `std::sync::{ident}` — use \
                     `conquer_sync::{ident}` (ranked + analyzable) instead"
                ));
            }
        }
    }
}

// --------------------------------------------------- check 2: failpoints

/// A failpoint name: exactly two non-empty `::`-separated segments of
/// lowercase letters, digits, and underscores.
fn is_failpoint_name(lit: &str) -> bool {
    let mut parts = lit.split("::");
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let seg_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    seg_ok(a) && seg_ok(b)
}

/// Every failpoint name referenced from a test must exist in library code,
/// otherwise the test arms a point that nothing triggers and silently
/// stops testing anything.
fn check_failpoints(root: &Path) -> Vec<String> {
    const DEFINING: [&str; 3] = ["trigger(", "fault_point(", "FaultWriter::new("];
    let mut registry = BTreeSet::new();
    for dir in crate_dirs(root, &["xtask"]) {
        for file in rs_files(&dir.join("src")) {
            for line in read(&file).lines() {
                if DEFINING.iter().any(|marker| line.contains(marker)) {
                    for lit in string_literals(line) {
                        if is_failpoint_name(lit) {
                            registry.insert(lit.to_string());
                        }
                    }
                }
            }
        }
    }

    let mut violations = Vec::new();
    // `crates/sync` is excluded: its tests use `x::y`-shaped labels for
    // blocking regions, which are not storage failpoints.
    for dir in crate_dirs(root, &["sync", "xtask"]) {
        for file in rs_files(&dir.join("tests")) {
            let text = read(&file);
            for (idx, line) in text.lines().enumerate() {
                for lit in string_literals(line) {
                    if is_failpoint_name(lit) && !registry.contains(lit) {
                        violations.push(format!(
                            "{}:{}: failpoint `{lit}` is not registered in any library \
                             crate — armed tests against it are no-ops",
                            display(root, &file),
                            idx + 1,
                        ));
                    }
                }
            }
        }
    }
    violations
}

// ----------------------------------------------------- check 3: env docs

fn is_env_name(lit: &str) -> bool {
    lit.strip_prefix("CONQUER_").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_uppercase() || c == '_')
    })
}

/// Every `CONQUER_*` environment variable read anywhere in library or
/// binary source must be documented in DESIGN.md's configuration table.
fn check_env_docs(root: &Path) -> Vec<String> {
    let design = read(&root.join("DESIGN.md"));
    let mut violations = Vec::new();
    let mut scopes: Vec<PathBuf> = crate_dirs(root, &["xtask"])
        .iter()
        .map(|d| d.join("src"))
        .collect();
    scopes.push(root.join("src"));
    for scope in scopes {
        for file in rs_files(&scope) {
            let text = read(&file);
            for (idx, line) in text.lines().enumerate() {
                for lit in string_literals(line) {
                    if is_env_name(lit) && !design.contains(lit) {
                        violations.push(format!(
                            "{}:{}: `{lit}` is read here but missing from DESIGN.md's \
                             environment-variable table",
                            display(root, &file),
                            idx + 1,
                        ));
                    }
                }
            }
        }
    }
    violations
}

// --------------------------------------------------- check 4: unwrap ban

const UNWRAP_DENY_ATTR: &str = "deny(clippy::unwrap_used";

/// Library crates must deny `unwrap`/`expect` outside tests, and no call
/// may appear textually before the first `#[cfg(test)]` in library source.
/// `crates/bench` and `src/bin/` entrypoints are exempt (panic-on-broken-
/// setup is their intended failure mode).
fn check_unwrap_ban(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let mut lib_roots: Vec<PathBuf> = crate_dirs(root, &["bench", "xtask"])
        .iter()
        .map(|d| d.join("src"))
        .collect();
    lib_roots.push(root.join("src"));
    for src in lib_roots {
        let lib = src.join("lib.rs");
        if lib.is_file() && !read(&lib).contains(UNWRAP_DENY_ATTR) {
            violations.push(format!(
                "{}: missing `#![cfg_attr(not(test), deny(clippy::unwrap_used, \
                 clippy::expect_used))]`",
                display(root, &lib),
            ));
        }
        for file in rs_files(&src) {
            let in_bin = file
                .strip_prefix(&src)
                .is_ok_and(|rel| rel.starts_with("bin"));
            if in_bin {
                continue;
            }
            scan_unwraps(&read(&file), &display(root, &file), &mut violations);
        }
    }
    violations
}

fn scan_unwraps(text: &str, file: &str, violations: &mut Vec<String>) {
    // `concat!` keeps the patterns out of this file's own source text, so
    // the check can include its own implementation without self-flagging.
    const UNWRAP: &str = concat!(".unw", "rap()");
    const EXPECT: &str = concat!(".exp", "ect(");
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            return; // test module convention: everything below is tests
        }
        let code = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        if code.contains(UNWRAP) || code.contains(EXPECT) {
            violations.push(format!(
                "{file}:{}: `{}` in non-test library code — return a typed error instead",
                idx + 1,
                if code.contains(UNWRAP) {
                    UNWRAP
                } else {
                    EXPECT
                },
            ));
        }
    }
}

// --------------------------------------------------- check 5: std::fs ban

/// Raw filesystem IO is banned in library source: it must route through
/// `conquer_storage::vfs`, whose `RealFs` path is a zero-cost passthrough
/// and whose `SimFs` path gives tests fault injection and crash-state
/// enumeration. An IO call that bypasses the vfs is invisible to both.
/// The vfs module itself, test modules (below the first `#[cfg(test)]`),
/// `crates/sync`, `crates/bench`, and `src/bin/` entrypoints are exempt.
fn check_std_fs(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let mut scopes: Vec<PathBuf> = crate_dirs(root, &["sync", "bench", "xtask"])
        .iter()
        .map(|d| d.join("src"))
        .collect();
    scopes.push(root.join("src"));
    for src in &scopes {
        for file in rs_files(src) {
            let in_bin = file
                .strip_prefix(src)
                .is_ok_and(|rel| rel.starts_with("bin"));
            let is_vfs = file.file_name().is_some_and(|n| n == "vfs.rs");
            if in_bin || is_vfs {
                continue;
            }
            scan_std_fs(&read(&file), &display(root, &file), &mut violations);
        }
    }
    violations
}

fn scan_std_fs(text: &str, file: &str, violations: &mut Vec<String>) {
    const NEEDLE: &str = "std::fs";
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            return; // test module convention: everything below is tests
        }
        let code = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        if let Some(pos) = code.find(NEEDLE) {
            // `std::fs` must end there as a path segment (`std::fs::read`,
            // `use std::fs;`) — an identifier continuing is a different
            // name entirely.
            let after = code[pos + NEEDLE.len()..].chars().next();
            if after.is_none_or(|ch| !is_ident_char(ch)) {
                violations.push(format!(
                    "{file}:{}: raw `std::fs` IO in library code — route it through \
                     `conquer_storage::vfs` so fault injection and crash-state \
                     enumeration see it",
                    idx + 1,
                ));
            }
        }
    }
}

// ------------------------------------------------------------------ tests

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("conquer_xtask_{tag}_{}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn put(&self, rel: &str, content: &str) -> &Self {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
            self
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn std_sync_flags_direct_and_grouped_lock_imports() {
        let fx = Fixture::new("sync_bad");
        fx.put("crates/engine/src/lib.rs", "use std::sync::Mutex;\n")
            .put(
                "crates/storage/src/wal.rs",
                "use std::sync::{Arc, RwLock};\nfn f() {}\n",
            );
        let v = check_std_sync(&fx.root);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(
            v[0].contains("engine/src/lib.rs:1") && v[0].contains("Mutex"),
            "{v:?}"
        );
        assert!(
            v[1].contains("wal.rs:1") && v[1].contains("RwLock"),
            "{v:?}"
        );
    }

    #[test]
    fn std_sync_allows_non_lock_items_and_the_sync_crate_itself() {
        let fx = Fixture::new("sync_ok");
        fx.put(
            "crates/engine/src/lib.rs",
            "use std::sync::{Arc, LazyLock, OnceLock};\n\
             use std::sync::atomic::{AtomicUsize, Ordering};\n\
             // a comment mentioning std::sync::Mutex is fine\n\
             static S: std::sync::LazyLock<Mutex<u32>> = todo();\n\
             use std::sync::mpsc::channel;\n",
        )
        .put("crates/sync/src/lib.rs", "pub use std::sync::Mutex;\n");
        assert_eq!(check_std_sync(&fx.root), Vec::<String>::new());
    }

    #[test]
    fn failpoint_reference_without_registration_is_flagged() {
        let fx = Fixture::new("fp");
        fx.put(
            "crates/storage/src/wal.rs",
            "fn f() { fault::trigger(\"wal::sync\")?; }\n",
        )
        .put(
            "crates/storage/tests/good.rs",
            "fn t() { fault::arm(\"wal::sync\", 1); }\n",
        )
        .put(
            "crates/storage/tests/bad.rs",
            "const POINTS: [&str; 2] = [\"wal::sync\", \"wal::sycn\"];\n",
        );
        let v = check_failpoints(&fx.root);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains("bad.rs:1") && v[0].contains("wal::sycn"),
            "{v:?}"
        );
    }

    #[test]
    fn undocumented_env_var_is_flagged() {
        let fx = Fixture::new("env");
        fx.put("DESIGN.md", "| `CONQUER_THREADS` | documented |\n")
            .put(
                "crates/engine/src/lib.rs",
                "fn f() { var(\"CONQUER_THREADS\"); var(\"CONQUER_MYSTERY_KNOB\"); }\n",
            );
        let v = check_env_docs(&fx.root);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("CONQUER_MYSTERY_KNOB"), "{v:?}");
    }

    #[test]
    fn unwrap_outside_tests_and_missing_attr_are_flagged() {
        let fx = Fixture::new("unwrap");
        let unwrap_call = concat!("x.unw", "rap()");
        fx.put(
            "crates/engine/src/lib.rs",
            &format!("fn f() {{ {unwrap_call}; }}\n#[cfg(test)]\nmod tests {{}}\n"),
        );
        let v = check_unwrap_ban(&fx.root);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("missing"), "{v:?}");
        assert!(v[1].contains("lib.rs:1"), "{v:?}");
    }

    #[test]
    fn unwrap_inside_test_module_comment_or_bench_is_allowed() {
        let fx = Fixture::new("unwrap_ok");
        let unwrap_call = concat!("x.unw", "rap()");
        let attr = "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n";
        fx.put(
            "crates/engine/src/lib.rs",
            &format!(
                "{attr}// comment: {unwrap_call}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ {unwrap_call}; }}\n}}\n"
            ),
        )
        .put(
            "crates/bench/src/lib.rs",
            &format!("fn f() {{ {unwrap_call}; }}\n"),
        )
        .put(
            "crates/engine/src/bin/tool.rs",
            &format!("fn main() {{ {unwrap_call}; }}\n"),
        );
        assert_eq!(check_unwrap_ban(&fx.root), Vec::<String>::new());
    }

    #[test]
    fn std_fs_outside_vfs_and_tests_is_flagged() {
        let fx = Fixture::new("fs_bad");
        fx.put(
            "crates/storage/src/wal.rs",
            "fn f() { std::fs::read(\"x\").ok(); }\n",
        )
        .put("crates/engine/src/lib.rs", "use std::fs;\nfn f() {}\n");
        let v = check_std_fs(&fx.root);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("lib.rs:1"), "{v:?}");
        assert!(v[1].contains("wal.rs:1"), "{v:?}");
    }

    #[test]
    fn std_fs_in_vfs_tests_bins_bench_and_comments_is_allowed() {
        let fx = Fixture::new("fs_ok");
        fx.put(
            "crates/storage/src/vfs.rs",
            "pub fn f() { std::fs::read(\"x\").ok(); }\n",
        )
        .put(
            "crates/storage/src/persist.rs",
            "// comment: std::fs is banned here\nfn f() {}\n#[cfg(test)]\nmod tests {\n    use std::fs;\n}\n",
        )
        .put(
            "crates/engine/src/bin/tool.rs",
            "fn main() { std::fs::read(\"x\").ok(); }\n",
        )
        .put("crates/bench/src/lib.rs", "use std::fs;\n")
        .put("crates/sync/src/lib.rs", "use std::fs;\n");
        assert_eq!(check_std_fs(&fx.root), Vec::<String>::new());
    }

    /// The real workspace must pass every check — this is the tidy gate's
    /// own regression test.
    #[test]
    fn real_workspace_is_tidy() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "bad root: {root:?}");
        assert_eq!(check_std_sync(&root), Vec::<String>::new());
        assert_eq!(check_failpoints(&root), Vec::<String>::new());
        assert_eq!(check_env_docs(&root), Vec::<String>::new());
        assert_eq!(check_unwrap_ban(&root), Vec::<String>::new());
        assert_eq!(check_std_fs(&root), Vec::<String>::new());
    }
}
