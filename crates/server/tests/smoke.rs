//! End-to-end smoke tests over a real TCP socket: many concurrent clients
//! running the paper's 13-template workload must get byte-identical
//! answers to a single client, cache hits must be visible in `STATS`, and
//! overload must surface as the typed `OVERLOADED` wire code — never a
//! hang or a dropped connection without an error line.

use std::time::Duration;

use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    queries::{query_sql, QUERY_IDS},
    tpch::TpchConfig,
};
use conquer_engine::{Database, ErrorKind, SharedConfig, SharedDatabase};
use conquer_server::{
    client::wire_form, Client, ClientError, Response, RetryPolicy, Server, ServerConfig,
    ServerHandle,
};

fn spawn_server(shared: SharedDatabase, max_conn: usize) -> ServerHandle {
    let mut config = ServerConfig::default();
    config.addr = "127.0.0.1:0".to_string();
    config.max_conn = max_conn;
    Server::bind(shared, &config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn tiny_shared() -> SharedDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b TEXT);
         INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'y')",
    )
    .unwrap();
    SharedDatabase::new(db)
}

#[test]
fn concurrent_clients_get_byte_identical_answers_on_the_paper_workload() {
    let dirty = dirty_database(UisConfig {
        tpch: TpchConfig {
            sf: 0.005,
            seed: 2024,
        },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .unwrap();
    let shared = SharedDatabase::new(dirty.db().clone());
    let handle = spawn_server(shared.clone(), 32);
    let addr = handle.addr();

    // The workload: all 13 templates, original and rewritten form.
    let mut workload = Vec::new();
    for &id in &QUERY_IDS {
        let sql = query_sql(id, false);
        workload.push(dirty.rewrite(&sql).unwrap().to_string());
        workload.push(sql);
    }

    // Single-client reference.
    let mut single = Client::connect(addr).unwrap();
    let reference: Vec<Vec<String>> = workload
        .iter()
        .map(|sql| wire_form(&single.query(sql).unwrap()))
        .collect();

    // 8 concurrent clients over the same workload.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (sql, expected) in workload.iter().zip(reference) {
                    let rows = client.query(sql).unwrap();
                    assert_eq!(&wire_form(&rows), expected, "answer diverged for {sql}");
                }
            });
        }
    });

    // The concurrent pass can only have been served from the caches; the
    // stats must prove re-preparation was skipped.
    let stats = shared.stats();
    assert!(
        stats.result_hits >= 8 * workload.len() as u64,
        "expected at least {} result-cache hits, saw {stats:?}",
        8 * workload.len()
    );
    assert_eq!(stats.plan_misses as usize, workload.len());
    handle.shutdown();
}

#[test]
fn stats_expose_cache_hits_over_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    client.query("SELECT a FROM t ORDER BY a").unwrap();
    let first = client.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(first.source, "result-cache");

    let stats = client.stats().unwrap();
    let get = |key: &str| {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("STATS missing {key}: {stats:?}"))
            .1
    };
    assert_eq!(get("result_hits"), 1);
    assert_eq!(get("result_misses"), 1);
    assert_eq!(get("plan_misses"), 1);
    assert_eq!(get("epoch"), 0);
    handle.shutdown();
}

#[test]
fn writes_bump_the_epoch_and_invalidate_over_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(before.rows, vec![vec!["3".to_string()]]);
    assert_eq!(before.epoch, 0);

    match client.sql("INSERT INTO t VALUES (4, 'z')").unwrap() {
        Response::Ok(summary) => assert_eq!(summary, "inserted 1"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.epoch().unwrap(), 1);

    let after = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(after.rows, vec![vec!["4".to_string()]]);
    assert_eq!(after.source, "fresh", "the cached answer must be evicted");
    assert_eq!(after.epoch, 1);
    handle.shutdown();
}

#[test]
fn admission_overload_is_a_typed_wire_error() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
        .unwrap();
    let mut config = SharedConfig::default();
    config.max_running = 1;
    config.max_queue = 0;
    let shared = SharedDatabase::with_config(db, config);
    let handle = spawn_server(shared.clone(), 8);

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Hold the only execution slot server-side, then watch the request
    // come back shed — immediately, with the stable error code.
    let slot = shared.admission().admit(None).unwrap();
    let err = client.query("SELECT a FROM t").unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "OVERLOADED", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(err.kind(), Some(ErrorKind::Overloaded));

    // The connection survives the error and serves again once the slot
    // frees up.
    drop(slot);
    assert_eq!(
        client.query("SELECT a FROM t").unwrap().rows,
        vec![vec!["1".to_string()]]
    );
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_with_typed_error() {
    let handle = spawn_server(tiny_shared(), 1);
    let mut first = Client::connect(handle.addr()).unwrap();
    first.ping().unwrap(); // the one slot is definitely taken

    let mut second = Client::connect(handle.addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let err = second.ping().unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "OVERLOADED", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn malformed_requests_get_proto_errors_not_disconnects() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client.request("FROBNICATE now").unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "PROTO", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(err.kind(), None, "PROTO is not an engine error kind");

    // A bad SQL statement maps to a stable engine kind.
    let err = client.query("SELEC a FROM t").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Parse), "{err}");

    // The connection still works afterwards.
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn a_shed_request_eventually_succeeds_with_retry() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
        .unwrap();
    let mut config = SharedConfig::default();
    config.max_running = 1;
    config.max_queue = 0;
    let shared = SharedDatabase::with_config(db, config);
    let handle = spawn_server(shared.clone(), 8);
    let addr = handle.addr().to_string();

    // Hold the only execution slot for a while, then release it: every
    // request sent in the meantime is shed with `ERR OVERLOADED`.
    let holder_db = shared.clone();
    let holder = std::thread::spawn(move || {
        let slot = holder_db.admission().admit(None).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        drop(slot);
    });
    std::thread::sleep(Duration::from_millis(30)); // the slot is taken

    // Without retries the shed surfaces immediately...
    let mut bare = Client::builder(&addr).no_retry().connect().unwrap();
    let err = bare.query("SELECT a FROM t").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Overloaded), "{err}");

    // ...with retries the same request rides out the overload.
    let mut retrying = Client::builder(&addr)
        .retry(RetryPolicy {
            max_attempts: 50,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
        })
        .connect()
        .unwrap();
    let rows = retrying.query("SELECT a FROM t").unwrap();
    assert_eq!(rows.rows, vec![vec!["1".to_string()]]);

    holder.join().unwrap();
    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_with_a_typed_timeout() {
    let mut config = ServerConfig::default();
    config.addr = "127.0.0.1:0".to_string();
    config.max_conn = 8;
    config.idle_timeout = Some(Duration::from_millis(50));
    let handle = Server::bind(tiny_shared(), &config)
        .expect("bind")
        .spawn()
        .expect("spawn");

    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The server reaped the idle connection: either we read its parting
    // `ERR TIMEOUT` line, or the socket is already gone.
    let err = client.ping().unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "TIMEOUT", "{e:?}"),
        ClientError::Io(_) => {}
        other => panic!("unexpected {other:?}"),
    }

    // Reaping frees the slot for fresh connections.
    Client::connect(handle.addr()).unwrap().ping().unwrap();
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_queries_and_refuses_new_work() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
        .unwrap();
    let mut config = SharedConfig::default();
    config.max_running = 1;
    config.max_queue = 10;
    let shared = SharedDatabase::with_config(db, config);
    let handle = spawn_server(shared.clone(), 8);
    let addr = handle.addr();

    // Park an in-flight query: the test holds the only execution slot, so
    // the query below blocks in the admission queue server-side.
    let slot = shared.admission().admit(None).unwrap();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query("SELECT a FROM t")
    });
    std::thread::sleep(Duration::from_millis(50));

    let mut pre_drain = Client::connect(addr).unwrap();
    pre_drain.ping().unwrap();

    let drainer = std::thread::spawn(move || handle.shutdown_within(Duration::from_secs(10)));

    // A connection opened before the drain is answered with the typed
    // SHUTDOWN error once draining starts — not a dropped socket.
    let err = loop {
        match pre_drain.ping() {
            Ok(()) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => break e,
        }
    };
    assert_eq!(err.kind(), Some(ErrorKind::Shutdown), "{err}");

    // New connections are refused with the same typed error.
    let mut late = Client::connect(addr).unwrap();
    let err = late.ping().unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Shutdown), "{err}");

    // The parked query drains to completion instead of being dropped.
    drop(slot);
    let rows = inflight.join().unwrap().unwrap();
    assert_eq!(rows.rows, vec![vec!["1".to_string()]]);
    drainer.join().unwrap();
}

#[test]
fn checkpoint_round_trips_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("conquer-smoke-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Durable server: CHECKPOINT folds the WAL and reports what it did.
    let (shared, report) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let handle = spawn_server(shared, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.exec("CREATE TABLE t (a INTEGER)").unwrap();
    client.exec("INSERT INTO t VALUES (1), (2)").unwrap();
    match client.request("CHECKPOINT").unwrap() {
        Response::Ok(s) => assert!(s.starts_with("checkpoint epoch "), "{s}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();

    // In-memory server: CHECKPOINT is an explicit noop, not an error.
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.request("CHECKPOINT").unwrap() {
        Response::Ok(s) => assert!(s.contains("noop"), "{s}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn values_with_tabs_and_newlines_survive_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .exec("INSERT INTO t VALUES (9, 'tab\there and\\nnothing')")
        .unwrap();
    let rows = client.query("SELECT b FROM t WHERE a = 9").unwrap();
    assert_eq!(rows.rows.len(), 1);
    assert!(rows.rows[0][0].contains('\t') || rows.rows[0][0].contains("tab"));
    handle.shutdown();
}

#[test]
fn scrub_round_trips_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("conquer-smoke-scrub-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Durable server, clean disk: SCRUB reports counters and stays healthy.
    let (shared, _) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    let handle = spawn_server(shared, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.exec("CREATE TABLE t (a INTEGER)").unwrap();
    client.exec("INSERT INTO t VALUES (1), (2)").unwrap();
    match client.request("CHECKPOINT").unwrap() {
        Response::Ok(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    let stats = match client.request("SCRUB").unwrap() {
        Response::Stats(stats) => stats,
        other => panic!("unexpected {other:?}"),
    };
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing STAT {k}: {stats:?}"))
            .1
    };
    assert!(get("clean") > 0, "{stats:?}");
    assert_eq!(get("corrupt"), 0, "{stats:?}");

    // Rot a byte of the committed epoch behind the server's back: the
    // next SCRUB must report corruption and degrade writes with the
    // typed wire kind, while reads keep answering.
    let epoch = std::fs::read_to_string(dir.join("CURRENT")).unwrap();
    let data = dir.join(epoch.trim()).join("t.csv");
    let mut bytes = std::fs::read(&data).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&data, &bytes).unwrap();
    let stats = match client.request("SCRUB").unwrap() {
        Response::Stats(stats) => stats,
        other => panic!("unexpected {other:?}"),
    };
    let corrupt = stats.iter().find(|(k, _)| k == "corrupt").unwrap().1;
    assert!(corrupt > 0, "{stats:?}");
    let err = client.exec("INSERT INTO t VALUES (3)").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Degraded), "{err}");
    let rows = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows.rows, vec![vec!["2".to_string()]]);

    // STATS now carries the degraded flag; CHECKPOINT repairs it.
    let all = client.stats().unwrap();
    let degraded = all.iter().find(|(k, _)| k == "degraded").unwrap().1;
    assert_eq!(degraded, 1, "{all:?}");
    match client.request("CHECKPOINT").unwrap() {
        Response::Ok(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    client.exec("INSERT INTO t VALUES (3)").unwrap();
    handle.shutdown();

    // In-memory server: SCRUB is an explicit noop, not an error.
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.request("SCRUB").unwrap() {
        Response::Ok(s) => assert!(s.contains("noop"), "{s}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
