//! End-to-end smoke tests over a real TCP socket: many concurrent clients
//! running the paper's 13-template workload must get byte-identical
//! answers to a single client, cache hits must be visible in `STATS`, and
//! overload must surface as the typed `OVERLOADED` wire code — never a
//! hang or a dropped connection without an error line.

use std::time::Duration;

use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    queries::{query_sql, QUERY_IDS},
    tpch::TpchConfig,
};
use conquer_engine::{Database, ErrorKind, SharedConfig, SharedDatabase};
use conquer_server::{
    client::wire_form, Client, ClientError, Response, Server, ServerConfig, ServerHandle,
};

fn spawn_server(shared: SharedDatabase, max_conn: usize) -> ServerHandle {
    let mut config = ServerConfig::default();
    config.addr = "127.0.0.1:0".to_string();
    config.max_conn = max_conn;
    Server::bind(shared, &config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn tiny_shared() -> SharedDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b TEXT);
         INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'y')",
    )
    .unwrap();
    SharedDatabase::new(db)
}

#[test]
fn concurrent_clients_get_byte_identical_answers_on_the_paper_workload() {
    let dirty = dirty_database(UisConfig {
        tpch: TpchConfig {
            sf: 0.005,
            seed: 2024,
        },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .unwrap();
    let shared = SharedDatabase::new(dirty.db().clone());
    let handle = spawn_server(shared.clone(), 32);
    let addr = handle.addr();

    // The workload: all 13 templates, original and rewritten form.
    let mut workload = Vec::new();
    for &id in &QUERY_IDS {
        let sql = query_sql(id, false);
        workload.push(dirty.rewrite(&sql).unwrap().to_string());
        workload.push(sql);
    }

    // Single-client reference.
    let mut single = Client::connect(addr).unwrap();
    let reference: Vec<Vec<String>> = workload
        .iter()
        .map(|sql| wire_form(&single.query(sql).unwrap()))
        .collect();

    // 8 concurrent clients over the same workload.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (sql, expected) in workload.iter().zip(reference) {
                    let rows = client.query(sql).unwrap();
                    assert_eq!(&wire_form(&rows), expected, "answer diverged for {sql}");
                }
            });
        }
    });

    // The concurrent pass can only have been served from the caches; the
    // stats must prove re-preparation was skipped.
    let stats = shared.stats();
    assert!(
        stats.result_hits >= 8 * workload.len() as u64,
        "expected at least {} result-cache hits, saw {stats:?}",
        8 * workload.len()
    );
    assert_eq!(stats.plan_misses as usize, workload.len());
    handle.shutdown();
}

#[test]
fn stats_expose_cache_hits_over_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    client.query("SELECT a FROM t ORDER BY a").unwrap();
    let first = client.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(first.source, "result-cache");

    let stats = client.stats().unwrap();
    let get = |key: &str| {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("STATS missing {key}: {stats:?}"))
            .1
    };
    assert_eq!(get("result_hits"), 1);
    assert_eq!(get("result_misses"), 1);
    assert_eq!(get("plan_misses"), 1);
    assert_eq!(get("epoch"), 0);
    handle.shutdown();
}

#[test]
fn writes_bump_the_epoch_and_invalidate_over_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(before.rows, vec![vec!["3".to_string()]]);
    assert_eq!(before.epoch, 0);

    match client.sql("INSERT INTO t VALUES (4, 'z')").unwrap() {
        Response::Ok(summary) => assert_eq!(summary, "inserted 1"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.epoch().unwrap(), 1);

    let after = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(after.rows, vec![vec!["4".to_string()]]);
    assert_eq!(after.source, "fresh", "the cached answer must be evicted");
    assert_eq!(after.epoch, 1);
    handle.shutdown();
}

#[test]
fn admission_overload_is_a_typed_wire_error() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
        .unwrap();
    let mut config = SharedConfig::default();
    config.max_running = 1;
    config.max_queue = 0;
    let shared = SharedDatabase::with_config(db, config);
    let handle = spawn_server(shared.clone(), 8);

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Hold the only execution slot server-side, then watch the request
    // come back shed — immediately, with the stable error code.
    let slot = shared.admission().admit(None).unwrap();
    let err = client.query("SELECT a FROM t").unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "OVERLOADED", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(err.kind(), Some(ErrorKind::Overloaded));

    // The connection survives the error and serves again once the slot
    // frees up.
    drop(slot);
    assert_eq!(
        client.query("SELECT a FROM t").unwrap().rows,
        vec![vec!["1".to_string()]]
    );
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_with_typed_error() {
    let handle = spawn_server(tiny_shared(), 1);
    let mut first = Client::connect(handle.addr()).unwrap();
    first.ping().unwrap(); // the one slot is definitely taken

    let mut second = Client::connect(handle.addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let err = second.ping().unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "OVERLOADED", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn malformed_requests_get_proto_errors_not_disconnects() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client.request("FROBNICATE now").unwrap_err();
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, "PROTO", "{e:?}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(err.kind(), None, "PROTO is not an engine error kind");

    // A bad SQL statement maps to a stable engine kind.
    let err = client.query("SELEC a FROM t").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::Parse), "{err}");

    // The connection still works afterwards.
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn values_with_tabs_and_newlines_survive_the_wire() {
    let handle = spawn_server(tiny_shared(), 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .exec("INSERT INTO t VALUES (9, 'tab\there and\\nnothing')")
        .unwrap();
    let rows = client.query("SELECT b FROM t WHERE a = 9").unwrap();
    assert_eq!(rows.rows.len(), 1);
    assert!(rows.rows[0][0].contains('\t') || rows.rows[0][0].contains("tab"));
    handle.shutdown();
}
