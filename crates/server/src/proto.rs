//! The ConQuer wire protocol: line-oriented, UTF-8, human-debuggable with
//! `nc`.
//!
//! # Requests
//!
//! One request per line (`\n`-terminated; a trailing `\r` is tolerated).
//! The verb is case-insensitive; everything after the first space is the
//! verb's argument, uninterpreted:
//!
//! ```text
//! SQL <statement>        auto-routed: queries read-share, commands take the write lock
//! QUERY <select>         must be a SELECT/EXPLAIN (errors on DDL/DML)
//! EXEC <statement>       any statement
//! LIMIT                  show this session's resource limits
//! LIMIT mem <bytes> | disk <bytes> | time <ms> | threads <n> | off
//! STATS                  shared cache/admission counters
//! EPOCH                  current catalog epoch
//! CHECKPOINT             fold the WAL into a fresh epoch directory (durable servers)
//! SCRUB                  checksum-sweep the persistence directory (durable servers)
//! PING                   liveness check
//! QUIT                   close the connection
//! ```
//!
//! # Responses
//!
//! Row-producing requests answer with a header, zero or more rows, and a
//! trailer; everything else answers with a single `OK` line. All payload
//! fields are [escaped](escape) so a response line never contains a raw
//! tab or newline:
//!
//! ```text
//! COLS <ncols> <name>\t<name>...
//! ROW <value>\t<value>...
//! END <nrows> <source> <epoch>      source: fresh | plan-cache | result-cache
//! OK <summary>
//! STAT <key> <value>                (STATS emits one per counter, then OK)
//! ERR <KIND> <message>              KIND: a stable ErrorKind code or PROTO
//! ```
//!
//! The `<source>` field in `END` is how clients observe cache behavior
//! (`result-cache` answers skipped execution entirely; `plan-cache`
//! answers skipped re-preparation); `<epoch>` identifies the catalog
//! snapshot the answer is valid for. Error kinds are the
//! [`ErrorKind::as_str`] spellings — stable, so clients dispatch on them
//! instead of matching message text; `PROTO` (not an engine kind) marks
//! malformed requests.

use conquer_engine::ErrorKind;
use conquer_storage::Value;

/// Wire code for protocol (framing) errors, distinct from every
/// [`ErrorKind`] code.
pub const PROTO_CODE: &str = "PROTO";

/// Escape a payload field for single-line transport: `\` → `\\`, TAB →
/// `\t`, LF → `\n`, CR → `\r`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape`]. Errors on a dangling or unknown escape sequence.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape sequence \\{other}")),
            None => return Err("dangling backslash".to_string()),
        }
    }
    Ok(out)
}

/// Render one result row as the tab-separated, escaped `ROW` payload.
/// `Value` rendering is deterministic (floats print in shortest
/// round-trip form), so identical rows always encode to identical bytes.
pub fn encode_row(row: &[Value]) -> String {
    row.iter()
        .map(|v| escape(&v.to_string()))
        .collect::<Vec<_>>()
        .join("\t")
}

/// Split an escaped tab-separated payload back into fields.
pub fn decode_fields(payload: &str) -> Result<Vec<String>, String> {
    if payload.is_empty() {
        return Ok(Vec::new());
    }
    payload.split('\t').map(unescape).collect()
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `SQL <statement>` — auto-routed.
    Sql(String),
    /// `QUERY <select>` — read-only.
    Query(String),
    /// `EXEC <statement>` — any statement.
    Exec(String),
    /// `LIMIT [<what> <n> | off]` — the raw argument (possibly empty).
    Limit(String),
    /// `STATS`.
    Stats,
    /// `EPOCH`.
    Epoch,
    /// `CHECKPOINT`.
    Checkpoint,
    /// `SCRUB`.
    Scrub,
    /// `PING`.
    Ping,
    /// `QUIT`.
    Quit,
}

impl Request {
    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.strip_suffix('\r').unwrap_or(line);
        let (verb, arg) = match line.split_once(' ') {
            Some((v, a)) => (v, a.trim()),
            None => (line.trim(), ""),
        };
        let need = |name: &str| -> Result<String, String> {
            if arg.is_empty() {
                Err(format!("{name} requires an argument"))
            } else {
                Ok(arg.to_string())
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "SQL" => Ok(Request::Sql(need("SQL")?)),
            "QUERY" => Ok(Request::Query(need("QUERY")?)),
            "EXEC" => Ok(Request::Exec(need("EXEC")?)),
            "LIMIT" => Ok(Request::Limit(arg.to_string())),
            "STATS" => Ok(Request::Stats),
            "EPOCH" => Ok(Request::Epoch),
            "CHECKPOINT" => Ok(Request::Checkpoint),
            "SCRUB" => Ok(Request::Scrub),
            "PING" => Ok(Request::Ping),
            "QUIT" => Ok(Request::Quit),
            "" => Err("empty request".to_string()),
            other => Err(format!("unknown verb {other:?}")),
        }
    }
}

/// Format an `ERR` line from a stable kind code and message.
pub fn err_line(code: &str, message: &str) -> String {
    format!("ERR {code} {}", escape(message))
}

/// Format the `ERR` line for an engine error using its [`ErrorKind`].
pub fn engine_err_line(e: &conquer_engine::EngineError) -> String {
    err_line(e.kind().as_str(), &e.to_string())
}

/// Parse the code of an `ERR` line into an [`ErrorKind`], when it is one.
pub fn parse_err_kind(code: &str) -> Option<ErrorKind> {
    code.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_adversarial_text() {
        for s in [
            "",
            "plain",
            "tab\there",
            "nl\nhere",
            "cr\rhere",
            "back\\slash",
            "\\t not a tab",
            "mix\t\n\r\\\\t end",
        ] {
            let escaped = escape(s);
            assert!(!escaped.contains('\n') && !escaped.contains('\t'));
            assert_eq!(unescape(&escaped).unwrap(), s);
        }
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\x").is_err());
    }

    #[test]
    fn rows_encode_deterministically() {
        let row = vec![
            Value::Int(1),
            Value::Float(0.1 + 0.2),
            Value::text("a\tb"),
            Value::Null,
        ];
        let enc = encode_row(&row);
        assert_eq!(enc, encode_row(&row));
        let fields = decode_fields(&enc).unwrap();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[2], "a\tb");
        // Shortest round-trip float rendering: parsing back is bit-exact.
        assert_eq!(fields[1].parse::<f64>().unwrap(), 0.1 + 0.2);
    }

    #[test]
    fn requests_parse() {
        assert_eq!(
            Request::parse("SQL SELECT 1 FROM t").unwrap(),
            Request::Sql("SELECT 1 FROM t".into())
        );
        assert_eq!(
            Request::parse("query select a from t\r").unwrap(),
            Request::Query("select a from t".into())
        );
        assert_eq!(Request::parse("LIMIT").unwrap(), Request::Limit("".into()));
        assert_eq!(
            Request::parse("LIMIT mem 1024").unwrap(),
            Request::Limit("mem 1024".into())
        );
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(Request::parse("scrub").unwrap(), Request::Scrub);
        assert!(Request::parse("QUERY").is_err());
        assert!(Request::parse("BOGUS x").is_err());
        assert!(Request::parse("").is_err());
    }

    #[test]
    fn err_lines_carry_stable_kinds() {
        let e = conquer_engine::EngineError::Cancelled;
        let line = engine_err_line(&e);
        assert!(line.starts_with("ERR CANCELLED "), "{line}");
        assert_eq!(parse_err_kind("CANCELLED"), Some(ErrorKind::Cancelled));
        assert_eq!(parse_err_kind(PROTO_CODE), None);
    }
}
