//! `conquer-server` — serve one database to many clients over TCP.
//!
//! ```text
//! conquer-server [--addr HOST:PORT] [--load DIR | --gen SF IF]
//! ```
//!
//! The database is either loaded from a directory previously written with
//! `save_to_dir` (`--load`), or generated as a UIS-dirtied TPC-H-lite
//! instance (`--gen`, default `--gen 0.01 3`). Cache sizes, admission
//! slots, and the listen address also come from the environment
//! (`CONQUER_PLAN_CACHE`, `CONQUER_RESULT_CACHE`, `CONQUER_ADMIT`,
//! `CONQUER_QUEUE`, `CONQUER_ADDR`, `CONQUER_MAX_CONN`); flags win over
//! the environment.

use std::process::ExitCode;

use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    tpch::TpchConfig,
};
use conquer_engine::{Database, SharedConfig, SharedDatabase};
use conquer_server::{Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("conquer-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::from_env();
    let mut load: Option<String> = None;
    let mut gen: (f64, u32) = (0.01, 3);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().ok_or("--addr needs HOST:PORT")?;
            }
            "--load" => {
                load = Some(args.next().ok_or("--load needs a directory")?);
            }
            "--gen" => {
                let sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gen needs a scale factor (e.g. 0.01)")?;
                let if_factor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gen needs an inconsistency factor (e.g. 3)")?;
                gen = (sf, if_factor);
            }
            "--help" | "-h" => {
                println!("usage: conquer-server [--addr HOST:PORT] [--load DIR | --gen SF IF]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }

    let db = match &load {
        Some(dir) => {
            eprintln!("loading database from {dir} ...");
            Database::load_from_dir(std::path::Path::new(dir))
                .map_err(|e| format!("loading {dir}: {e}"))?
        }
        None => {
            let (sf, if_factor) = gen;
            eprintln!("generating dirty TPC-H-lite (sf={sf}, if={if_factor}) ...");
            let dirty = dirty_database(UisConfig {
                tpch: TpchConfig { sf, seed: 2024 },
                if_factor,
                prob_mode: ProbMode::Uniform,
                perturb: PerturbOptions::default(),
            })
            .map_err(|e| format!("generating data: {e}"))?;
            dirty.db().clone()
        }
    };

    let shared = SharedDatabase::with_config(db, SharedConfig::from_env());
    let server =
        Server::bind(shared, &config).map_err(|e| format!("binding {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("conquer-server listening on {addr}");
    server.run().map_err(|e| format!("serving: {e}"))
}
