//! `conquer-server` — serve one database to many clients over TCP.
//!
//! ```text
//! conquer-server [--addr HOST:PORT] [--load DIR | --gen SF IF]
//! ```
//!
//! With `--load DIR` the server opens DIR as a *durable* database:
//! recovery replays any committed write-ahead-log suffix (printing a
//! report of anything repaired along the way), and every write served
//! afterwards is WAL-committed before it is acknowledged — crash-safe.
//! With `--gen` (default `--gen 0.01 3`) it serves an in-memory
//! UIS-dirtied TPC-H-lite instance instead. Cache sizes, admission
//! slots, WAL checkpointing, timeouts, and the listen address also come
//! from the environment (`CONQUER_PLAN_CACHE`, `CONQUER_RESULT_CACHE`,
//! `CONQUER_ADMIT`, `CONQUER_QUEUE`, `CONQUER_WAL_LIMIT`,
//! `CONQUER_ADDR`, `CONQUER_MAX_CONN`, `CONQUER_IDLE_MS`,
//! `CONQUER_GRACE_MS`); flags win over the environment.

use std::process::ExitCode;

use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    tpch::TpchConfig,
};
use conquer_engine::{SharedConfig, SharedDatabase};
use conquer_server::{Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("conquer-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::from_env();
    let mut load: Option<String> = None;
    let mut gen: (f64, u32) = (0.01, 3);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().ok_or("--addr needs HOST:PORT")?;
            }
            "--load" => {
                load = Some(args.next().ok_or("--load needs a directory")?);
            }
            "--gen" => {
                let sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gen needs a scale factor (e.g. 0.01)")?;
                let if_factor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gen needs an inconsistency factor (e.g. 3)")?;
                gen = (sf, if_factor);
            }
            "--help" | "-h" => {
                println!("usage: conquer-server [--addr HOST:PORT] [--load DIR | --gen SF IF]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }

    let shared = match &load {
        Some(dir) => {
            eprintln!("opening durable database at {dir} ...");
            let (shared, report) =
                SharedDatabase::open_durable(std::path::Path::new(dir), SharedConfig::from_env())
                    .map_err(|e| format!("opening {dir}: {e}"))?;
            match &report.loaded_epoch {
                Some(epoch) => eprintln!(
                    "recovered epoch {epoch} + {} WAL commit(s)",
                    report.wal_commits_replayed
                ),
                None => eprintln!(
                    "no epoch directory; recovered {} WAL commit(s)",
                    report.wal_commits_replayed
                ),
            }
            for issue in &report.issues {
                eprintln!("recovery: {issue}");
            }
            shared
        }
        None => {
            let (sf, if_factor) = gen;
            eprintln!("generating dirty TPC-H-lite (sf={sf}, if={if_factor}) ...");
            let dirty = dirty_database(UisConfig {
                tpch: TpchConfig { sf, seed: 2024 },
                if_factor,
                prob_mode: ProbMode::Uniform,
                perturb: PerturbOptions::default(),
            })
            .map_err(|e| format!("generating data: {e}"))?;
            SharedDatabase::with_config(dirty.db().clone(), SharedConfig::from_env())
        }
    };

    let server =
        Server::bind(shared, &config).map_err(|e| format!("binding {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("conquer-server listening on {addr}");
    server.run().map_err(|e| format!("serving: {e}"))
}
