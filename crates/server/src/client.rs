//! A blocking client for the [wire protocol](crate::proto): connects over
//! TCP, sends one request line at a time, and parses the response into
//! typed values. Used by the CLI's `--connect` mode, the concurrency
//! bench, and the smoke tests.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use conquer_engine::ErrorKind;

use crate::proto::{decode_fields, escape, unescape};

/// A server-reported error (an `ERR` line), carrying the stable kind code
/// so callers dispatch on [`ClientError::kind`] instead of message text.
#[derive(Debug, Clone)]
pub struct ServerError {
    /// The wire code, verbatim (an [`ErrorKind`] spelling or `PROTO`).
    pub code: String,
    /// The human-readable message.
    pub message: String,
}

/// Everything that can go wrong on the client side of a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with an `ERR` line.
    Server(ServerError),
    /// The server answered with something the client cannot parse.
    Proto(String),
}

impl ClientError {
    /// The engine [`ErrorKind`] of a server-reported error, when the code
    /// is one ( `PROTO` and transport errors return `None`).
    pub fn kind(&self) -> Option<ErrorKind> {
        match self {
            ClientError::Server(e) => e.code.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
            ClientError::Proto(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A row set (`COLS`/`ROW`.../`END`).
    Rows(Rows),
    /// A single `OK <summary>` line.
    Ok(String),
    /// `STAT` lines folded into key/value pairs (from `STATS`).
    Stats(Vec<(String, u64)>),
}

/// A decoded row set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rows {
    /// Column names.
    pub columns: Vec<String>,
    /// Row values as decoded strings (the wire's canonical rendering, so
    /// comparing two `Rows` compares answers byte-for-byte).
    pub rows: Vec<Vec<String>>,
    /// Which layer answered: `fresh`, `plan-cache`, or `result-cache`.
    pub source: String,
    /// The catalog epoch the answer is valid for.
    pub epoch: u64,
}

/// A blocking connection to a ConQuer server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Set (or clear) the read timeout, so a hung server surfaces as an
    /// I/O error instead of blocking forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one raw request line and parse the response.
    pub fn request(&mut self, line: &str) -> Result<Response, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `SQL <sql>` — auto-routed; queries return [`Response::Rows`],
    /// commands [`Response::Ok`].
    pub fn sql(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.request(&format!("SQL {}", sanitize(sql)))
    }

    /// `QUERY <sql>` — read-only; always rows on success.
    pub fn query(&mut self, sql: &str) -> Result<Rows, ClientError> {
        match self.request(&format!("QUERY {}", sanitize(sql)))? {
            Response::Rows(rows) => Ok(rows),
            other => Err(ClientError::Proto(format!(
                "QUERY answered without rows: {other:?}"
            ))),
        }
    }

    /// `EXEC <sql>` — any statement.
    pub fn exec(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.request(&format!("EXEC {}", sanitize(sql)))
    }

    /// `STATS` — the server's cache/admission counters.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.request("STATS")? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Proto(format!(
                "STATS answered unexpectedly: {other:?}"
            ))),
        }
    }

    /// `EPOCH` — the server's current catalog epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.request("EPOCH")? {
            Response::Ok(s) => s
                .parse()
                .map_err(|_| ClientError::Proto(format!("EPOCH answered {s:?}"))),
            other => Err(ClientError::Proto(format!(
                "EPOCH answered unexpectedly: {other:?}"
            ))),
        }
    }

    /// `PING` — liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("PING").map(|_| ())
    }

    /// `QUIT` — tell the server to close this connection.
    pub fn quit(&mut self) -> Result<(), ClientError> {
        self.request("QUIT").map(|_| ())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Proto(
                "server closed the connection mid-response".to_string(),
            ));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut stats = Vec::new();
        loop {
            let line = self.read_line()?;
            let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
            match tag {
                "OK" => {
                    return Ok(if stats.is_empty() {
                        Response::Ok(rest.to_string())
                    } else {
                        Response::Stats(stats)
                    });
                }
                "ERR" => return Err(parse_err(rest)),
                "STAT" => {
                    let (key, value) = rest
                        .split_once(' ')
                        .ok_or_else(|| ClientError::Proto(format!("bad STAT line: {line:?}")))?;
                    let value = value
                        .parse()
                        .map_err(|_| ClientError::Proto(format!("bad STAT value: {line:?}")))?;
                    stats.push((key.to_string(), value));
                }
                "COLS" => return self.read_rows(rest),
                other => {
                    return Err(ClientError::Proto(format!(
                        "unexpected response line tag {other:?}"
                    )))
                }
            }
        }
    }

    fn read_rows(&mut self, cols_payload: &str) -> Result<Response, ClientError> {
        let (ncols, names) = cols_payload.split_once(' ').unwrap_or((cols_payload, ""));
        let ncols: usize = ncols
            .parse()
            .map_err(|_| ClientError::Proto(format!("bad COLS count: {cols_payload:?}")))?;
        let columns = decode_fields(names).map_err(ClientError::Proto)?;
        if columns.len() != ncols {
            return Err(ClientError::Proto(format!(
                "COLS announced {ncols} columns but named {}",
                columns.len()
            )));
        }
        let mut rows = Vec::new();
        loop {
            let line = self.read_line()?;
            let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
            match tag {
                "ROW" => rows.push(decode_fields(rest).map_err(ClientError::Proto)?),
                "END" => {
                    let mut parts = rest.split(' ');
                    let nrows: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?;
                    let source = parts
                        .next()
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?
                        .to_string();
                    let epoch: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?;
                    if nrows != rows.len() {
                        return Err(ClientError::Proto(format!(
                            "END announced {nrows} rows but {} arrived",
                            rows.len()
                        )));
                    }
                    return Ok(Response::Rows(Rows {
                        columns,
                        rows,
                        source,
                        epoch,
                    }));
                }
                "ERR" => return Err(parse_err(rest)),
                other => {
                    return Err(ClientError::Proto(format!(
                        "unexpected line tag {other:?} inside a row set"
                    )))
                }
            }
        }
    }
}

/// Requests are single lines; fold any embedded newlines in user SQL into
/// spaces (SQL is whitespace-insensitive) so multi-line statements from
/// scripts still travel.
fn sanitize(sql: &str) -> String {
    if sql.contains(['\n', '\r']) {
        sql.replace(['\n', '\r'], " ")
    } else {
        sql.to_string()
    }
}

fn parse_err(payload: &str) -> ClientError {
    let (code, message) = payload.split_once(' ').unwrap_or((payload, ""));
    ClientError::Server(ServerError {
        code: code.to_string(),
        message: unescape(message).unwrap_or_else(|_| message.to_string()),
    })
}

/// Render a row set back into canonical wire form (one string per row,
/// escaped and tab-separated). Two answers are byte-identical iff their
/// wire forms are equal — this is what the smoke test and bench compare.
pub fn wire_form(rows: &Rows) -> Vec<String> {
    rows.rows
        .iter()
        .map(|row| row.iter().map(|v| escape(v)).collect::<Vec<_>>().join("\t"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_error_kinds_parse() {
        let err = parse_err("OVERLOADED server overloaded: 4 queries running");
        match &err {
            ClientError::Server(e) => {
                assert_eq!(e.code, "OVERLOADED");
                assert!(e.message.starts_with("server overloaded"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(err.kind(), Some(ErrorKind::Overloaded));
        assert_eq!(parse_err("PROTO bad verb").kind(), None);
    }

    #[test]
    fn sanitize_folds_newlines() {
        assert_eq!(sanitize("SELECT 1"), "SELECT 1");
        assert_eq!(sanitize("SELECT\n  1\r\n"), "SELECT   1  ");
    }
}
