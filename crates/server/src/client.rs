//! A blocking client for the [wire protocol](crate::proto): connects over
//! TCP, sends one request line at a time, and parses the response into
//! typed values. Used by the CLI's `--connect` mode, the concurrency
//! bench, and the smoke tests.
//!
//! Clients built through [`Client::builder`] transparently retry requests
//! the server *answered* with a retryable error
//! ([`ErrorKind::is_retryable`]: `OVERLOADED`, `TIMEOUT`, `CANCELLED`) —
//! the answer proves the statement never executed, so resending is safe
//! even for writes. Each retry reconnects (a shed connection is closed
//! server-side after its error line) and backs off exponentially with
//! jitter, up to [`RetryPolicy::max_attempts`]. Transport errors are
//! *not* retried: without a response there is no proof the request
//! didn't execute.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use conquer_engine::ErrorKind;

use crate::proto::{decode_fields, escape, unescape};

/// A server-reported error (an `ERR` line), carrying the stable kind code
/// so callers dispatch on [`ClientError::kind`] instead of message text.
#[derive(Debug, Clone)]
pub struct ServerError {
    /// The wire code, verbatim (an [`ErrorKind`] spelling or `PROTO`).
    pub code: String,
    /// The human-readable message.
    pub message: String,
}

/// Everything that can go wrong on the client side of a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with an `ERR` line.
    Server(ServerError),
    /// The server answered with something the client cannot parse.
    Proto(String),
}

impl ClientError {
    /// The engine [`ErrorKind`] of a server-reported error, when the code
    /// is one ( `PROTO` and transport errors return `None`).
    pub fn kind(&self) -> Option<ErrorKind> {
        match self {
            ClientError::Server(e) => e.code.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
            ClientError::Proto(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A row set (`COLS`/`ROW`.../`END`).
    Rows(Rows),
    /// A single `OK <summary>` line.
    Ok(String),
    /// `STAT` lines folded into key/value pairs (from `STATS`).
    Stats(Vec<(String, u64)>),
}

/// A decoded row set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rows {
    /// Column names.
    pub columns: Vec<String>,
    /// Row values as decoded strings (the wire's canonical rendering, so
    /// comparing two `Rows` compares answers byte-for-byte).
    pub rows: Vec<Vec<String>>,
    /// Which layer answered: `fresh`, `plan-cache`, or `result-cache`.
    pub source: String,
    /// The catalog epoch the answer is valid for.
    pub epoch: u64,
}

/// Automatic-retry policy for errors the server answered with a
/// [retryable](ErrorKind::is_retryable) kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "never retry").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Cap on the per-retry backoff.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): capped
    /// exponential, scaled by a jitter factor in `[0.5, 1.0]` so a
    /// thundering herd of shed clients decorrelates.
    fn delay(&self, retry: u32, jitter: f64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16));
        exp.min(self.max_delay).mul_f64(0.5 + 0.5 * jitter)
    }
}

/// A cheap std-only jitter source in `[0.0, 1.0)`: a SplitMix64 step over
/// a clock-derived seed. Not statistically strong — it only needs to
/// decorrelate concurrent retry loops.
fn jitter01(salt: u64) -> f64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let mut z = nanos ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Builder for a [`Client`] with reconnect-and-retry behavior. Created by
/// [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    retry: Option<RetryPolicy>,
    read_timeout: Option<Duration>,
}

impl ClientBuilder {
    /// Use an explicit retry policy (the default is
    /// [`RetryPolicy::default`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Opt out of automatic retries: every server error surfaces to the
    /// caller on the first answer.
    pub fn no_retry(mut self) -> Self {
        self.retry = None;
        self
    }

    /// Set the socket read timeout applied to every (re)connection.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Connect.
    pub fn connect(self) -> Result<Client, ClientError> {
        let mut client = Client::connect(&self.addr)?;
        client.reconnect_addr = Some(self.addr);
        client.retry = self.retry;
        client.read_timeout = self.read_timeout;
        client.set_read_timeout(self.read_timeout)?;
        Ok(client)
    }
}

/// A blocking connection to a ConQuer server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Address to reconnect to on retry; only builder-made clients have
    /// one (plain [`Client::connect`] takes `impl ToSocketAddrs`, which
    /// cannot be stored).
    reconnect_addr: Option<String>,
    retry: Option<RetryPolicy>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connect to `addr` with no automatic retries (see
    /// [`Client::builder`] for the retrying variant).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            reconnect_addr: None,
            retry: None,
            read_timeout: None,
        })
    }

    /// A client that reconnects and retries requests shed with a
    /// [retryable](ErrorKind::is_retryable) error, with capped
    /// exponential backoff and jitter. Opt out with
    /// [`ClientBuilder::no_retry`].
    pub fn builder(addr: impl Into<String>) -> ClientBuilder {
        ClientBuilder {
            addr: addr.into(),
            retry: Some(RetryPolicy::default()),
            read_timeout: None,
        }
    }

    /// Set (or clear) the read timeout, so a hung server surfaces as an
    /// I/O error instead of blocking forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.read_timeout = timeout;
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one raw request line and parse the response, retrying (per
    /// the builder's [`RetryPolicy`]) when the server answers with a
    /// retryable error.
    pub fn request(&mut self, line: &str) -> Result<Response, ClientError> {
        let Some(policy) = self.retry else {
            return self.request_once(line);
        };
        let mut attempt = 1;
        loop {
            let err = match self.request_once(line) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let retryable = err.kind().is_some_and(|k| k.is_retryable());
            if !retryable || attempt >= policy.max_attempts.max(1) {
                return Err(err);
            }
            std::thread::sleep(policy.delay(attempt, jitter01(attempt as u64)));
            // The server closes shed connections after the error line;
            // reconnect before resending. A still-healthy connection is
            // replaced harmlessly.
            self.reconnect()?;
            attempt += 1;
        }
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let addr = self.reconnect_addr.as_deref().ok_or_else(|| {
            ClientError::Proto("cannot reconnect: client was not built with an address".into())
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// One request/response exchange, no retries.
    fn request_once(&mut self, line: &str) -> Result<Response, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `SQL <sql>` — auto-routed; queries return [`Response::Rows`],
    /// commands [`Response::Ok`].
    pub fn sql(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.request(&format!("SQL {}", sanitize(sql)))
    }

    /// `QUERY <sql>` — read-only; always rows on success.
    pub fn query(&mut self, sql: &str) -> Result<Rows, ClientError> {
        match self.request(&format!("QUERY {}", sanitize(sql)))? {
            Response::Rows(rows) => Ok(rows),
            other => Err(ClientError::Proto(format!(
                "QUERY answered without rows: {other:?}"
            ))),
        }
    }

    /// `EXEC <sql>` — any statement.
    pub fn exec(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.request(&format!("EXEC {}", sanitize(sql)))
    }

    /// `STATS` — the server's cache/admission counters.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.request("STATS")? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Proto(format!(
                "STATS answered unexpectedly: {other:?}"
            ))),
        }
    }

    /// `EPOCH` — the server's current catalog epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.request("EPOCH")? {
            Response::Ok(s) => s
                .parse()
                .map_err(|_| ClientError::Proto(format!("EPOCH answered {s:?}"))),
            other => Err(ClientError::Proto(format!(
                "EPOCH answered unexpectedly: {other:?}"
            ))),
        }
    }

    /// `PING` — liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("PING").map(|_| ())
    }

    /// `QUIT` — tell the server to close this connection.
    pub fn quit(&mut self) -> Result<(), ClientError> {
        self.request("QUIT").map(|_| ())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Proto(
                "server closed the connection mid-response".to_string(),
            ));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut stats = Vec::new();
        loop {
            let line = self.read_line()?;
            let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
            match tag {
                "OK" => {
                    return Ok(if stats.is_empty() {
                        Response::Ok(rest.to_string())
                    } else {
                        Response::Stats(stats)
                    });
                }
                "ERR" => return Err(parse_err(rest)),
                "STAT" => {
                    let (key, value) = rest
                        .split_once(' ')
                        .ok_or_else(|| ClientError::Proto(format!("bad STAT line: {line:?}")))?;
                    let value = value
                        .parse()
                        .map_err(|_| ClientError::Proto(format!("bad STAT value: {line:?}")))?;
                    stats.push((key.to_string(), value));
                }
                "COLS" => return self.read_rows(rest),
                other => {
                    return Err(ClientError::Proto(format!(
                        "unexpected response line tag {other:?}"
                    )))
                }
            }
        }
    }

    fn read_rows(&mut self, cols_payload: &str) -> Result<Response, ClientError> {
        let (ncols, names) = cols_payload.split_once(' ').unwrap_or((cols_payload, ""));
        let ncols: usize = ncols
            .parse()
            .map_err(|_| ClientError::Proto(format!("bad COLS count: {cols_payload:?}")))?;
        let columns = decode_fields(names).map_err(ClientError::Proto)?;
        if columns.len() != ncols {
            return Err(ClientError::Proto(format!(
                "COLS announced {ncols} columns but named {}",
                columns.len()
            )));
        }
        let mut rows = Vec::new();
        loop {
            let line = self.read_line()?;
            let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
            match tag {
                "ROW" => rows.push(decode_fields(rest).map_err(ClientError::Proto)?),
                "END" => {
                    let mut parts = rest.split(' ');
                    let nrows: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?;
                    let source = parts
                        .next()
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?
                        .to_string();
                    let epoch: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Proto(format!("bad END line: {line:?}")))?;
                    if nrows != rows.len() {
                        return Err(ClientError::Proto(format!(
                            "END announced {nrows} rows but {} arrived",
                            rows.len()
                        )));
                    }
                    return Ok(Response::Rows(Rows {
                        columns,
                        rows,
                        source,
                        epoch,
                    }));
                }
                "ERR" => return Err(parse_err(rest)),
                other => {
                    return Err(ClientError::Proto(format!(
                        "unexpected line tag {other:?} inside a row set"
                    )))
                }
            }
        }
    }
}

/// Requests are single lines; fold any embedded newlines in user SQL into
/// spaces (SQL is whitespace-insensitive) so multi-line statements from
/// scripts still travel.
fn sanitize(sql: &str) -> String {
    if sql.contains(['\n', '\r']) {
        sql.replace(['\n', '\r'], " ")
    } else {
        sql.to_string()
    }
}

fn parse_err(payload: &str) -> ClientError {
    let (code, message) = payload.split_once(' ').unwrap_or((payload, ""));
    ClientError::Server(ServerError {
        code: code.to_string(),
        message: unescape(message).unwrap_or_else(|_| message.to_string()),
    })
}

/// Render a row set back into canonical wire form (one string per row,
/// escaped and tab-separated). Two answers are byte-identical iff their
/// wire forms are equal — this is what the smoke test and bench compare.
pub fn wire_form(rows: &Rows) -> Vec<String> {
    rows.rows
        .iter()
        .map(|row| row.iter().map(|v| escape(v)).collect::<Vec<_>>().join("\t"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_error_kinds_parse() {
        let err = parse_err("OVERLOADED server overloaded: 4 queries running");
        match &err {
            ClientError::Server(e) => {
                assert_eq!(e.code, "OVERLOADED");
                assert!(e.message.starts_with("server overloaded"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(err.kind(), Some(ErrorKind::Overloaded));
        assert_eq!(parse_err("PROTO bad verb").kind(), None);
    }

    #[test]
    fn sanitize_folds_newlines() {
        assert_eq!(sanitize("SELECT 1"), "SELECT 1");
        assert_eq!(sanitize("SELECT\n  1\r\n"), "SELECT   1  ");
    }

    #[test]
    fn retry_backoff_is_capped_exponential_with_bounded_jitter() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
        };
        // Full jitter factor: exact exponential, then the cap.
        assert_eq!(p.delay(1, 1.0), Duration::from_millis(10));
        assert_eq!(p.delay(2, 1.0), Duration::from_millis(20));
        assert_eq!(p.delay(3, 1.0), Duration::from_millis(40));
        assert_eq!(p.delay(5, 1.0), Duration::from_millis(100), "capped");
        assert_eq!(p.delay(30, 1.0), Duration::from_millis(100), "no overflow");
        // Minimum jitter halves the delay, never zeroes it.
        assert_eq!(p.delay(1, 0.0), Duration::from_millis(5));
        for salt in 0..64 {
            let j = jitter01(salt);
            assert!((0.0..1.0).contains(&j), "{j}");
        }
    }
}
