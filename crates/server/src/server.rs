//! The network server: a thread-per-connection accept loop serving the
//! [wire protocol](crate::proto) over one [`SharedDatabase`].
//!
//! Every connection gets its own [`Session`] — its own resource limits
//! and cancellation state — while all connections share the catalog,
//! the prepared-plan and result caches, and the admission gate. A
//! connection over the `max_conn` cap is answered with a single
//! `ERR OVERLOADED` line and closed; query-level overload (the admission
//! gate shedding) surfaces per request the same way, so a flooded server
//! degrades into typed errors instead of hangs.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use conquer_engine::{
    EngineError, ExecLimits, ExecOutcome, Session, SessionOutcome, SessionResult, SharedDatabase,
};

use crate::proto::{encode_row, engine_err_line, err_line, escape, Request, PROTO_CODE};

/// Server configuration. `#[non_exhaustive]` — start from
/// [`ServerConfig::default`] or [`ServerConfig::from_env`] and adjust
/// fields.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to listen on. Use port `0` to let the OS pick (the bound
    /// address is available via [`Server::local_addr`]).
    pub addr: String,
    /// Connections served concurrently; arrivals past the cap get one
    /// `ERR OVERLOADED` line and are closed.
    pub max_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            max_conn: 64,
        }
    }
}

impl ServerConfig {
    /// Configuration from the environment, falling back to the defaults:
    /// `CONQUER_ADDR` (listen address) and `CONQUER_MAX_CONN`
    /// (concurrent-connection cap).
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("CONQUER_ADDR") {
            if !addr.trim().is_empty() {
                cfg.addr = addr.trim().to_string();
            }
        }
        if let Some(n) = std::env::var("CONQUER_MAX_CONN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            cfg.max_conn = n.max(1);
        }
        cfg
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: SharedDatabase,
    max_conn: usize,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server spawned on a background thread; dropping it does
/// *not* stop the server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already being served finish their current request and close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

impl Server {
    /// Bind to `config.addr` without accepting yet.
    pub fn bind(shared: SharedDatabase, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared,
            max_conn: config.max_conn.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address this server is bound to.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections on the calling thread until shut down (via the
    /// flag a [`ServerHandle`] holds) or the listener fails.
    pub fn run(self) -> std::io::Result<()> {
        let conns = Arc::new(AtomicUsize::new(0));
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if conns.load(Ordering::Acquire) >= self.max_conn {
                shed_connection(stream, &self.shared);
                continue;
            }
            conns.fetch_add(1, Ordering::AcqRel);
            let session = self.shared.session();
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &session);
                conns.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    }

    /// Serve on a background thread, returning a handle with the bound
    /// address and a shutdown switch.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Answer an over-cap connection with one typed error line and close it.
fn shed_connection(stream: TcpStream, shared: &SharedDatabase) {
    let gate = shared.admission();
    let err = EngineError::Overloaded {
        running: gate.running(),
        queued: gate.queued(),
        max_queue: shared.config().max_queue,
    };
    let mut w = BufWriter::new(stream);
    let _ = writeln!(w, "{}", engine_err_line(&err));
    let _ = w.flush();
}

/// Serve one connection: read request lines, write response lines, until
/// `QUIT`, EOF, or an I/O error.
fn serve_connection(stream: TcpStream, session: &Session) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let request = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                writeln!(writer, "{}", err_line(PROTO_CODE, &msg))?;
                writer.flush()?;
                continue;
            }
        };
        let quit = matches!(request, Request::Quit);
        respond(&mut writer, session, request)?;
        writer.flush()?;
        if quit {
            return Ok(());
        }
    }
}

/// Execute one parsed request and write its full response.
fn respond(w: &mut impl Write, session: &Session, request: Request) -> std::io::Result<()> {
    match request {
        Request::Sql(sql) => match session.run_sql(&sql) {
            Ok(SessionOutcome::Rows(r)) => write_rows(w, &r),
            Ok(SessionOutcome::Done(outcome)) => writeln!(w, "OK {}", summarize(&outcome)),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Query(sql) => match session.query(&sql) {
            Ok(r) => write_rows(w, &r),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Exec(sql) => match session.execute(&sql) {
            Ok(ExecOutcome::Rows(r)) => {
                let epoch = session.shared().epoch();
                write_raw_rows(w, &r.columns, &r.rows, "fresh", epoch)
            }
            Ok(outcome) => writeln!(w, "OK {}", summarize(&outcome)),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Limit(arg) => match apply_limit(session, &arg) {
            Ok(summary) => writeln!(w, "OK {summary}"),
            Err(msg) => writeln!(w, "{}", err_line(PROTO_CODE, &msg)),
        },
        Request::Stats => {
            let stats = session.shared().stats();
            let gate = session.shared().admission();
            for (key, value) in [
                ("epoch", stats.epoch),
                ("result_hits", stats.result_hits),
                ("result_misses", stats.result_misses),
                ("result_entries", stats.result_entries as u64),
                ("plan_hits", stats.plan_hits),
                ("plan_misses", stats.plan_misses),
                ("plan_entries", stats.plan_entries as u64),
                ("evictions", stats.evictions),
                ("admitted", stats.admitted),
                ("shed", stats.shed),
                ("running", gate.running() as u64),
                ("queued", gate.queued() as u64),
            ] {
                writeln!(w, "STAT {key} {value}")?;
            }
            writeln!(w, "OK stats")
        }
        Request::Epoch => writeln!(w, "OK {}", session.shared().epoch()),
        Request::Ping => writeln!(w, "OK pong"),
        Request::Quit => writeln!(w, "OK bye"),
    }
}

fn write_rows(w: &mut impl Write, r: &SessionResult) -> std::io::Result<()> {
    write_raw_rows(
        w,
        &r.result.columns,
        &r.result.rows,
        r.source.as_str(),
        r.epoch,
    )
}

fn write_raw_rows(
    w: &mut impl Write,
    columns: &[String],
    rows: &[Vec<conquer_storage::Value>],
    source: &str,
    epoch: u64,
) -> std::io::Result<()> {
    let names = columns
        .iter()
        .map(|c| escape(c))
        .collect::<Vec<_>>()
        .join("\t");
    writeln!(w, "COLS {} {names}", columns.len())?;
    for row in rows {
        writeln!(w, "ROW {}", encode_row(row))?;
    }
    writeln!(w, "END {} {source} {epoch}", rows.len())
}

fn summarize(outcome: &ExecOutcome) -> String {
    match outcome {
        ExecOutcome::Created => "created".to_string(),
        ExecOutcome::Inserted(n) => format!("inserted {n}"),
        ExecOutcome::Dropped => "dropped".to_string(),
        ExecOutcome::Deleted(n) => format!("deleted {n}"),
        ExecOutcome::Updated(n) => format!("updated {n}"),
        ExecOutcome::Rows(r) => format!("rows {}", r.len()),
    }
}

/// Apply a `LIMIT` request to the session. Empty argument = show current
/// limits; `off` clears them; `mem|disk <bytes>`, `time <ms>`,
/// `threads <n>` set one budget.
fn apply_limit(session: &Session, arg: &str) -> Result<String, String> {
    let arg = arg.trim();
    if arg.is_empty() {
        return Ok(describe_limits(&session.limits()));
    }
    if arg.eq_ignore_ascii_case("off") {
        session.set_limits(ExecLimits::none());
        return Ok(describe_limits(&ExecLimits::none()));
    }
    let (what, value) = arg
        .split_once(' ')
        .ok_or_else(|| format!("LIMIT expects `<what> <n>` or `off`, got {arg:?}"))?;
    let n: u64 = value
        .trim()
        .parse()
        .map_err(|_| format!("LIMIT value must be a non-negative integer, got {value:?}"))?;
    let mut limits = session.limits();
    match what.to_ascii_lowercase().as_str() {
        "mem" => limits.mem_bytes = Some(n),
        "disk" => limits.disk_bytes = Some(n),
        "time" => limits.timeout = Some(Duration::from_millis(n)),
        "threads" => limits.threads = Some((n as usize).max(1)),
        other => return Err(format!("unknown LIMIT target {other:?}")),
    }
    session.set_limits(limits);
    Ok(describe_limits(&limits))
}

fn describe_limits(limits: &ExecLimits) -> String {
    let opt = |v: Option<u64>| v.map_or("off".to_string(), |n| n.to_string());
    format!(
        "mem={} disk={} time_ms={} threads={}",
        opt(limits.mem_bytes),
        opt(limits.disk_bytes),
        opt(limits.timeout.map(|t| t.as_millis() as u64)),
        limits.threads.map_or("auto".to_string(), |n| n.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_parses_and_describes() {
        let shared = SharedDatabase::new(conquer_engine::Database::new());
        let session = shared.session();
        assert_eq!(
            apply_limit(&session, "").unwrap(),
            "mem=off disk=off time_ms=off threads=auto"
        );
        apply_limit(&session, "mem 1024").unwrap();
        apply_limit(&session, "time 250").unwrap();
        let shown = apply_limit(&session, "").unwrap();
        assert_eq!(shown, "mem=1024 disk=off time_ms=250 threads=auto");
        assert_eq!(session.limits().timeout, Some(Duration::from_millis(250)));
        apply_limit(&session, "off").unwrap();
        assert!(session.limits().is_unlimited());
        assert!(apply_limit(&session, "mem lots").is_err());
        assert!(apply_limit(&session, "bogus 1").is_err());
    }

    #[test]
    fn exec_outcomes_summarize() {
        assert_eq!(summarize(&ExecOutcome::Inserted(3)), "inserted 3");
        assert_eq!(summarize(&ExecOutcome::Created), "created");
    }
}
