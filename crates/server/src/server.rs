//! The network server: a thread-per-connection accept loop serving the
//! [wire protocol](crate::proto) over one [`SharedDatabase`].
//!
//! Every connection gets its own [`Session`] — its own resource limits
//! and cancellation state — while all connections share the catalog,
//! the prepared-plan and result caches, and the admission gate. A
//! connection over the `max_conn` cap is answered with a single
//! `ERR OVERLOADED` line and closed; query-level overload (the admission
//! gate shedding) surfaces per request the same way, so a flooded server
//! degrades into typed errors instead of hangs.
//!
//! Sockets carry read/write timeouts: a connection idle past
//! `idle_timeout` is reaped with one `ERR TIMEOUT` line instead of
//! pinning a thread forever. Shutdown is graceful — in-flight requests
//! drain up to a `grace` deadline while every new request (and new
//! connection) is answered with the typed `ERR SHUTDOWN` line, never a
//! silently dropped socket.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use conquer_engine::{
    EngineError, ExecLimits, ExecOutcome, Session, SessionOutcome, SessionResult, SharedDatabase,
};

use crate::proto::{encode_row, engine_err_line, err_line, escape, Request, PROTO_CODE};

/// Server configuration. `#[non_exhaustive]` — start from
/// [`ServerConfig::default`] or [`ServerConfig::from_env`] and adjust
/// fields.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to listen on. Use port `0` to let the OS pick (the bound
    /// address is available via [`Server::local_addr`]).
    pub addr: String,
    /// Connections served concurrently; arrivals past the cap get one
    /// `ERR OVERLOADED` line and are closed.
    pub max_conn: usize,
    /// Socket read/write timeout; a connection idle this long is reaped
    /// with one `ERR TIMEOUT` line and closed. `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests
    /// to drain before giving up on them.
    pub grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            max_conn: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            grace: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Configuration from the environment, falling back to the defaults:
    /// `CONQUER_ADDR` (listen address), `CONQUER_MAX_CONN`
    /// (concurrent-connection cap), `CONQUER_IDLE_MS` (idle-connection
    /// reap timeout in milliseconds, `0` disables), and
    /// `CONQUER_GRACE_MS` (shutdown drain deadline in milliseconds).
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("CONQUER_ADDR") {
            if !addr.trim().is_empty() {
                cfg.addr = addr.trim().to_string();
            }
        }
        if let Some(n) = std::env::var("CONQUER_MAX_CONN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            cfg.max_conn = n.max(1);
        }
        if let Some(ms) = std::env::var("CONQUER_IDLE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            cfg.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(ms) = std::env::var("CONQUER_GRACE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            cfg.grace = Duration::from_millis(ms);
        }
        cfg
    }
}

/// State shared between the accept loop, the connection threads, and the
/// [`ServerHandle`]: the hard-stop flag, the draining flag, and the count
/// of requests currently executing.
#[derive(Debug, Default)]
struct Lifecycle {
    shutdown: AtomicBool,
    draining: AtomicBool,
    inflight: AtomicUsize,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: SharedDatabase,
    max_conn: usize,
    idle_timeout: Option<Duration>,
    grace: Duration,
    lifecycle: Arc<Lifecycle>,
}

/// Handle to a server spawned on a background thread; dropping it does
/// *not* stop the server — call [`ServerHandle::shutdown`].
#[must_use = "keep the handle and call shutdown(); dropping it leaks the server thread"]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    lifecycle: Arc<Lifecycle>,
    grace: Duration,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Gracefully stop the server with the configured grace period: stop
    /// taking new work (every new request or connection is answered with
    /// the typed `ERR SHUTDOWN` line), wait for in-flight requests to
    /// drain, then close the listener and join the accept thread.
    pub fn shutdown(mut self) {
        let grace = self.grace;
        self.stop(grace);
    }

    /// [`ServerHandle::shutdown`] with an explicit drain deadline.
    pub fn shutdown_within(mut self, grace: Duration) {
        self.stop(grace);
    }

    fn stop(&mut self, grace: Duration) {
        self.lifecycle.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + grace;
        while self.lifecycle.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.lifecycle.shutdown.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            let grace = self.grace;
            self.stop(grace);
        }
    }
}

impl Server {
    /// Bind to `config.addr` without accepting yet.
    pub fn bind(shared: SharedDatabase, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared,
            max_conn: config.max_conn.max(1),
            idle_timeout: config.idle_timeout,
            grace: config.grace,
            lifecycle: Arc::new(Lifecycle::default()),
        })
    }

    /// The address this server is bound to.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections on the calling thread until shut down (via the
    /// flags a [`ServerHandle`] holds) or the listener fails.
    pub fn run(self) -> std::io::Result<()> {
        let conns = Arc::new(AtomicUsize::new(0));
        for stream in self.listener.incoming() {
            if self.lifecycle.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if self.lifecycle.draining.load(Ordering::Acquire) {
                refuse_connection(stream, &EngineError::Shutdown);
                continue;
            }
            if conns.load(Ordering::Acquire) >= self.max_conn {
                let gate = self.shared.admission();
                refuse_connection(
                    stream,
                    &EngineError::Overloaded {
                        running: gate.running(),
                        queued: gate.queued(),
                        max_queue: self.shared.config().max_queue,
                    },
                );
                continue;
            }
            // Timeouts cover both directions so neither a silent client
            // nor a stalled write can pin this connection's thread.
            let _ = stream.set_read_timeout(self.idle_timeout);
            let _ = stream.set_write_timeout(self.idle_timeout);
            conns.fetch_add(1, Ordering::AcqRel);
            let session = self.shared.session();
            let conns = Arc::clone(&conns);
            let lifecycle = Arc::clone(&self.lifecycle);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &session, &lifecycle);
                conns.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    }

    /// Serve on a background thread, returning a handle with the bound
    /// address and a shutdown switch.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let lifecycle = Arc::clone(&self.lifecycle);
        let grace = self.grace;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            lifecycle,
            grace,
            thread: Some(thread),
        })
    }
}

/// Answer a connection the server will not serve (over the cap, or
/// draining) with one typed error line and close it.
fn refuse_connection(stream: TcpStream, err: &EngineError) {
    let mut w = BufWriter::new(stream);
    let _ = writeln!(w, "{}", engine_err_line(err));
    let _ = w.flush();
}

/// Serve one connection: read request lines, write response lines, until
/// `QUIT`, EOF, idle timeout, shutdown, or an I/O error.
fn serve_connection(
    stream: TcpStream,
    session: &Session,
    lifecycle: &Lifecycle,
) -> std::io::Result<()> {
    // Connection threads block on socket reads for up to the idle
    // timeout; the analyzer asserts no ranked lock is ever held here
    // (session locks are scoped inside the per-request calls below).
    let _io = conquer_sync::blocking_region("server::connection-io");
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle past the socket timeout: reap with a typed line
                // instead of holding the thread.
                let _ = writeln!(
                    writer,
                    "{}",
                    engine_err_line(&EngineError::Timeout {
                        limit: Duration::ZERO,
                    })
                );
                let _ = writer.flush();
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        if lifecycle.draining.load(Ordering::Acquire) {
            // Draining: answer (don't drop the socket), then close.
            writeln!(writer, "{}", engine_err_line(&EngineError::Shutdown))?;
            writer.flush()?;
            return Ok(());
        }
        let request = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                writeln!(writer, "{}", err_line(PROTO_CODE, &msg))?;
                writer.flush()?;
                continue;
            }
        };
        let quit = matches!(request, Request::Quit);
        lifecycle.inflight.fetch_add(1, Ordering::AcqRel);
        let result = respond(&mut writer, session, request);
        lifecycle.inflight.fetch_sub(1, Ordering::AcqRel);
        result?;
        writer.flush()?;
        if quit {
            return Ok(());
        }
    }
}

/// Execute one parsed request and write its full response.
fn respond(w: &mut impl Write, session: &Session, request: Request) -> std::io::Result<()> {
    match request {
        Request::Sql(sql) => match session.run_sql(&sql) {
            Ok(SessionOutcome::Rows(r)) => write_rows(w, &r),
            Ok(SessionOutcome::Done(outcome)) => writeln!(w, "OK {}", summarize(&outcome)),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Query(sql) => match session.query(&sql) {
            Ok(r) => write_rows(w, &r),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Exec(sql) => match session.execute(&sql) {
            Ok(ExecOutcome::Rows(r)) => {
                let epoch = session.shared().epoch();
                write_raw_rows(w, &r.columns, &r.rows, "fresh", epoch)
            }
            Ok(outcome) => writeln!(w, "OK {}", summarize(&outcome)),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Limit(arg) => match apply_limit(session, &arg) {
            Ok(summary) => writeln!(w, "OK {summary}"),
            Err(msg) => writeln!(w, "{}", err_line(PROTO_CODE, &msg)),
        },
        Request::Stats => {
            let stats = session.shared().stats();
            let gate = session.shared().admission();
            for (key, value) in [
                ("epoch", stats.epoch),
                ("result_hits", stats.result_hits),
                ("result_misses", stats.result_misses),
                ("result_entries", stats.result_entries as u64),
                ("plan_hits", stats.plan_hits),
                ("plan_misses", stats.plan_misses),
                ("plan_entries", stats.plan_entries as u64),
                ("evictions", stats.evictions),
                ("admitted", stats.admitted),
                ("shed", stats.shed),
                ("wal_commits", stats.wal_commits),
                ("checkpoints", stats.checkpoints),
                ("io_errors", stats.io_errors),
                ("fsync_failures", stats.fsync_failures),
                ("scrub_runs", stats.scrub_runs),
                ("corrupt_frames", stats.corrupt_frames),
                ("degraded", stats.degraded as u64),
                ("running", gate.running() as u64),
                ("queued", gate.queued() as u64),
                ("views", stats.views as u64),
                ("view_rows", stats.view_rows as u64),
                ("view_deltas_applied", stats.view_deltas_applied),
                ("view_refreshes", stats.view_refreshes),
            ] {
                writeln!(w, "STAT {key} {value}")?;
            }
            for v in session.shared().view_stats() {
                writeln!(w, "STAT view.{}.rows {}", v.name, v.rows)?;
                writeln!(
                    w,
                    "STAT view.{}.deltas_applied {}",
                    v.name, v.deltas_applied
                )?;
                writeln!(w, "STAT view.{}.refreshes {}", v.name, v.refreshes)?;
            }
            writeln!(w, "OK stats")
        }
        Request::Epoch => writeln!(w, "OK {}", session.shared().epoch()),
        Request::Checkpoint => match session.shared().checkpoint() {
            Ok(Some(info)) => writeln!(
                w,
                "OK checkpoint epoch {} folded {} bytes",
                info.epoch, info.wal_bytes_folded
            ),
            Ok(None) => writeln!(w, "OK checkpoint noop (in-memory database)"),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Scrub => match session.shared().scrub() {
            Ok(Some(report)) => {
                writeln!(w, "STAT clean {}", report.clean)?;
                writeln!(w, "STAT corrupt {}", report.corrupt)?;
                writeln!(w, "STAT quarantined {}", report.quarantined)?;
                writeln!(w, "STAT wal_corrupt_frames {}", report.wal_corrupt_frames)?;
                writeln!(w, "STAT issues {}", report.issues.len())?;
                // Issue text goes in the OK summary (STAT values are
                // numeric on the wire); one line keeps it parseable.
                if report.is_clean() {
                    writeln!(w, "OK scrub clean")
                } else {
                    let first = report.issues.first().map_or("", String::as_str);
                    writeln!(
                        w,
                        "OK scrub found corruption ({}); writes refused until a checkpoint repairs it",
                        escape(first)
                    )
                }
            }
            Ok(None) => writeln!(w, "OK scrub noop (in-memory database)"),
            Err(e) => writeln!(w, "{}", engine_err_line(&e)),
        },
        Request::Ping => writeln!(w, "OK pong"),
        Request::Quit => writeln!(w, "OK bye"),
    }
}

fn write_rows(w: &mut impl Write, r: &SessionResult) -> std::io::Result<()> {
    write_raw_rows(
        w,
        &r.result.columns,
        &r.result.rows,
        r.source.as_str(),
        r.epoch,
    )
}

fn write_raw_rows(
    w: &mut impl Write,
    columns: &[String],
    rows: &[Vec<conquer_storage::Value>],
    source: &str,
    epoch: u64,
) -> std::io::Result<()> {
    let names = columns
        .iter()
        .map(|c| escape(c))
        .collect::<Vec<_>>()
        .join("\t");
    writeln!(w, "COLS {} {names}", columns.len())?;
    for row in rows {
        writeln!(w, "ROW {}", encode_row(row))?;
    }
    writeln!(w, "END {} {source} {epoch}", rows.len())
}

fn summarize(outcome: &ExecOutcome) -> String {
    match outcome {
        ExecOutcome::Created => "created".to_string(),
        ExecOutcome::Inserted(n) => format!("inserted {n}"),
        ExecOutcome::Dropped => "dropped".to_string(),
        ExecOutcome::Deleted(n) => format!("deleted {n}"),
        ExecOutcome::Updated(n) => format!("updated {n}"),
        ExecOutcome::Rows(r) => format!("rows {}", r.len()),
        ExecOutcome::CreatedView(n) => format!("created view ({n} groups)"),
        ExecOutcome::DroppedView => "dropped view".to_string(),
        ExecOutcome::RefreshedView(n) => format!("refreshed view ({n} groups)"),
        ExecOutcome::Reclustered(n) => format!("reclustered {n}"),
        ExecOutcome::Reannotated(n) => format!("reannotated {n}"),
        ExecOutcome::CrossrefApplied(n) => format!("crossref applied ({n} clusters)"),
    }
}

/// Apply a `LIMIT` request to the session. Empty argument = show current
/// limits; `off` clears them; `mem|disk <bytes>`, `time <ms>`,
/// `threads <n>` set one budget.
fn apply_limit(session: &Session, arg: &str) -> Result<String, String> {
    let arg = arg.trim();
    if arg.is_empty() {
        return Ok(describe_limits(&session.limits()));
    }
    if arg.eq_ignore_ascii_case("off") {
        session.set_limits(ExecLimits::none());
        return Ok(describe_limits(&ExecLimits::none()));
    }
    let (what, value) = arg
        .split_once(' ')
        .ok_or_else(|| format!("LIMIT expects `<what> <n>` or `off`, got {arg:?}"))?;
    let n: u64 = value
        .trim()
        .parse()
        .map_err(|_| format!("LIMIT value must be a non-negative integer, got {value:?}"))?;
    let mut limits = session.limits();
    match what.to_ascii_lowercase().as_str() {
        "mem" => limits.mem_bytes = Some(n),
        "disk" => limits.disk_bytes = Some(n),
        "time" => limits.timeout = Some(Duration::from_millis(n)),
        "threads" => limits.threads = Some((n as usize).max(1)),
        other => return Err(format!("unknown LIMIT target {other:?}")),
    }
    session.set_limits(limits);
    Ok(describe_limits(&limits))
}

fn describe_limits(limits: &ExecLimits) -> String {
    let opt = |v: Option<u64>| v.map_or("off".to_string(), |n| n.to_string());
    format!(
        "mem={} disk={} time_ms={} threads={}",
        opt(limits.mem_bytes),
        opt(limits.disk_bytes),
        opt(limits.timeout.map(|t| t.as_millis() as u64)),
        limits.threads.map_or("auto".to_string(), |n| n.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_parses_and_describes() {
        let shared = SharedDatabase::new(conquer_engine::Database::new());
        let session = shared.session();
        assert_eq!(
            apply_limit(&session, "").unwrap(),
            "mem=off disk=off time_ms=off threads=auto"
        );
        apply_limit(&session, "mem 1024").unwrap();
        apply_limit(&session, "time 250").unwrap();
        let shown = apply_limit(&session, "").unwrap();
        assert_eq!(shown, "mem=1024 disk=off time_ms=250 threads=auto");
        assert_eq!(session.limits().timeout, Some(Duration::from_millis(250)));
        apply_limit(&session, "off").unwrap();
        assert!(session.limits().is_unlimited());
        assert!(apply_limit(&session, "mem lots").is_err());
        assert!(apply_limit(&session, "bogus 1").is_err());
    }

    #[test]
    fn exec_outcomes_summarize() {
        assert_eq!(summarize(&ExecOutcome::Inserted(3)), "inserted 3");
        assert_eq!(summarize(&ExecOutcome::Created), "created");
    }
}
