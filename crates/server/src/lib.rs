//! Multi-client network front-end for the ConQuer engine.
//!
//! Three layers, one per module:
//!
//! * [`proto`] — the line-oriented wire protocol: request/response
//!   grammar, field escaping, stable error codes.
//! * [`server`] — a thread-per-connection TCP server over one
//!   [`SharedDatabase`](conquer_engine::SharedDatabase): every connection
//!   gets its own [`Session`](conquer_engine::Session), all connections
//!   share the catalog, the prepared-plan and clean-answer result caches,
//!   and the admission gate.
//! * [`client`] — a blocking client used by the CLI's `--connect` mode,
//!   the concurrency bench, and the smoke tests.
//!
//! The concurrency semantics (catalog epochs, cache invalidation,
//! load-shedding) live in the engine's `shared` module; this crate only
//! puts them on the network.
//!
//! ```no_run
//! use conquer_engine::{Database, SharedDatabase};
//! use conquer_server::{Client, Server, ServerConfig};
//!
//! let mut config = ServerConfig::default();
//! config.addr = "127.0.0.1:0".to_string(); // let the OS pick a port
//! let server = Server::bind(SharedDatabase::new(Database::new()), &config).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.exec("CREATE TABLE t (a INTEGER)").unwrap();
//! client.exec("INSERT INTO t VALUES (1), (2)").unwrap();
//! let rows = client.query("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(rows.rows, vec![vec!["2".to_string()]]);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientBuilder, ClientError, Response, RetryPolicy, Rows, ServerError};
pub use server::{Server, ServerConfig, ServerHandle};
