//! On-demand checksum scrubbing.
//!
//! [`scrub`] sweeps a durable directory without mutating it: every file of
//! the committed epoch is re-read and verified against the manifest
//! (size + FNV-1a checksum), the write-ahead log is re-scanned frame by
//! frame, and leftover state that recovery would set aside — orphaned
//! epochs, stale temp directories, spill directories — is counted as
//! quarantined. The result is a typed [`ScrubReport`]; nothing panics on
//! corruption, and nothing is deleted (live queries may own spill
//! directories, and a corrupt file is evidence worth keeping until a
//! checkpoint rewrites it).
//!
//! The engine surfaces this through `SharedDatabase::scrub()`, the `SCRUB`
//! wire verb, and the CLI's `\scrub`; a scrub that finds corruption flips
//! the durable handle into degraded mode (reads ok, writes refused) until
//! a checkpoint repairs the directory or a clean scrub clears it.

use std::path::Path;

use crate::error::StorageError;
use crate::persist::{self, CURRENT_FILE, MANIFEST_FILE};
use crate::vfs;
use crate::wal;

/// What a [`scrub`] sweep found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[must_use = "a scrub that found corruption needs acting on"]
pub struct ScrubReport {
    /// Files and WAL frame groups that verified clean.
    pub clean: u64,
    /// Files or WAL frames whose checksum/size verification failed.
    pub corrupt: u64,
    /// Suspect state set aside rather than trusted or deleted: orphaned
    /// epochs, stale temp directories/files, spill directories (which may
    /// belong to a live query or a dead one — the scrub cannot tell).
    pub quarantined: u64,
    /// The subset of `corrupt` found in the write-ahead log.
    pub wal_corrupt_frames: u64,
    /// Human-readable descriptions of everything corrupt or quarantined,
    /// plus any accumulated best-effort IO failure notes.
    pub issues: Vec<String>,
}

impl ScrubReport {
    /// True when nothing was corrupt (quarantined leftovers are normal
    /// operational debris and do not make a scrub dirty).
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0
    }
}

/// Checksum-sweep the durable directory `dir`. Read-only: corruption is
/// reported, never "repaired" in place, and leftovers are counted, never
/// deleted. Callers must hold whatever lock serializes writers (a
/// concurrent checkpoint would rename files mid-sweep).
pub fn scrub(dir: &Path) -> Result<ScrubReport, StorageError> {
    let _io = conquer_sync::blocking_region("storage::scrub");
    let mut report = ScrubReport::default();

    // 1. The committed epoch: verify every manifest entry byte-for-byte.
    let current = persist::read_current(dir);
    if let Some(epoch) = &current {
        verify_epoch(&dir.join(epoch), &mut report);
    } else if vfs::exists(&dir.join(CURRENT_FILE)) {
        report.corrupt += 1;
        report
            .issues
            .push("CURRENT exists but names no epoch".to_string());
    }

    // 2. The write-ahead log, frame by frame. A tear here is corruption:
    //    scrubs run on quiesced directories, where `Wal::open` has already
    //    truncated any crash-torn tail.
    match wal::read_wal(dir)? {
        None => {}
        Some(contents) => {
            report.clean += contents.commits.len() as u64 + 1;
            if let Some(torn) = &contents.torn {
                report.corrupt += 1;
                report.wal_corrupt_frames += 1;
                report.issues.push(format!("wal.log: {torn}"));
            }
        }
    }

    // 3. Leftovers recovery would set aside: orphaned (uncommitted)
    //    epochs, stale save/truncation temps, spill directories.
    for name in persist::list_epoch_dirs(dir) {
        if Some(&name) != current.as_ref() {
            report.quarantined += 1;
            report
                .issues
                .push(format!("orphaned epoch (not committed): {name}"));
        }
    }
    for name in persist::list_tmp_dirs(dir) {
        report.quarantined += 1;
        report.issues.push(format!(
            "stale temp directory from an interrupted save: {name}"
        ));
    }
    for name in wal::list_wal_tmp_files(dir) {
        report.quarantined += 1;
        report.issues.push(format!(
            "stale WAL temp file from an interrupted checkpoint: {name}"
        ));
    }
    for name in crate::spill::list_spill_dirs(dir) {
        report.quarantined += 1;
        report.issues.push(format!(
            "spill directory (live query or interrupted one): {name}"
        ));
    }

    // 4. Fold in any accumulated best-effort IO failure notes so they
    //    surface somewhere visible.
    for note in vfs::drain_issues() {
        report.issues.push(format!("io: {note}"));
    }
    Ok(report)
}

/// Verify one epoch directory against its manifest, counting per-file
/// results into `report`.
fn verify_epoch(epoch_dir: &Path, report: &mut ScrubReport) {
    let manifest_path = epoch_dir.join(MANIFEST_FILE);
    let text = match vfs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            report.corrupt += 1;
            report.issues.push(format!(
                "{}: cannot read manifest: {e}",
                manifest_path.display()
            ));
            return;
        }
    };
    let mut lines = text.lines();
    if lines.next() != Some(persist::MANIFEST_HEADER) {
        report.corrupt += 1;
        report
            .issues
            .push(format!("{}: bad manifest header", manifest_path.display()));
        return;
    }
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (Some(sum), Some(size), Some(name)) = (parts.next(), parts.next(), parts.next()) else {
            report.corrupt += 1;
            report.issues.push(format!(
                "{}: malformed manifest line {line:?}",
                manifest_path.display()
            ));
            continue;
        };
        let expected_sum = sum
            .strip_prefix("fnv1a64:")
            .and_then(|h| u64::from_str_radix(h, 16).ok());
        let expected_size: Option<u64> = size.parse().ok();
        let (Some(expected_sum), Some(expected_size)) = (expected_sum, expected_size) else {
            report.corrupt += 1;
            report.issues.push(format!(
                "{}: malformed manifest line {line:?}",
                manifest_path.display()
            ));
            continue;
        };
        let file_path = epoch_dir.join(name);
        let bytes = match vfs::read(&file_path) {
            Ok(b) => b,
            Err(e) => {
                report.corrupt += 1;
                report.issues.push(format!(
                    "{}: listed in manifest but unreadable: {e}",
                    file_path.display()
                ));
                continue;
            }
        };
        if bytes.len() as u64 != expected_size {
            report.corrupt += 1;
            report.issues.push(format!(
                "{}: size mismatch (manifest {expected_size}, file {})",
                file_path.display(),
                bytes.len()
            ));
        } else if persist::fnv1a64(&bytes) != expected_sum {
            report.corrupt += 1;
            report.issues.push(format!(
                "{}: checksum mismatch against manifest",
                file_path.display()
            ));
        } else {
            report.clean += 1;
        }
    }
}
