//! A minimal calendar date type.
//!
//! TPC-H workloads filter and sort on dates, so the engine needs a real date
//! type with correct calendar arithmetic. [`Date`] stores the number of days
//! since the Unix epoch (1970-01-01) and converts to and from civil
//! `YYYY-MM-DD` form using the classic days-from-civil algorithm, which is
//! exact over the full proleptic Gregorian calendar.

use std::fmt;
use std::str::FromStr;

/// A calendar date, stored as days since 1970-01-01.
///
/// `Date` is `Copy`, totally ordered, and hashable, so it can be used
/// directly as a join/group/sort key.
///
/// ```
/// use conquer_storage::Date;
/// let d: Date = "1995-03-15".parse().unwrap();
/// assert_eq!(d.to_string(), "1995-03-15");
/// assert!(d < "1995-03-16".parse().unwrap());
/// assert_eq!(d.add_days(1).to_string(), "1995-03-16");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

impl Date {
    /// Construct from a raw day count since the epoch.
    pub const fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// The raw day count since 1970-01-01.
    pub const fn days(self) -> i32 {
        self.0
    }

    /// Construct from a civil (year, month, day) triple.
    ///
    /// Returns `None` for out-of-range months or days (including
    /// month-length and leap-year violations).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day < 1 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date(days_from_civil(year, month, day)))
    }

    /// Decompose into a civil (year, month, day) triple.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// The calendar month (1-12).
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// The day of month (1-31).
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// This date shifted by `n` days (negative shifts backwards).
    pub fn add_days(self, n: i32) -> Self {
        Date(self.0 + n)
    }

    /// This date shifted forward by `n` months, clamping the day of month
    /// to the target month's length (like SQL's `ADD_MONTHS`).
    pub fn add_months(self, n: i32) -> Self {
        let (y, m, d) = self.ymd();
        let total = (y as i64) * 12 + (m as i64 - 1) + n as i64;
        let ny = total.div_euclid(12) as i32;
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date(days_from_civil(ny, nm, nd))
    }
}

/// Number of days in a civil month.
fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Howard Hinnant's `days_from_civil`: exact day count since 1970-01-01.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y } as i32;
    (y, m, d)
}

/// Error produced when parsing a malformed date string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError(pub String);

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid date literal: {:?} (expected YYYY-MM-DD)",
            self.0
        )
    }
}

impl std::error::Error for ParseDateError {}

impl FromStr for Date {
    type Err = ParseDateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseDateError(s.to_string());
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        Date::from_ymd(y, m, d).ok_or_else(err)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date::from_days(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn roundtrip_every_day_of_several_years() {
        // Covers leap year (1996, 2000), non-leap century (1900), ordinary.
        for start in [-25567, 9497, 10957, 18262] {
            for offset in 0..=366 {
                let d = Date::from_days(start + offset);
                let (y, m, dd) = d.ymd();
                assert_eq!(Date::from_ymd(y, m, dd), Some(d));
            }
        }
    }

    #[test]
    fn parse_and_display() {
        let d: Date = "1998-12-01".parse().unwrap();
        assert_eq!(d.ymd(), (1998, 12, 1));
        assert_eq!(d.to_string(), "1998-12-01");
    }

    #[test]
    fn rejects_bad_dates() {
        assert!("1998-13-01".parse::<Date>().is_err());
        assert!("1998-02-30".parse::<Date>().is_err());
        assert!("1999-02-29".parse::<Date>().is_err());
        assert!("2000-02-29".parse::<Date>().is_ok());
        assert!("1900-02-29".parse::<Date>().is_err());
        assert!("nonsense".parse::<Date>().is_err());
        assert!("1998-01".parse::<Date>().is_err());
    }

    #[test]
    fn ordering_matches_chronology() {
        let a: Date = "1995-03-15".parse().unwrap();
        let b: Date = "1995-03-16".parse().unwrap();
        let c: Date = "1996-01-01".parse().unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn add_months_clamps() {
        let d: Date = "1996-01-31".parse().unwrap();
        assert_eq!(d.add_months(1).to_string(), "1996-02-29");
        assert_eq!(d.add_months(13).to_string(), "1997-02-28");
        assert_eq!(d.add_months(-1).to_string(), "1995-12-31");
    }

    #[test]
    fn tpch_interval_example() {
        // Q4-style: orderdate >= 1993-07-01 and < 1993-07-01 + 3 months.
        let start: Date = "1993-07-01".parse().unwrap();
        assert_eq!(start.add_months(3).to_string(), "1993-10-01");
    }
}
