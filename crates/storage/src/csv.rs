//! Minimal CSV import/export.
//!
//! The benchmark harnesses dump measured series as CSV so plots and
//! EXPERIMENTS.md tables can be regenerated; tables can also be loaded from
//! CSV for ad-hoc experiments. Quoting follows RFC 4180: fields containing
//! commas, quotes or newlines are quoted, quotes are doubled.

use std::io::{BufRead, Write};

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::{DataType, Value};

/// Escape a single field per RFC 4180.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Pull the next CSV *record* (not line) off the character stream.
///
/// Records end at an unquoted `\n` or `\r\n`; quoted fields may contain
/// commas, doubled quotes, and raw newlines/CRs, all preserved verbatim.
/// Returns `None` at end of input; blank records (empty lines) come back
/// as `Some(vec![])` so the caller can skip them.
fn next_record(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<Result<Vec<String>, StorageError>> {
    chars.peek()?;
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    saw_any = true;
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                    saw_any = true;
                }
                '\r' if chars.peek() == Some(&'\n') => {
                    chars.next();
                    break;
                }
                '\n' => break,
                _ => {
                    cur.push(c);
                    saw_any = true;
                }
            }
        }
    }
    if in_quotes {
        return Some(Err(StorageError::Csv(format!(
            "unterminated quote in record starting {:?}",
            &cur[..cur.len().min(40)]
        ))));
    }
    if !saw_any && fields.is_empty() {
        return Some(Ok(Vec::new())); // blank line
    }
    fields.push(cur);
    Some(Ok(fields))
}

/// Write a table (header + rows) as CSV.
pub fn write_table<W: Write>(table: &Table, out: &mut W) -> Result<(), StorageError> {
    let header: Vec<String> = table.schema().names().map(escape).collect();
    writeln!(out, "{}", header.join(","))?;
    for row in table.rows() {
        write_row(row, out)?;
    }
    Ok(())
}

/// Write one row as a CSV line (NULL becomes the empty field).
pub fn write_row<W: Write>(row: &Row, out: &mut W) -> Result<(), StorageError> {
    let fields: Vec<String> = row
        .iter()
        .map(|v| match v {
            Value::Null => String::new(),
            other => escape(&other.to_string()),
        })
        .collect();
    writeln!(out, "{}", fields.join(","))?;
    Ok(())
}

/// Parse a field according to a column type; empty fields become NULL.
fn parse_field(field: &str, ty: DataType) -> Result<Value, StorageError> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    let err = |msg: &str| StorageError::Csv(format!("{msg}: {field:?}"));
    Ok(match ty {
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(err("bad boolean")),
        },
        DataType::Int => Value::Int(field.parse().map_err(|_| err("bad integer"))?),
        DataType::Float => Value::Float(field.parse().map_err(|_| err("bad float"))?),
        DataType::Text => Value::text(field),
        DataType::Date => Value::Date(field.parse().map_err(|_| err("bad date"))?),
    })
}

/// Read a table from CSV. The first record must be a header whose fields
/// match the given schema's column names (case-insensitive, same order).
///
/// The parser is record-based, not line-based: quoted fields may contain
/// raw newlines and CRs, which round-trip exactly (the one lossy case is
/// the empty string, which is written as the empty field and reads back as
/// NULL).
pub fn read_table<R: BufRead>(
    name: &str,
    schema: Schema,
    mut input: R,
) -> Result<Table, StorageError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    let mut chars = text.chars().peekable();
    let header_fields = next_record(&mut chars)
        .ok_or_else(|| StorageError::Csv("empty input (missing header)".into()))??;
    let expected: Vec<&str> = schema.names().collect();
    let got: Vec<String> = header_fields
        .iter()
        .map(|f| f.to_ascii_lowercase())
        .collect();
    if got != expected {
        return Err(StorageError::Csv(format!(
            "header mismatch: expected {expected:?}, got {got:?}"
        )));
    }
    let mut table = Table::new(name, schema);
    while let Some(record) = next_record(&mut chars) {
        let fields = record?;
        if fields.is_empty() {
            continue; // blank line
        }
        if fields.len() != table.schema().len() {
            return Err(StorageError::Csv(format!(
                "row arity mismatch: expected {}, got {} in {fields:?}",
                table.schema().len(),
                fields.len()
            )));
        }
        let row: Result<Row, StorageError> = fields
            .iter()
            .zip(table.schema().columns())
            .map(|(f, c)| parse_field(f, c.data_type()))
            .collect();
        table.insert(row?)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("name", DataType::Text),
            ("income", DataType::Float),
            ("since", DataType::Date),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let mut t = Table::new("c", schema());
        t.insert(vec![
            "John, Jr.".into(),
            120_000.0.into(),
            Value::Date("1999-01-02".parse().unwrap()),
        ])
        .unwrap();
        t.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("name,income,since\n"));
        assert!(text.contains("\"John, Jr.\""));

        let back = read_table("c", schema(), &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.value(0, 0), &Value::text("John, Jr."));
        assert_eq!(back.value(0, 1), &Value::Float(120000.0));
        assert!(back.value(1, 0).is_null());
    }

    fn split_one(line: &str) -> Result<Vec<String>, StorageError> {
        let mut chars = line.chars().peekable();
        next_record(&mut chars).unwrap()
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        let fields = split_one("\"say \"\"hi\"\"\",b").unwrap();
        assert_eq!(fields, vec!["say \"hi\"", "b"]);
    }

    #[test]
    fn quoted_newlines_and_crs_roundtrip() {
        let mut t = Table::new("c", schema());
        t.insert(vec![
            "line1\nline2\r\nline3\rend".into(),
            1.0.into(),
            Value::Null,
        ])
        .unwrap();
        t.insert(vec!["\",\"".into(), 2.0.into(), Value::Null])
            .unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table("c", schema(), &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.value(0, 0), &Value::text("line1\nline2\r\nline3\rend"));
        assert_eq!(back.value(1, 0), &Value::text("\",\""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let data = b"wrong,header,cols\n";
        let err = read_table("c", schema(), &data[..]).unwrap_err();
        assert!(matches!(err, StorageError::Csv(_)));
    }

    #[test]
    fn bad_field_rejected() {
        let data = b"name,income,since\nann,notanumber,1999-01-01\n";
        assert!(read_table("c", schema(), &data[..]).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(split_one("\"oops").is_err());
    }
}
