//! # conquer-storage
//!
//! In-memory relational storage layer for the ConQuer clean-answers system.
//!
//! This crate provides the typed value model ([`Value`], [`DataType`],
//! [`Date`]), row/schema/table abstractions ([`Row`], [`Schema`], [`Table`]),
//! a named-table [`Catalog`], equi [`HashIndex`]es, and CSV import/export.
//!
//! The storage layer is deliberately simple: tables are materialized
//! `Vec<Row>`s and all access is single-process. The paper's experiments ran
//! on DB2; this crate is the substrate we substitute for it (see DESIGN.md).
//! Everything above it — the SQL parser, the query engine, the clean-answer
//! rewriting — only assumes relational tables with typed columns, which is
//! exactly what this crate models.
//!
//! ## Ordering and hashing of values
//!
//! SQL evaluation needs values as grouping keys, join keys, and sort keys.
//! [`Value`] therefore implements a *total* order ([`Ord`]) and a consistent
//! [`Hash`]/[`Eq`]: floats are ordered with `f64::total_cmp`, ints and floats
//! are ordered numerically (with a deterministic tie-break on the type tag so
//! that `Eq` stays structural), and `Null` sorts first. Three-valued SQL
//! comparison semantics live in the engine, not here.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod crossref;
pub mod csv;
pub mod date;
pub mod error;
pub mod fault;
pub mod index;
pub mod persist;
pub mod schema;
pub mod scrub;
pub mod spill;
pub mod table;
pub mod value;
pub mod vfs;
pub mod wal;

pub use catalog::Catalog;
pub use crossref::apply_crossref;
pub use date::Date;
pub use error::StorageError;
pub use index::HashIndex;
pub use persist::{load_catalog, load_catalog_recover, save_catalog, RecoveryReport};
pub use schema::{Column, Schema};
pub use scrub::{scrub, ScrubReport};
pub use spill::{SpillFile, SpillReader, SpillSession, SpillWriter};
pub use table::{Row, Table};
pub use value::{DataType, Value};
pub use wal::{Wal, WalOp};

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
