//! Failpoint-style fault injection for robustness testing.
//!
//! Storage I/O and executor allocation paths call
//! [`trigger`]`("layer::point")` at the places where real systems fail:
//! between file writes, before a manifest commit, on every byte written to
//! a data file, on every memory charge. With the `fault` cargo feature
//! **disabled** (the default) every trigger is a no-op that compiles to
//! nothing; with it **enabled**, tests arm individual points via [`arm`]
//! and the armed hit returns a [`FaultInjected`] error, which the caller
//! surfaces as its layer's typed error — simulating a crash or I/O failure
//! at exactly that moment.
//!
//! Typical test loop ("kill the save at every possible point"):
//!
//! ```ignore
//! fault::reset();
//! save_catalog(&cat, dir)?;                  // clean run
//! let hits = fault::hit_count("persist::file");
//! for i in 1..=hits {
//!     fault::reset();
//!     fault::arm("persist::file", i);        // fail the i-th hit
//!     assert!(save_catalog(&cat2, dir).is_err());
//!     assert_eq!(load_catalog(dir)?, previous); // old state intact
//! }
//! ```
//!
//! The registry is global; tests that arm points must serialize themselves
//! (e.g. with a shared `Mutex`) since parallel tests would otherwise see
//! each other's faults.

use std::io::Write;

/// Error returned by an armed fault point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjected {
    /// The fault point that fired, e.g. `"persist::manifest"`.
    pub point: String,
}

impl std::fmt::Display for FaultInjected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.point)
    }
}

impl std::error::Error for FaultInjected {}

impl From<FaultInjected> for crate::error::StorageError {
    fn from(f: FaultInjected) -> Self {
        crate::error::StorageError::Io(f.to_string())
    }
}

impl From<FaultInjected> for std::io::Error {
    fn from(f: FaultInjected) -> Self {
        std::io::Error::other(f.to_string())
    }
}

#[cfg(feature = "fault")]
mod registry {
    use super::FaultInjected;
    use conquer_sync::{rank, Mutex, MutexGuard};
    use std::collections::HashMap;

    #[derive(Default)]
    struct Point {
        hits: u64,
        /// One-shot: fail when `hits` reaches this value, then disarm.
        fail_at: Option<u64>,
    }

    /// A poisoned registry just means another test panicked mid-update;
    /// the sync wrapper recovers the data, which is still coherent enough
    /// for test bookkeeping.
    fn registry() -> MutexGuard<'static, HashMap<String, Point>> {
        static REGISTRY: std::sync::LazyLock<Mutex<HashMap<String, Point>>> =
            std::sync::LazyLock::new(|| Mutex::new(&rank::FAULT_REGISTRY, HashMap::new()));
        REGISTRY.lock()
    }

    pub fn trigger(point: &str) -> Result<(), FaultInjected> {
        let mut reg = registry();
        let p = reg.entry(point.to_string()).or_default();
        p.hits += 1;
        if p.fail_at == Some(p.hits) {
            p.fail_at = None;
            return Err(FaultInjected {
                point: point.to_string(),
            });
        }
        Ok(())
    }

    pub fn arm(point: &str, nth_hit: u64) {
        assert!(
            nth_hit >= 1,
            "fault points are armed on a 1-based hit index"
        );
        let mut reg = registry();
        let p = reg.entry(point.to_string()).or_default();
        p.hits = 0;
        p.fail_at = Some(nth_hit);
    }

    pub fn hit_count(point: &str) -> u64 {
        registry().get(point).map_or(0, |p| p.hits)
    }

    pub fn reset() {
        registry().clear();
    }
}

/// Check a fault point. No-op unless the `fault` feature is enabled *and*
/// a test armed this point's current hit.
#[cfg(feature = "fault")]
pub fn trigger(point: &str) -> Result<(), FaultInjected> {
    registry::trigger(point)
}

/// Check a fault point. No-op unless the `fault` feature is enabled *and*
/// a test armed this point's current hit.
#[cfg(not(feature = "fault"))]
#[inline(always)]
pub fn trigger(_point: &str) -> Result<(), FaultInjected> {
    Ok(())
}

/// Arm `point` to fail on its `nth_hit`-th future hit (1-based), counting
/// from this call; one-shot. Only available with the `fault` feature.
#[cfg(feature = "fault")]
pub fn arm(point: &str, nth_hit: u64) {
    registry::arm(point, nth_hit)
}

/// Total hits `point` has seen since the last [`reset`] / [`arm`] of that
/// point. Only available with the `fault` feature.
#[cfg(feature = "fault")]
pub fn hit_count(point: &str) -> u64 {
    registry::hit_count(point)
}

/// Disarm every point and zero all hit counters. Only available with the
/// `fault` feature.
#[cfg(feature = "fault")]
pub fn reset() {
    registry::reset()
}

/// A writer wrapper that checks the `io::write` fault point on every
/// write, letting tests inject partial-file writes and flush failures.
/// Transparent (and effectively free) when the `fault` feature is off.
#[derive(Debug)]
pub struct FaultWriter<W: Write> {
    inner: W,
    point: &'static str,
}

impl<W: Write> FaultWriter<W> {
    /// Wrap `inner`, checking `point` before every write/flush.
    pub fn new(inner: W, point: &'static str) -> Self {
        FaultWriter { inner, point }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The inner writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        trigger(self.point)?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        trigger(self.point)?;
        self.inner.flush()
    }
}

#[cfg(all(test, feature = "fault"))]
mod tests {
    use super::*;

    #[test]
    fn armed_point_fires_once_at_exact_hit() {
        reset();
        arm("t::p", 2);
        assert!(trigger("t::p").is_ok());
        let err = trigger("t::p").unwrap_err();
        assert_eq!(err.point, "t::p");
        // one-shot: disarmed after firing
        assert!(trigger("t::p").is_ok());
        assert_eq!(hit_count("t::p"), 3);
        reset();
        assert_eq!(hit_count("t::p"), 0);
    }
}
