//! Column and schema definitions.

use std::fmt;

use crate::error::StorageError;
use crate::value::DataType;

/// A single column: a (lower-cased) name and a static type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    name: String,
    data_type: DataType,
}

impl Column {
    /// Create a column. Names are normalized to lower case, matching the
    /// case-insensitive identifier handling of the SQL layer.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            data_type,
        }
    }

    /// The (lower-cased) column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// An ordered list of columns with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name() == c.name()) {
                return Err(StorageError::DuplicateColumn(c.name().to_string()));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    ///
    /// ```
    /// use conquer_storage::{Schema, DataType};
    /// let s = Schema::from_pairs([("id", DataType::Text), ("prob", DataType::Float)]).unwrap();
    /// assert_eq!(s.len(), 2);
    /// ```
    pub fn from_pairs<I, S>(pairs: I) -> Result<Self, StorageError>
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        Schema::new(pairs.into_iter().map(|(n, t)| Column::new(n, t)).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of the column with the given (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let name = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name() == name)
    }

    /// The column with the given (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// The column at `idx`.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Append a column (used by offline transformations such as identifier
    /// propagation, which add `id`/`prob`/`…idfk` columns to a table).
    pub fn push_column(&mut self, column: Column) -> Result<usize, StorageError> {
        if self.index_of(column.name()).is_some() {
            return Err(StorageError::DuplicateColumn(column.name().to_string()));
        }
        self.columns.push(column);
        Ok(self.columns.len() - 1)
    }

    /// Iterator over column names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_case_insensitive() {
        let s = Schema::from_pairs([("CustID", DataType::Text)]).unwrap();
        assert_eq!(s.index_of("custid"), Some(0));
        assert_eq!(s.index_of("CUSTID"), Some(0));
        assert_eq!(s.column("custId").unwrap().name(), "custid");
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::from_pairs([("a", DataType::Int), ("A", DataType::Text)]).unwrap_err();
        assert_eq!(err, StorageError::DuplicateColumn("a".into()));
    }

    #[test]
    fn push_column_appends_and_guards() {
        let mut s = Schema::from_pairs([("a", DataType::Int)]).unwrap();
        let idx = s.push_column(Column::new("prob", DataType::Float)).unwrap();
        assert_eq!(idx, 1);
        assert!(s.push_column(Column::new("PROB", DataType::Float)).is_err());
    }

    #[test]
    fn display() {
        let s = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]).unwrap();
        assert_eq!(s.to_string(), "(a INTEGER, b TEXT)");
    }
}
