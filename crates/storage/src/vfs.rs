//! Virtual filesystem layer: every byte of storage IO flows through here.
//!
//! Production code calls the free functions (`vfs::read`, `vfs::rename`,
//! `vfs::sync_dir`, ...) and opens files through [`File`]. Without the
//! `fault` feature they compile to direct `std::fs` calls — [`File`] is a
//! single-variant wrapper around `std::fs::File` with `#[inline]`
//! passthrough, asserted below to add zero bytes — so the release binary
//! pays nothing for the abstraction.
//!
//! With `--features fault`, a test can [`mount_sim`] a [`SimFs`] under a
//! path prefix: a deterministic in-memory filesystem that journals every
//! mutation, tracks which bytes fsync has actually promised (per-file
//! content syncs, per-directory namespace syncs), and can therefore
//! *enumerate the post-crash states* a real disk could expose — any
//! subset of unsynced writes dropped or reordered, the final write torn
//! mid-sector — plus inject typed faults: ENOSPC on write, EIO on
//! read/write, fsync failure (with the fsyncgate lie: bytes a failed
//! fsync covered are never again promotable by a later fsync on the same
//! data — only a rewrite through a fresh handle is), and silent
//! bit-flips.
//!
//! The module also owns the process-wide IO health counters
//! ([`counters`]): best-effort sites that used to swallow errors
//! (`let _ = dir.sync_all()`) report here instead, and the recovery path
//! drains the accompanying notes into its `RecoveryReport`.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use conquer_sync::{rank, Mutex};

// ---------------------------------------------------------------------------
// IO health counters + issue notes
// ---------------------------------------------------------------------------

static IO_ERRORS: AtomicU64 = AtomicU64::new(0);
static FSYNC_FAILURES: AtomicU64 = AtomicU64::new(0);
static ISSUES: Mutex<Vec<String>> = Mutex::new(&rank::VFS_ISSUES, Vec::new());
const MAX_ISSUES: usize = 64;

/// Process-wide IO health counters, monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct IoCounters {
    /// Best-effort IO operations (directory fsyncs, WAL truncations, ...)
    /// that failed; each is also recorded as a note for the recovery path.
    pub io_errors: u64,
    /// fsync calls that returned an error. Per the fsync-poisoning rule
    /// the affected handle is never retried — it heals by reopen+replay.
    pub fsync_failures: u64,
}

/// Snapshot the process-wide IO health counters.
pub fn counters() -> IoCounters {
    IoCounters {
        io_errors: IO_ERRORS.load(Ordering::Relaxed),
        fsync_failures: FSYNC_FAILURES.load(Ordering::Relaxed),
    }
}

/// Record a failed best-effort IO operation instead of swallowing it.
pub fn note_io_error(context: String) {
    IO_ERRORS.fetch_add(1, Ordering::Relaxed);
    push_issue(context);
}

/// Record a failed fsync (the caller must poison the handle, never retry).
pub fn note_fsync_failure(context: String) {
    FSYNC_FAILURES.fetch_add(1, Ordering::Relaxed);
    push_issue(context);
}

fn push_issue(note: String) {
    let mut issues = ISSUES.lock();
    if issues.len() >= MAX_ISSUES {
        issues.remove(0);
    }
    issues.push(note);
}

/// Drain the accumulated IO-error notes (recovery and scrub fold these
/// into their reports so best-effort failures surface somewhere visible).
pub fn drain_issues() -> Vec<String> {
    std::mem::take(&mut *ISSUES.lock())
}

// ---------------------------------------------------------------------------
// Vfs trait + free functions
// ---------------------------------------------------------------------------

/// The operations storage needs from a filesystem. [`RealFs`] implements
/// it over `std::fs`; the free functions below are the static-dispatch
/// fast path production code actually calls (routing to a mounted
/// [`SimFs`] only when the `fault` feature is on *and* a mount exists).
pub trait Vfs {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Write a whole file (no fsync).
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Read a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Remove a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// fsync the directory itself so renames/creates within it are durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// List a directory's immediate entries.
    fn dir_entries(&self, path: &Path) -> io::Result<Vec<DirEntry>>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// One directory-listing entry (name + kind), fs-implementation agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// File or directory name (no path components).
    pub name: String,
    /// True when the entry is a directory.
    pub is_dir: bool,
}

/// The zero-cost production filesystem: direct `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
    fn dir_entries(&self, path: &Path) -> io::Result<Vec<DirEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            let is_dir = entry.file_type().is_ok_and(|t| t.is_dir());
            out.push(DirEntry { name, is_dir });
        }
        Ok(out)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

macro_rules! routed {
    ($path:expr, $sim_call:expr, $real:expr) => {{
        #[cfg(feature = "fault")]
        if let Some(_simfs) = sim::route($path) {
            #[allow(clippy::redundant_closure_call)]
            return ($sim_call)(_simfs);
        }
        $real
    }};
}

/// Read a whole file.
#[inline]
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    routed!(path, |s: SimMount| s.read(path), RealFs.read(path))
}

/// Write a whole file (no fsync — callers needing durability sync).
#[inline]
pub fn write(path: &Path, contents: &[u8]) -> io::Result<()> {
    routed!(
        path,
        |s: SimMount| s.write(path, contents),
        RealFs.write(path, contents)
    )
}

/// Read a whole file as UTF-8.
#[inline]
pub fn read_to_string(path: &Path) -> io::Result<String> {
    routed!(
        path,
        |s: SimMount| s.read_to_string(path),
        RealFs.read_to_string(path)
    )
}

/// Create a directory and all missing parents.
#[inline]
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    routed!(
        path,
        |s: SimMount| s.create_dir_all(path),
        RealFs.create_dir_all(path)
    )
}

/// Remove a directory tree.
#[inline]
pub fn remove_dir_all(path: &Path) -> io::Result<()> {
    routed!(
        path,
        |s: SimMount| s.remove_dir_all(path),
        RealFs.remove_dir_all(path)
    )
}

/// Remove a file.
#[inline]
pub fn remove_file(path: &Path) -> io::Result<()> {
    routed!(
        path,
        |s: SimMount| s.remove_file(path),
        RealFs.remove_file(path)
    )
}

/// Atomically rename `from` to `to` (same filesystem).
#[inline]
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    routed!(
        from,
        |s: SimMount| s.rename(from, to),
        RealFs.rename(from, to)
    )
}

/// fsync a directory so the renames/creates within it are durable.
#[inline]
pub fn sync_dir(path: &Path) -> io::Result<()> {
    routed!(path, |s: SimMount| s.sync_dir(path), RealFs.sync_dir(path))
}

/// List a directory's immediate entries (names + kind).
#[inline]
pub fn dir_entries(path: &Path) -> io::Result<Vec<DirEntry>> {
    routed!(
        path,
        |s: SimMount| s.dir_entries(path),
        RealFs.dir_entries(path)
    )
}

/// Whether a path exists.
#[inline]
pub fn exists(path: &Path) -> bool {
    #[cfg(feature = "fault")]
    if let Some(simfs) = sim::route(path) {
        return simfs.exists(path);
    }
    RealFs.exists(path)
}

// ---------------------------------------------------------------------------
// File handle
// ---------------------------------------------------------------------------

/// An open file. Without the `fault` feature this is a transparent
/// wrapper over `std::fs::File` (single enum variant, no discriminant —
/// see the size assertion below); with it, a handle may instead point
/// into a mounted [`SimFs`].
#[derive(Debug)]
pub struct File(FileInner);

#[derive(Debug)]
enum FileInner {
    Real(std::fs::File),
    #[cfg(feature = "fault")]
    Sim(sim::SimHandle),
}

#[cfg(not(feature = "fault"))]
const _: () = assert!(
    std::mem::size_of::<File>() == std::mem::size_of::<std::fs::File>(),
    "vfs::File must stay a zero-cost wrapper without fault injection"
);

impl File {
    /// Create (truncating) a file for writing.
    #[inline]
    pub fn create(path: &Path) -> io::Result<File> {
        #[cfg(feature = "fault")]
        if let Some(simfs) = sim::route(path) {
            return Ok(File(FileInner::Sim(
                simfs.open(path, sim::OpenMode::Create)?,
            )));
        }
        Ok(File(FileInner::Real(std::fs::File::create(path)?)))
    }

    /// Open an existing file read-only.
    #[inline]
    pub fn open(path: &Path) -> io::Result<File> {
        #[cfg(feature = "fault")]
        if let Some(simfs) = sim::route(path) {
            return Ok(File(FileInner::Sim(simfs.open(path, sim::OpenMode::Read)?)));
        }
        Ok(File(FileInner::Real(std::fs::File::open(path)?)))
    }

    /// Open read+write, creating if missing, never truncating.
    #[inline]
    pub fn open_rw(path: &Path) -> io::Result<File> {
        #[cfg(feature = "fault")]
        if let Some(simfs) = sim::route(path) {
            return Ok(File(FileInner::Sim(
                simfs.open(path, sim::OpenMode::ReadWrite)?,
            )));
        }
        Ok(File(FileInner::Real(
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?,
        )))
    }

    /// Truncate (or extend with zeros) to `len` bytes.
    #[inline]
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        match &self.0 {
            FileInner::Real(f) => f.set_len(len),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.set_len(len),
        }
    }

    /// fsync data + metadata.
    #[inline]
    pub fn sync_all(&self) -> io::Result<()> {
        match &self.0 {
            FileInner::Real(f) => f.sync_all(),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.sync(),
        }
    }

    /// fdatasync.
    #[inline]
    pub fn sync_data(&self) -> io::Result<()> {
        match &self.0 {
            FileInner::Real(f) => f.sync_data(),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.sync(),
        }
    }
}

impl Read for File {
    #[inline]
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match &mut self.0 {
            FileInner::Real(f) => f.read(buf),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.read(buf),
        }
    }
}

impl Write for File {
    #[inline]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &mut self.0 {
            FileInner::Real(f) => f.write(buf),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.write(buf),
        }
    }
    #[inline]
    fn flush(&mut self) -> io::Result<()> {
        match &mut self.0 {
            FileInner::Real(f) => f.flush(),
            #[cfg(feature = "fault")]
            FileInner::Sim(_) => Ok(()),
        }
    }
}

impl Seek for File {
    #[inline]
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        match &mut self.0 {
            FileInner::Real(f) => f.seek(pos),
            #[cfg(feature = "fault")]
            FileInner::Sim(h) => h.seek(pos),
        }
    }
}

#[cfg(feature = "fault")]
type SimMount = std::sync::Arc<SimFs>;

#[cfg(feature = "fault")]
pub use sim::{mount_sim, CrashState, MountGuard, SimFs};

// ---------------------------------------------------------------------------
// SimFs: deterministic in-memory filesystem with crash-state enumeration
// ---------------------------------------------------------------------------

#[cfg(feature = "fault")]
mod sim {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    const ENOSPC: i32 = 28;
    const EIO: i32 = 5;
    /// 2^MAX_PENDING crash states is the enumeration ceiling.
    const MAX_PENDING: usize = 14;

    static MOUNTS: Mutex<Vec<(PathBuf, Arc<SimFs>)>> = Mutex::new(&rank::VFS_MOUNTS, Vec::new());
    static MOUNT_COUNT: AtomicUsize = AtomicUsize::new(0);

    /// Route a path to a mounted [`SimFs`], if any. The atomic count makes
    /// the no-mounts case (all of production) a single relaxed load.
    pub(super) fn route(path: &Path) -> Option<Arc<SimFs>> {
        if MOUNT_COUNT.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mounts = MOUNTS.lock();
        mounts
            .iter()
            .rev()
            .find(|(prefix, _)| path.starts_with(prefix))
            .map(|(_, fs)| Arc::clone(fs))
    }

    /// Mount a fresh [`SimFs`] under `prefix`; all `vfs` calls on paths
    /// below it are served from memory until the guard drops. Tests must
    /// use unique prefixes (the table is process-global).
    pub fn mount_sim(prefix: impl Into<PathBuf>) -> (Arc<SimFs>, MountGuard) {
        let prefix = prefix.into();
        let fs = Arc::new(SimFs::new(prefix.clone()));
        MOUNTS.lock().push((prefix.clone(), Arc::clone(&fs)));
        MOUNT_COUNT.fetch_add(1, Ordering::SeqCst);
        (fs, MountGuard { prefix })
    }

    /// Unmounts its [`SimFs`] on drop.
    #[must_use]
    pub struct MountGuard {
        prefix: PathBuf,
    }

    impl Drop for MountGuard {
        fn drop(&mut self) {
            let mut mounts = MOUNTS.lock();
            if let Some(i) = mounts.iter().position(|(p, _)| *p == self.prefix) {
                mounts.remove(i);
                MOUNT_COUNT.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// One journaled mutation. Content ops (`Write`/`SetLen`) become
    /// durable when the file is fsynced; namespace ops (`MkDir`,
    /// `CreateFile`, `Rename`, `Remove*`) when their parent directory is.
    /// `Flip` models silent bit-rot: always "durable", invisible to sync.
    #[derive(Debug, Clone)]
    enum Op {
        MkDir {
            path: PathBuf,
        },
        CreateFile {
            path: PathBuf,
        },
        Write {
            path: PathBuf,
            offset: u64,
            bytes: Vec<u8>,
        },
        SetLen {
            path: PathBuf,
            len: u64,
        },
        Rename {
            from: PathBuf,
            to: PathBuf,
        },
        RemoveFile {
            path: PathBuf,
        },
        RemoveDir {
            path: PathBuf,
        },
        Flip {
            path: PathBuf,
            offset: u64,
        },
    }

    impl Op {
        fn content_path(&self) -> Option<&Path> {
            match self {
                Op::Write { path, .. } | Op::SetLen { path, .. } => Some(path),
                _ => None,
            }
        }
        /// Directory whose fsync makes a namespace op durable.
        fn ns_parent(&self) -> Option<PathBuf> {
            let p = match self {
                Op::MkDir { path }
                | Op::CreateFile { path }
                | Op::RemoveFile { path }
                | Op::RemoveDir { path } => path,
                Op::Rename { to, .. } => to,
                Op::Write { .. } | Op::SetLen { .. } | Op::Flip { .. } => return None,
            };
            p.parent().map(Path::to_path_buf)
        }
    }

    #[derive(Debug, Clone)]
    struct Entry {
        op: Op,
        durable: bool,
        /// fsyncgate: a failed fsync covered this entry; a later fsync on
        /// the same handle/path can never promote it (the kernel already
        /// dropped the dirty flag). Only a rewrite makes the data durable.
        lied: bool,
    }

    /// A concrete filesystem image: what a post-crash disk could hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CrashState {
        /// Every file the post-crash disk holds, with full contents.
        pub files: BTreeMap<PathBuf, Vec<u8>>,
        /// Every directory the post-crash disk holds.
        pub dirs: BTreeSet<PathBuf>,
        /// Human-readable description of which pending ops survived.
        pub label: String,
    }

    #[derive(Debug, Clone, Default)]
    struct Image {
        files: BTreeMap<PathBuf, Vec<u8>>,
        dirs: BTreeSet<PathBuf>,
    }

    impl Image {
        /// Apply one op leniently: an op whose target is missing (because
        /// an earlier pending op was dropped) is itself a no-op, which is
        /// exactly what the disk would show.
        fn apply(&mut self, op: &Op, tear: Option<usize>) {
            match op {
                Op::MkDir { path } => {
                    let mut p = path.as_path();
                    loop {
                        self.dirs.insert(p.to_path_buf());
                        match p.parent() {
                            Some(parent) if !self.dirs.contains(parent) => p = parent,
                            _ => break,
                        }
                    }
                }
                Op::CreateFile { path } => {
                    if path.parent().is_none_or(|p| self.dirs.contains(p)) {
                        self.files.insert(path.clone(), Vec::new());
                    }
                }
                Op::Write {
                    path,
                    offset,
                    bytes,
                } => {
                    if let Some(data) = self.files.get_mut(path) {
                        let cut = tear.unwrap_or(bytes.len());
                        let end = *offset as usize + cut;
                        if data.len() < end {
                            data.resize(end, 0);
                        }
                        data[*offset as usize..end].copy_from_slice(&bytes[..cut]);
                    }
                }
                Op::SetLen { path, len } => {
                    if let Some(data) = self.files.get_mut(path) {
                        data.resize(*len as usize, 0);
                    }
                }
                Op::Rename { from, to } => {
                    if let Some(data) = self.files.remove(from) {
                        self.files.insert(to.clone(), data);
                    } else if self.dirs.remove(from) {
                        self.dirs.insert(to.clone());
                        let moved: Vec<_> = self
                            .files
                            .keys()
                            .filter(|p| p.starts_with(from))
                            .cloned()
                            .collect();
                        for old in moved {
                            let Ok(rel) = old.strip_prefix(from) else {
                                continue;
                            };
                            let new = to.join(rel);
                            if let Some(data) = self.files.remove(&old) {
                                self.files.insert(new, data);
                            }
                        }
                        let moved_dirs: Vec<_> = self
                            .dirs
                            .iter()
                            .filter(|p| p.starts_with(from))
                            .cloned()
                            .collect();
                        for old in moved_dirs {
                            self.dirs.remove(&old);
                            if let Ok(rel) = old.strip_prefix(from) {
                                self.dirs.insert(to.join(rel));
                            }
                        }
                    }
                }
                Op::RemoveFile { path } => {
                    self.files.remove(path);
                }
                Op::RemoveDir { path } => {
                    self.dirs.retain(|p| !p.starts_with(path));
                    self.files.retain(|p, _| !p.starts_with(path));
                }
                Op::Flip { path, offset } => {
                    if let Some(data) = self.files.get_mut(path) {
                        if let Some(b) = data.get_mut(*offset as usize) {
                            *b ^= 0x01;
                        }
                    }
                }
            }
        }
    }

    #[derive(Debug)]
    enum RuleKind {
        Read,
        Write,
        Sync,
    }

    #[derive(Debug)]
    struct FaultRule {
        kind: RuleKind,
        substr: String,
        /// Fires (once) when the countdown reaches zero.
        countdown: u64,
    }

    #[derive(Debug, Default)]
    struct State {
        journal: Vec<Entry>,
        /// Replay cache of the full journal (the "page cache" view).
        image: Image,
        capacity: Option<u64>,
        rules: Vec<FaultRule>,
        sync_calls: u64,
        opens: u64,
    }

    impl State {
        fn push(&mut self, op: Op, durable: bool) {
            self.image.apply(&op, None);
            self.journal.push(Entry {
                op,
                durable,
                lied: false,
            });
        }

        /// Charge `extra` bytes against the capacity, if one is set.
        fn charge(&self, extra: u64) -> io::Result<()> {
            if let Some(cap) = self.capacity {
                let used: u64 = self.image.files.values().map(|d| d.len() as u64).sum();
                if used + extra > cap {
                    return Err(io::Error::from_raw_os_error(ENOSPC));
                }
            }
            Ok(())
        }

        /// Fire-and-remove the first matching one-shot fault rule.
        fn check_rule(&mut self, kind: &RuleKind, path: &Path) -> bool {
            let text = path.to_string_lossy();
            for (i, rule) in self.rules.iter_mut().enumerate() {
                if std::mem::discriminant(&rule.kind) == std::mem::discriminant(kind)
                    && text.contains(&rule.substr)
                {
                    rule.countdown -= 1;
                    if rule.countdown == 0 {
                        self.rules.remove(i);
                        return true;
                    }
                    return false;
                }
            }
            false
        }
    }

    /// A deterministic in-memory filesystem for crash and fault testing.
    #[derive(Debug)]
    pub struct SimFs {
        state: Mutex<State>,
    }

    #[derive(Debug, Clone, Copy)]
    pub(super) enum OpenMode {
        Read,
        Create,
        ReadWrite,
    }

    impl SimFs {
        fn new(root: PathBuf) -> SimFs {
            let mut state = State::default();
            // The mount root and its ancestors pre-exist, fully durable.
            state.image.apply(&Op::MkDir { path: root }, None);
            SimFs {
                state: Mutex::new(&rank::VFS_SIM, state),
            }
        }

        // -- fault configuration -------------------------------------------

        /// Cap total file bytes; writes beyond it fail with ENOSPC.
        pub fn set_capacity(&self, cap: Option<u64>) {
            self.state.lock().capacity = cap;
        }

        /// Fail the `nth` future read of a path containing `substr` (EIO).
        pub fn fail_read(&self, substr: &str, nth: u64) {
            self.arm(RuleKind::Read, substr, nth);
        }

        /// Fail the `nth` future write of a path containing `substr` (EIO).
        pub fn fail_write(&self, substr: &str, nth: u64) {
            self.arm(RuleKind::Write, substr, nth);
        }

        /// Fail the `nth` future fsync (file or dir) of a matching path.
        /// Per fsyncgate, the covered bytes become unpromotable: a later
        /// fsync reports success without making them durable.
        pub fn fail_sync(&self, substr: &str, nth: u64) {
            self.arm(RuleKind::Sync, substr, nth);
        }

        fn arm(&self, kind: RuleKind, substr: &str, nth: u64) {
            assert!(nth > 0, "fault countdown is 1-based");
            self.state.lock().rules.push(FaultRule {
                kind,
                substr: substr.to_string(),
                countdown: nth,
            });
        }

        /// Silently flip the low bit of the byte at `offset` (bit-rot).
        pub fn flip_byte(&self, path: &Path, offset: u64) {
            self.state.lock().push(
                Op::Flip {
                    path: path.to_path_buf(),
                    offset,
                },
                true,
            );
        }

        // -- introspection -------------------------------------------------

        /// Total fsync attempts (file + dir) so far.
        pub fn sync_calls(&self) -> u64 {
            self.state.lock().sync_calls
        }

        /// Total file opens so far (heal-by-reopen leaves a trace here).
        pub fn opens(&self) -> u64 {
            self.state.lock().opens
        }

        /// Number of journaled ops not yet covered by an fsync.
        pub fn pending_ops(&self) -> usize {
            let s = self.state.lock();
            s.journal.iter().filter(|e| !e.durable).count()
        }

        // -- crash-state enumeration ---------------------------------------

        /// The fully-applied view (what the page cache shows now).
        pub fn current_image(&self) -> CrashState {
            let s = self.state.lock();
            Self::replay(&s.journal, |_, _| true, None, "current".to_string())
        }

        /// The guaranteed-durable view (only fsync-covered ops).
        pub fn durable_image(&self) -> CrashState {
            let s = self.state.lock();
            Self::replay(&s.journal, |_, e| e.durable, None, "durable".to_string())
        }

        /// Enumerate every filesystem image a crash right now could leave
        /// behind: durable ops always apply; each subset of the pending
        /// (unsynced) ops may or may not have reached the platter —
        /// dropping an early op while keeping a later one models
        /// reordering — and additionally each pending write may be torn
        /// mid-buffer (with and without its pending predecessors).
        ///
        /// Panics if more than 2^14 subsets would be needed; sync more
        /// often or split the scenario.
        pub fn crash_states(&self) -> Vec<CrashState> {
            let s = self.state.lock();
            let pending: Vec<usize> = s
                .journal
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.durable)
                .map(|(i, _)| i)
                .collect();
            assert!(
                pending.len() <= MAX_PENDING,
                "{} pending ops is too many to enumerate (max {MAX_PENDING})",
                pending.len()
            );
            let mut out = Vec::new();
            for mask in 0..(1u32 << pending.len()) {
                let keep: BTreeSet<usize> = pending
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &i)| i)
                    .collect();
                out.push(Self::replay(
                    &s.journal,
                    |i, e| e.durable || keep.contains(&i),
                    None,
                    format!("subset {mask:#b}"),
                ));
            }
            // Torn writes: the torn op is the last pending op to reach the
            // disk — enumerate every cut, with all / none of its pending
            // predecessors applied.
            for &i in &pending {
                let Entry {
                    op: Op::Write { bytes, .. },
                    ..
                } = &s.journal[i]
                else {
                    continue;
                };
                for cut in tear_points(bytes.len()) {
                    for with_predecessors in [true, false] {
                        out.push(Self::replay(
                            &s.journal,
                            |j, e| e.durable || (with_predecessors && j < i) || j == i,
                            Some((i, cut)),
                            format!("torn op {i} at {cut} (pred={with_predecessors})"),
                        ));
                    }
                }
            }
            out
        }

        fn replay(
            journal: &[Entry],
            include: impl Fn(usize, &Entry) -> bool,
            tear: Option<(usize, usize)>,
            label: String,
        ) -> CrashState {
            let mut image = Image::default();
            for (index, entry) in journal.iter().enumerate() {
                if matches!(entry.op, Op::Flip { .. }) || include(index, entry) {
                    let cut = tear.and_then(|(ti, c)| (ti == index).then_some(c));
                    image.apply(&entry.op, cut);
                }
            }
            CrashState {
                files: image.files,
                dirs: image.dirs,
                label,
            }
        }

        /// Reset this filesystem to exactly `state`, fully durable — "the
        /// machine rebooted and this is what the disk held".
        pub fn restore(&self, crash: &CrashState) {
            let mut s = self.state.lock();
            let mut st = State::default();
            for dir in &crash.dirs {
                st.image.apply(&Op::MkDir { path: dir.clone() }, None);
            }
            for (path, data) in &crash.files {
                st.image.files.insert(path.clone(), data.clone());
            }
            // Journal a single durable baseline per object so later syncs
            // and crash states build on a clean slate.
            st.journal = crash
                .dirs
                .iter()
                .map(|d| Entry {
                    op: Op::MkDir { path: d.clone() },
                    durable: true,
                    lied: false,
                })
                .collect();
            for (path, data) in &crash.files {
                st.journal.push(Entry {
                    op: Op::CreateFile { path: path.clone() },
                    durable: true,
                    lied: false,
                });
                st.journal.push(Entry {
                    op: Op::Write {
                        path: path.clone(),
                        offset: 0,
                        bytes: data.clone(),
                    },
                    durable: true,
                    lied: false,
                });
            }
            st.capacity = s.capacity;
            *s = st;
        }

        // -- filesystem operations -----------------------------------------

        pub(super) fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            let mut s = self.state.lock();
            if s.check_rule(&RuleKind::Read, path) {
                return Err(io::Error::from_raw_os_error(EIO));
            }
            s.image
                .files
                .get(path)
                .cloned()
                .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))
        }

        pub(super) fn read_to_string(&self, path: &Path) -> io::Result<String> {
            String::from_utf8(self.read(path)?)
                .map_err(|_| io::Error::from(io::ErrorKind::InvalidData))
        }

        pub(super) fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
            let mut s = self.state.lock();
            if s.check_rule(&RuleKind::Write, path) {
                return Err(io::Error::from_raw_os_error(EIO));
            }
            s.charge(contents.len() as u64)?;
            s.push(
                Op::CreateFile {
                    path: path.to_path_buf(),
                },
                false,
            );
            s.push(
                Op::Write {
                    path: path.to_path_buf(),
                    offset: 0,
                    bytes: contents.to_vec(),
                },
                false,
            );
            Ok(())
        }

        pub(super) fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            let mut s = self.state.lock();
            if !s.image.dirs.contains(path) {
                s.push(
                    Op::MkDir {
                        path: path.to_path_buf(),
                    },
                    false,
                );
            }
            Ok(())
        }

        pub(super) fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
            let mut s = self.state.lock();
            if !s.image.dirs.contains(path) {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            s.push(
                Op::RemoveDir {
                    path: path.to_path_buf(),
                },
                false,
            );
            Ok(())
        }

        pub(super) fn remove_file(&self, path: &Path) -> io::Result<()> {
            let mut s = self.state.lock();
            if !s.image.files.contains_key(path) {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            s.push(
                Op::RemoveFile {
                    path: path.to_path_buf(),
                },
                false,
            );
            Ok(())
        }

        pub(super) fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            let mut s = self.state.lock();
            if !s.image.files.contains_key(from) && !s.image.dirs.contains(from) {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            s.push(
                Op::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                },
                false,
            );
            Ok(())
        }

        pub(super) fn sync_dir(&self, path: &Path) -> io::Result<()> {
            let mut s = self.state.lock();
            s.sync_calls += 1;
            if !s.image.dirs.contains(path) {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            if s.check_rule(&RuleKind::Sync, path) {
                for e in &mut s.journal {
                    if !e.durable && e.op.ns_parent().as_deref() == Some(path) {
                        e.lied = true;
                    }
                }
                return Err(io::Error::from_raw_os_error(EIO));
            }
            for e in &mut s.journal {
                if !e.durable && !e.lied && e.op.ns_parent().as_deref() == Some(path) {
                    e.durable = true;
                }
            }
            Ok(())
        }

        pub(super) fn dir_entries(&self, path: &Path) -> io::Result<Vec<DirEntry>> {
            let s = self.state.lock();
            if !s.image.dirs.contains(path) {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            let mut out = Vec::new();
            for file in s.image.files.keys() {
                if file.parent() == Some(path) {
                    if let Some(name) = file.file_name().and_then(|n| n.to_str()) {
                        out.push(DirEntry {
                            name: name.to_string(),
                            is_dir: false,
                        });
                    }
                }
            }
            for dir in &s.image.dirs {
                if dir.parent() == Some(path) {
                    if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                        out.push(DirEntry {
                            name: name.to_string(),
                            is_dir: true,
                        });
                    }
                }
            }
            Ok(out)
        }

        pub(super) fn exists(&self, path: &Path) -> bool {
            let s = self.state.lock();
            s.image.files.contains_key(path) || s.image.dirs.contains(path)
        }

        pub(super) fn open(self: &Arc<Self>, path: &Path, mode: OpenMode) -> io::Result<SimHandle> {
            let mut s = self.state.lock();
            s.opens += 1;
            let present = s.image.files.contains_key(path);
            match mode {
                OpenMode::Read => {
                    if !present {
                        return Err(io::Error::from(io::ErrorKind::NotFound));
                    }
                }
                OpenMode::Create => {
                    s.push(
                        Op::CreateFile {
                            path: path.to_path_buf(),
                        },
                        false,
                    );
                }
                OpenMode::ReadWrite => {
                    if !present {
                        s.push(
                            Op::CreateFile {
                                path: path.to_path_buf(),
                            },
                            false,
                        );
                    }
                }
            }
            let writable = !matches!(mode, OpenMode::Read);
            drop(s);
            Ok(SimHandle {
                fs: Arc::clone(self),
                path: path.to_path_buf(),
                pos: 0,
                writable,
            })
        }
    }

    /// Byte offsets at which to tear a write of `len` bytes.
    fn tear_points(len: usize) -> Vec<usize> {
        if len <= 1 {
            return Vec::new();
        }
        if len <= 128 {
            return (1..len).collect();
        }
        let mut cuts: BTreeSet<usize> = (1..32).map(|i| i * len / 32).collect();
        for sector in (512..len).step_by(512) {
            cuts.insert(sector);
        }
        cuts.insert(1);
        cuts.insert(len - 1);
        cuts.retain(|&c| c > 0 && c < len);
        cuts.into_iter().collect()
    }

    /// An open handle into a [`SimFs`] file.
    #[derive(Debug)]
    pub(super) struct SimHandle {
        fs: Arc<SimFs>,
        path: PathBuf,
        pos: u64,
        writable: bool,
    }

    impl SimHandle {
        pub(super) fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let mut s = self.fs.state.lock();
            if s.check_rule(&RuleKind::Read, &self.path) {
                return Err(io::Error::from_raw_os_error(EIO));
            }
            let data = s
                .image
                .files
                .get(&self.path)
                .ok_or(io::ErrorKind::NotFound)?;
            let start = (self.pos as usize).min(data.len());
            let n = (data.len() - start).min(buf.len());
            buf[..n].copy_from_slice(&data[start..start + n]);
            self.pos += n as u64;
            Ok(n)
        }

        pub(super) fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.writable {
                return Err(io::Error::from(io::ErrorKind::PermissionDenied));
            }
            let mut s = self.fs.state.lock();
            if s.check_rule(&RuleKind::Write, &self.path) {
                return Err(io::Error::from_raw_os_error(EIO));
            }
            let grow = {
                let len = s.image.files.get(&self.path).map_or(0, Vec::len) as u64;
                (self.pos + buf.len() as u64).saturating_sub(len)
            };
            s.charge(grow)?;
            s.push(
                Op::Write {
                    path: self.path.clone(),
                    offset: self.pos,
                    bytes: buf.to_vec(),
                },
                false,
            );
            self.pos += buf.len() as u64;
            Ok(buf.len())
        }

        pub(super) fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
            let len = {
                let s = self.fs.state.lock();
                s.image.files.get(&self.path).map_or(0, Vec::len) as i64
            };
            let new = match pos {
                SeekFrom::Start(n) => n as i64,
                SeekFrom::End(delta) => len + delta,
                SeekFrom::Current(delta) => self.pos as i64 + delta,
            };
            if new < 0 {
                return Err(io::Error::from(io::ErrorKind::InvalidInput));
            }
            self.pos = new as u64;
            Ok(self.pos)
        }

        pub(super) fn set_len(&self, len: u64) -> io::Result<()> {
            if !self.writable {
                return Err(io::Error::from(io::ErrorKind::PermissionDenied));
            }
            let mut s = self.fs.state.lock();
            let grow = {
                let cur = s.image.files.get(&self.path).map_or(0, Vec::len) as u64;
                len.saturating_sub(cur)
            };
            s.charge(grow)?;
            s.push(
                Op::SetLen {
                    path: self.path.clone(),
                    len,
                },
                false,
            );
            Ok(())
        }

        /// fsync: promote this file's pending content ops — except any a
        /// previously *failed* fsync covered (the fsyncgate lie).
        pub(super) fn sync(&self) -> io::Result<()> {
            let mut s = self.fs.state.lock();
            s.sync_calls += 1;
            if s.check_rule(&RuleKind::Sync, &self.path) {
                let path = self.path.clone();
                for e in &mut s.journal {
                    if !e.durable && e.op.content_path() == Some(&path) {
                        e.lied = true;
                    }
                }
                return Err(io::Error::from_raw_os_error(EIO));
            }
            let path = self.path.clone();
            for e in &mut s.journal {
                if !e.durable && !e.lied && e.op.content_path() == Some(&path) {
                    e.durable = true;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer_vfs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// With the fault feature off there is nothing between callers and
    /// `std::fs` — the compile-time size assertion above proves `File`
    /// adds no bytes; this proves the free functions reach a real disk.
    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn real_fs_round_trips_through_the_free_functions() {
        let dir = tempdir("roundtrip");
        create_dir_all(&dir).unwrap();
        write(&dir.join("a"), b"hello").unwrap();
        assert_eq!(read(&dir.join("a")).unwrap(), b"hello");
        rename(&dir.join("a"), &dir.join("b")).unwrap();
        assert!(!exists(&dir.join("a")) && exists(&dir.join("b")));
        assert_eq!(read_to_string(&dir.join("b")).unwrap(), "hello");
        sync_dir(&dir).unwrap();
        let names: Vec<String> = dir_entries(&dir)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["b".to_string()]);

        let mut f = File::open_rw(&dir.join("b")).unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        f.write_all(b" world").unwrap();
        f.sync_data().unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(read_to_string(&dir.join("b")).unwrap(), "hello world");

        remove_file(&dir.join("b")).unwrap();
        remove_dir_all(&dir).unwrap();
        assert!(!exists(&dir));
    }

    /// IO health counters are monotonic and issue notes drain once.
    #[test]
    fn io_counters_accumulate_and_issues_drain() {
        let before = counters();
        note_io_error("vfs-test: synthetic".to_string());
        note_fsync_failure("vfs-test: synthetic fsync".to_string());
        let after = counters();
        assert!(after.io_errors > before.io_errors);
        assert!(after.fsync_failures > before.fsync_failures);
        // Concurrent tests drain the shared list too; retry until one of
        // our notes survives the race into our own drain.
        let survived = (0..50).any(|_| {
            note_io_error("vfs-test: drain probe".to_string());
            drain_issues().iter().any(|i| i.contains("vfs-test"))
        });
        assert!(survived, "a note must be drainable");
    }
}
