//! Storage-layer errors.

use std::fmt;

use crate::value::DataType;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    NoSuchTable(String),
    /// No column with this name exists in the table.
    NoSuchColumn {
        /// The table searched.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// A duplicate column name was used when defining a schema.
    DuplicateColumn(String),
    /// A row had the wrong number of values for the table's schema.
    ArityMismatch {
        /// The target table.
        table: String,
        /// Expected value count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A value did not conform to its column's declared type.
    TypeMismatch {
        /// The target table.
        table: String,
        /// The offending column.
        column: String,
        /// The column's declared type.
        expected: DataType,
        /// The provided value's type (or "NULL").
        got: String,
    },
    /// CSV input could not be parsed.
    Csv(String),
    /// A persisted schema file could not be parsed.
    Schema {
        /// The schema file that failed to parse.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// A persisted catalog failed integrity verification (checksum or size
    /// mismatch against the manifest, truncated file, missing manifest).
    Corrupt {
        /// The offending file or directory.
        path: String,
        /// What the verification found.
        detail: String,
    },
    /// The disk (or disk quota) is full. Split out from [`Io`] so the
    /// engine can fold it into its resource-exhaustion ladder: a commit
    /// that hits ENOSPC rolls back and publishes nothing, and retrying
    /// without freeing space is pointless.
    ///
    /// [`Io`]: StorageError::Io
    NoSpace(String),
    /// The durable handle refuses the operation until it is repaired
    /// (e.g. a scrub found corruption, or a poisoned WAL was not healed).
    Degraded(String),
    /// Underlying I/O failure (CSV import/export, persistence).
    Io(String),
    /// The data itself violates an operation's contract (e.g. a
    /// cross-reference table with NULL or conflicting keys, a dirty
    /// relation with unmapped keys). The schema is fine; the rows are not.
    InvalidData(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(t) => write!(f, "table {t:?} already exists"),
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t:?}"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
            StorageError::DuplicateColumn(c) => {
                write!(f, "duplicate column name {c:?} in schema")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for table {table:?}: expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for {table}.{column}: expected {expected}, got {got}"
            ),
            StorageError::Csv(msg) => write!(f, "CSV error: {msg}"),
            StorageError::Schema { path, message } => {
                write!(f, "schema error in {path}: {message}")
            }
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt catalog data in {path}: {detail}")
            }
            StorageError::NoSpace(msg) => write!(f, "disk full: {msg}"),
            StorageError::Degraded(msg) => write!(f, "storage degraded: {msg}"),
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Unix `errno` for "no space left on device".
const ENOSPC: i32 = 28;

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        if e.raw_os_error() == Some(ENOSPC) {
            return StorageError::NoSpace(e.to_string());
        }
        StorageError::Io(e.to_string())
    }
}
