//! Crash-safe temporary spill files for external-memory query execution.
//!
//! When an operator's working set would exceed its memory budget, the
//! engine partitions state out to disk and streams it back later (grace
//! hash join, partitioned re-aggregation, external merge sort). This
//! module owns the on-disk side of that: per-query spill directories,
//! checksummed row runs, and the garbage collection of anything a killed
//! process leaves behind.
//!
//! Layout: each executing query lazily creates one [`SpillSession`] — a
//! directory named `.spill-<pid>-<nonce>` under a base directory (the
//! database's persistence directory when it has one, the OS temp directory
//! otherwise). All of the query's run files live inside it and the whole
//! directory is removed when the session drops. A process killed
//! mid-query cannot clean up; the `.spill-*` prefix marks the orphan so
//! [`crate::persist::load_catalog_recover`] can remove it at the next
//! startup and report it in the
//! [`RecoveryReport`](crate::persist::RecoveryReport).
//!
//! File format: a run file is a sequence of length-prefixed records, one
//! row each:
//!
//! ```text
//! [u32 LE payload length][u64 LE fnv1a64(payload)][payload]
//! payload = [u32 LE value count][tagged values…]
//! ```
//!
//! Values use a one-byte tag (`0` NULL, `1` bool, `2` i64, `3` f64 bits,
//! `4` length-prefixed UTF-8 text, `5` i32 date days) — floats round-trip
//! bit-exactly, including NaNs and `-0.0`. Every record is verified on
//! read; a torn write or bit flip surfaces as a typed
//! [`StorageError::Corrupt`] naming the file, never as silently wrong
//! query results. Spill data is scratch (a crash loses the query anyway),
//! so writes are buffered but **not** fsynced.
//!
//! Fault-injection points (active only with the `fault` feature, see
//! [`crate::fault`]): `spill::create` before a session directory is
//! created, `spill::write` on every write into a run file, `spill::read`
//! before every record read, `spill::remove` before a run file or session
//! directory is deleted (a failed remove leaves an orphan for recovery to
//! collect, exactly like a kill would).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StorageError;
use crate::fault;
use crate::persist::fnv1a64;
use crate::table::Row;
use crate::value::Value;
use crate::vfs;

/// Prefix of per-query spill directories. Anything matching
/// `<base>/.spill-*` is a spill session — live while its query runs, an
/// orphan to be garbage-collected otherwise.
pub const SPILL_DIR_PREFIX: &str = ".spill-";

/// Bytes of framing per record (u32 length + u64 checksum).
const RECORD_HEADER_BYTES: u64 = 12;

/// Upper bound on one record's payload; anything larger in a length
/// prefix means the file is corrupt (a single row never approaches this).
const MAX_PAYLOAD_BYTES: u32 = 1 << 30;

fn corrupt(path: &Path, detail: String) -> StorageError {
    StorageError::Corrupt {
        path: path.display().to_string(),
        detail,
    }
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_DATE: u8 = 5;

pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.days().to_le_bytes());
        }
    }
}

/// Read `N` bytes from `buf` at `*pos`, advancing the cursor.
pub(crate) fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    n: usize,
    path: &Path,
) -> Result<&'a [u8], StorageError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| {
            corrupt(
                path,
                format!("spill record truncated: wanted {n} bytes at offset {pos}"),
            )
        })?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

pub(crate) fn take_arr<const N: usize>(
    buf: &[u8],
    pos: &mut usize,
    path: &Path,
) -> Result<[u8; N], StorageError> {
    let slice = take(buf, pos, N, path)?;
    slice
        .try_into()
        .map_err(|_| corrupt(path, "spill record slice length mismatch".into()))
}

pub(crate) fn decode_value(
    buf: &[u8],
    pos: &mut usize,
    path: &Path,
) -> Result<Value, StorageError> {
    let tag = take(buf, pos, 1, path)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(take(buf, pos, 1, path)?[0] != 0),
        TAG_INT => Value::Int(i64::from_le_bytes(take_arr(buf, pos, path)?)),
        TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(take_arr(
            buf, pos, path,
        )?))),
        TAG_TEXT => {
            let len = u32::from_le_bytes(take_arr(buf, pos, path)?) as usize;
            let bytes = take(buf, pos, len, path)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| corrupt(path, "spilled text value is not valid UTF-8".into()))?;
            Value::Text(s.to_string())
        }
        TAG_DATE => Value::Date(crate::date::Date::from_days(i32::from_le_bytes(take_arr(
            buf, pos, path,
        )?))),
        other => return Err(corrupt(path, format!("unknown spill value tag {other}"))),
    })
}

fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 12 * row.len());
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        encode_value(v, &mut out);
    }
    out
}

fn decode_row(payload: &[u8], path: &Path) -> Result<Row, StorageError> {
    let mut pos = 0;
    let count = u32::from_le_bytes(take_arr(payload, &mut pos, path)?) as usize;
    // Cap the pre-allocation: the count is attacker/corruption-controlled.
    let mut row = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        row.push(decode_value(payload, &mut pos, path)?);
    }
    if pos != payload.len() {
        return Err(corrupt(
            path,
            format!(
                "spill record has {} trailing bytes after its {count} values",
                payload.len() - pos
            ),
        ));
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Monotone process-wide nonce so concurrent sessions in one process get
/// distinct directories.
static SESSION_NONCE: AtomicU64 = AtomicU64::new(0);

/// A per-query spill directory. Created lazily by the first operator that
/// spills; removed (with all its run files) when dropped. A process
/// killed before the drop leaves the directory behind as an orphan for
/// startup recovery to collect.
#[derive(Debug)]
pub struct SpillSession {
    dir: PathBuf,
    next_file: AtomicU64,
}

impl SpillSession {
    /// Create a fresh spill directory under `base` (created if missing).
    pub fn create_in(base: &Path) -> Result<SpillSession, StorageError> {
        fault::trigger("spill::create")?;
        vfs::create_dir_all(base)?;
        let nonce = SESSION_NONCE.fetch_add(1, Ordering::Relaxed);
        let dir = base.join(format!("{SPILL_DIR_PREFIX}{}-{nonce}", std::process::id()));
        vfs::create_dir_all(&dir)?;
        Ok(SpillSession {
            dir,
            next_file: AtomicU64::new(0),
        })
    }

    /// The session's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Open a fresh run file for writing. The file counter is atomic, so
    /// writers may be opened from several threads of one query at once
    /// (e.g. per-worker runs under the morsel-parallel executor) without
    /// name collisions.
    pub fn writer(&self) -> Result<SpillWriter, StorageError> {
        let n = self.next_file.fetch_add(1, Ordering::Relaxed);
        SpillWriter::create(self.dir.join(format!("run-{n:06}.spill")))
    }

    /// Like [`SpillSession::writer`], but tags the file name with an
    /// owner label (a worker index, an operator name) so the runs of
    /// concurrent producers can be told apart on disk when debugging a
    /// crash or an orphaned session. Labels are sanitized to
    /// `[A-Za-z0-9_-]`; the atomic counter still guarantees uniqueness
    /// even when two producers pass the same label.
    pub fn writer_labeled(&self, label: &str) -> Result<SpillWriter, StorageError> {
        let tag: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(32)
            .collect();
        let n = self.next_file.fetch_add(1, Ordering::Relaxed);
        SpillWriter::create(self.dir.join(format!("run-{n:06}-{tag}.spill")))
    }

    /// Remove the session directory and everything in it. Called
    /// automatically on drop (best-effort there); explicit callers get the
    /// error.
    pub fn cleanup(&self) -> Result<(), StorageError> {
        fault::trigger("spill::remove")?;
        if vfs::exists(&self.dir) {
            vfs::remove_dir_all(&self.dir)?;
        }
        Ok(())
    }
}

impl Drop for SpillSession {
    fn drop(&mut self) {
        let _ = self.cleanup();
    }
}

// ---------------------------------------------------------------------------
// Writer / file / reader
// ---------------------------------------------------------------------------

/// Append-only writer for one run file.
#[derive(Debug)]
pub struct SpillWriter {
    w: fault::FaultWriter<BufWriter<vfs::File>>,
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillWriter {
    fn create(path: PathBuf) -> Result<SpillWriter, StorageError> {
        let file = vfs::File::create(&path)?;
        Ok(SpillWriter {
            w: fault::FaultWriter::new(BufWriter::new(file), "spill::write"),
            path,
            rows: 0,
            bytes: 0,
        })
    }

    /// Append one row; returns the bytes written (framing included) so the
    /// caller can charge its disk budget.
    pub fn write_row(&mut self, row: &[Value]) -> Result<u64, StorageError> {
        let payload = encode_row(row);
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        let n = RECORD_HEADER_BYTES + payload.len() as u64;
        self.rows += 1;
        self.bytes += n;
        Ok(n)
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run, producing a readable [`SpillFile`].
    pub fn finish(self) -> Result<SpillFile, StorageError> {
        let SpillWriter {
            mut w,
            path,
            rows,
            bytes,
        } = self;
        w.flush()?;
        Ok(SpillFile { path, rows, bytes })
    }
}

/// A sealed run file. Removed from disk when dropped, so partition files
/// release their space as soon as the executor is done with them.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillFile {
    /// Number of rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Total file size in bytes (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Open a sequential reader over the run.
    pub fn reader(&self) -> Result<SpillReader, StorageError> {
        Ok(SpillReader {
            r: BufReader::new(vfs::File::open(&self.path)?),
            path: self.path.clone(),
            remaining: self.rows,
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // An injected remove fault leaves the file behind, simulating a
        // crash; startup recovery collects it with the rest of the session.
        if fault::trigger("spill::remove").is_ok() {
            let _ = vfs::remove_file(&self.path);
        }
    }
}

/// Sequential, checksum-verifying reader over one run file.
#[derive(Debug)]
pub struct SpillReader {
    r: BufReader<vfs::File>,
    path: PathBuf,
    remaining: u64,
}

impl SpillReader {
    /// Read the next row, or `None` at the end of the run. Every record's
    /// checksum is verified; corruption is a typed error.
    pub fn next_row(&mut self) -> Result<Option<Row>, StorageError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        fault::trigger("spill::read")?;
        let mut header = [0u8; RECORD_HEADER_BYTES as usize];
        self.r
            .read_exact(&mut header)
            .map_err(|e| corrupt(&self.path, format!("truncated spill record header: {e}")))?;
        let mut pos = 0;
        let len = u32::from_le_bytes(take_arr(&header, &mut pos, &self.path)?);
        let expected = u64::from_le_bytes(take_arr(&header, &mut pos, &self.path)?);
        if len > MAX_PAYLOAD_BYTES {
            return Err(corrupt(
                &self.path,
                format!("implausible spill record length {len} (corrupt length prefix?)"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.r
            .read_exact(&mut payload)
            .map_err(|e| corrupt(&self.path, format!("truncated spill record payload: {e}")))?;
        let actual = fnv1a64(&payload);
        if actual != expected {
            return Err(corrupt(
                &self.path,
                format!(
                    "spill record checksum mismatch: header says fnv1a64:{expected:016x}, \
                     payload hashes to fnv1a64:{actual:016x}"
                ),
            ));
        }
        self.remaining -= 1;
        Ok(Some(decode_row(&payload, &self.path)?))
    }
}

/// Names of orphaned `.spill-*` session directories directly under `dir`.
pub fn list_spill_dirs(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = vfs::dir_entries(dir) {
        for entry in entries {
            if entry.is_dir && entry.name.starts_with(SPILL_DIR_PREFIX) {
                out.push(entry.name);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use std::fs;

    fn tempbase(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer_spill_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn gnarly_rows() -> Vec<Row> {
        vec![
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(i64::MIN),
                Value::Float(f64::NAN),
                Value::Text(String::new()),
                Value::Date(Date::from_days(-719162)),
            ],
            vec![
                Value::Float(-0.0),
                Value::Text("comma, \"quote\"\nnewline\u{1F984}".into()),
                Value::Int(0),
            ],
            vec![],
            vec![Value::Text("x".repeat(10_000))],
        ]
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn roundtrip_preserves_every_value_shape() {
        let base = tempbase("roundtrip");
        let session = SpillSession::create_in(&base).unwrap();
        let mut w = session.writer().unwrap();
        let rows = gnarly_rows();
        let mut written = 0;
        for row in &rows {
            written += w.write_row(row).unwrap();
        }
        let file = w.finish().unwrap();
        assert_eq!(file.rows(), rows.len() as u64);
        assert_eq!(file.bytes(), written);
        let mut r = file.reader().unwrap();
        for expected in &rows {
            let got = r.next_row().unwrap().unwrap();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected) {
                match (g, e) {
                    // NaN != NaN under PartialEq; compare bits.
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits())
                    }
                    _ => assert_eq!(g, e),
                }
            }
        }
        assert!(r.next_row().unwrap().is_none());
        drop(file);
        drop(session);
        assert!(list_spill_dirs(&base).is_empty(), "session must clean up");
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn concurrent_labeled_writers_share_one_session_safely() {
        // The morsel-parallel executor hands one SpillSession to several
        // worker threads; run files must never collide and every run must
        // read back intact regardless of interleaving.
        let base = tempbase("concurrent");
        let session = SpillSession::create_in(&base).unwrap();
        const WORKERS: usize = 8;
        const ROWS: u64 = 200;
        let files: Vec<SpillFile> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let session = &session;
                    s.spawn(move || {
                        let mut writer = session.writer_labeled(&format!("worker-{w}")).unwrap();
                        for i in 0..ROWS {
                            writer
                                .write_row(&[Value::Int(w as i64), Value::Int(i as i64)])
                                .unwrap();
                        }
                        writer.finish().unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Distinct paths for every writer…
        let names: std::collections::HashSet<_> = fs::read_dir(session.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), WORKERS, "{names:?}");
        // …and each run replays exactly its own rows, in order.
        for file in files {
            let mut r = file.reader().unwrap();
            let first = r.next_row().unwrap().unwrap();
            let worker = first[0].clone();
            assert_eq!(first[1], Value::Int(0));
            for i in 1..ROWS {
                let row = r.next_row().unwrap().unwrap();
                assert_eq!(row[0], worker, "rows interleaved across writers");
                assert_eq!(row[1], Value::Int(i as i64));
            }
            assert!(r.next_row().unwrap().is_none());
        }
        drop(session);
        assert!(list_spill_dirs(&base).is_empty());
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn labels_are_sanitized_for_the_filesystem() {
        let base = tempbase("label");
        let session = SpillSession::create_in(&base).unwrap();
        let mut w = session.writer_labeled("agg/merge pass #2").unwrap();
        w.write_row(&[Value::Int(1)]).unwrap();
        let file = w.finish().unwrap();
        let name = fs::read_dir(session.dir())
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .file_name();
        let name = name.to_string_lossy().into_owned();
        assert_eq!(name, "run-000000-agg_merge_pass__2.spill", "{name}");
        assert_eq!(file.reader().unwrap().next_row().unwrap().unwrap().len(), 1);
        drop(file);
        drop(session);
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn bit_flip_is_detected_as_corruption() {
        let base = tempbase("bitflip");
        let session = SpillSession::create_in(&base).unwrap();
        let mut w = session.writer().unwrap();
        w.write_row(&[Value::Int(42), Value::Text("hello".into())])
            .unwrap();
        let file = w.finish().unwrap();
        let path = session.dir().join("run-000000.spill");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        let err = file.reader().unwrap().next_row().unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { detail, .. } if detail.contains("checksum")),
            "{err:?}"
        );
        drop(file);
        drop(session);
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn truncation_is_detected() {
        let base = tempbase("truncate");
        let session = SpillSession::create_in(&base).unwrap();
        let mut w = session.writer().unwrap();
        w.write_row(&[Value::Text("a row long enough to truncate".into())])
            .unwrap();
        let file = w.finish().unwrap();
        let path = session.dir().join("run-000000.spill");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = file.reader().unwrap().next_row().unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { detail, .. } if detail.contains("truncated")),
            "{err:?}"
        );
        drop(file);
        drop(session);
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn sessions_get_distinct_directories() {
        let base = tempbase("distinct");
        let a = SpillSession::create_in(&base).unwrap();
        let b = SpillSession::create_in(&base).unwrap();
        assert_ne!(a.dir(), b.dir());
        assert_eq!(list_spill_dirs(&base).len(), 2);
        drop(a);
        drop(b);
        assert!(list_spill_dirs(&base).is_empty());
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn codec_rejects_trailing_garbage() {
        let mut payload = encode_row(&[Value::Int(1)]);
        payload.push(0xAB);
        let err = decode_row(&payload, Path::new("x")).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { detail, .. } if detail.contains("trailing")),
            "{err:?}"
        );
    }
}
