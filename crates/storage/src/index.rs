//! Equi hash indexes.
//!
//! The paper's experimental setup built indexes on each dirty relation's
//! identifier column (Section 5.3). [`HashIndex`] is the analogue here: a
//! value → row-positions map used for cluster extraction in `conquer-core`
//! and for index nested-loop joins in the engine.

use std::collections::HashMap;

use crate::table::Row;
use crate::value::Value;

/// A hash index mapping a column value to the positions of rows holding it.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    column: usize,
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// Build an index on column position `column` over `rows`.
    pub fn build(column: usize, rows: &[Row]) -> Self {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            map.entry(row[column].clone()).or_default().push(i);
        }
        HashIndex { column, map }
    }

    /// The indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Row positions whose indexed column equals `key` (empty if none).
    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, row positions)` groups in unspecified order.
    pub fn groups(&self) -> impl Iterator<Item = (&Value, &[usize])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Keys in sorted order (deterministic iteration for reproducible runs).
    pub fn sorted_keys(&self) -> Vec<&Value> {
        let mut keys: Vec<&Value> = self.map.keys().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec!["c1".into(), 1.into()],
            vec!["c2".into(), 2.into()],
            vec!["c1".into(), 3.into()],
        ]
    }

    #[test]
    fn lookup_groups_duplicates() {
        let idx = HashIndex::build(0, &rows());
        assert_eq!(idx.lookup(&"c1".into()), &[0, 2]);
        assert_eq!(idx.lookup(&"c2".into()), &[1]);
        assert_eq!(idx.lookup(&"zz".into()), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn sorted_keys_deterministic() {
        let idx = HashIndex::build(0, &rows());
        let keys: Vec<String> = idx.sorted_keys().iter().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["c1", "c2"]);
    }

    #[test]
    fn empty_rows() {
        let idx = HashIndex::build(0, &[]);
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.lookup(&Value::Null), &[] as &[usize]);
    }

    #[test]
    fn null_keys_are_grouped() {
        let rows = vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(1)]];
        let idx = HashIndex::build(0, &rows);
        assert_eq!(idx.lookup(&Value::Null), &[0, 1]);
    }
}
