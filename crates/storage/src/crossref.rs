//! Cross-reference ingestion at the catalog level (Section 2.1 of the
//! paper).
//!
//! External duplicate-detection tools (the paper names WebSphere
//! QualityStage) emit *cross-reference tables* mapping each tuple's
//! original key to the identifier of the duplicate cluster it belongs to.
//! [`apply_crossref`] applies such a mapping to a dirty relation in place:
//! every row's identifier column is set from the mapping of its original
//! key, turning the matcher's output into the identifier-column form the
//! rest of the system consumes.
//!
//! The logic lives here (rather than in `conquer-core`, which re-exports
//! it) so the query engine can execute `APPLY CROSSREF` statements without
//! depending on the core crate — the dependency arrow points the other
//! way.

use std::collections::HashMap;

use crate::catalog::Catalog;
use crate::error::StorageError;
use crate::value::Value;

/// Apply a cross-reference table to a dirty relation.
///
/// * `table.key_column` — the relation's original (per-tuple) key;
/// * `xref.key/xref.id` — the matcher's mapping `original key → cluster id`;
/// * `table.id_column` — where the cluster identifier is written.
///
/// Every key of `table` must be mapped (a matcher that has seen the
/// relation maps all of it); unmapped keys are an error naming the first
/// offender. Duplicate mappings with conflicting ids are rejected.
/// Returns the number of distinct clusters assigned.
pub fn apply_crossref(
    catalog: &mut Catalog,
    table: &str,
    key_column: &str,
    id_column: &str,
    xref_table: &str,
    xref_key_column: &str,
    xref_id_column: &str,
) -> Result<usize, StorageError> {
    // Build the mapping first (immutable borrow).
    let mapping: HashMap<Value, Value> = {
        let xref = catalog.table(xref_table)?;
        let kcol = xref.column_index(xref_key_column)?;
        let icol = xref.column_index(xref_id_column)?;
        let mut map = HashMap::with_capacity(xref.len());
        for (i, row) in xref.rows().iter().enumerate() {
            let key = row[kcol].clone();
            if key.is_null() {
                return Err(StorageError::InvalidData(format!(
                    "cross-reference table {xref_table:?} has a NULL key in row {i}"
                )));
            }
            let id = row[icol].clone();
            if let Some(prev) = map.insert(key.clone(), id.clone()) {
                if prev != id {
                    return Err(StorageError::InvalidData(format!(
                        "cross-reference maps key {key} to both {prev} and {id}"
                    )));
                }
            }
        }
        map
    };

    // Resolve the ids for every row before mutating.
    let ids: Vec<Value> = {
        let t = catalog.table(table)?;
        let kcol = t.column_index(key_column)?;
        t.rows()
            .iter()
            .enumerate()
            .map(|(i, row)| {
                mapping.get(&row[kcol]).cloned().ok_or_else(|| {
                    StorageError::InvalidData(format!(
                        "key {} of {table:?} (row {i}) is not in the cross-reference table",
                        row[kcol]
                    ))
                })
            })
            .collect::<Result<_, StorageError>>()?
    };
    let distinct: std::collections::HashSet<&Value> = ids.iter().collect();
    let count = distinct.len();

    catalog
        .table_mut(table)?
        .update_column(id_column, |i, _| ids[i].clone())?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::value::DataType;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        let mut customer = Table::new(
            "customer",
            Schema::from_pairs([
                ("id", DataType::Text),
                ("custkey", DataType::Int),
                ("name", DataType::Text),
            ])
            .unwrap(),
        );
        for (key, name) in [(101, "ann"), (102, "anne"), (103, "bob")] {
            customer
                .insert(vec![Value::text(""), Value::Int(key), Value::text(name)])
                .unwrap();
        }
        let mut xref = Table::new(
            "xref",
            Schema::from_pairs([("orig", DataType::Int), ("cluster", DataType::Text)]).unwrap(),
        );
        for (key, cluster) in [(101, "c1"), (102, "c1"), (103, "c2")] {
            xref.insert(vec![Value::Int(key), Value::text(cluster)])
                .unwrap();
        }
        cat.add_table(customer).unwrap();
        cat.add_table(xref).unwrap();
        cat
    }

    #[test]
    fn assigns_cluster_identifiers() {
        let mut cat = setup();
        let clusters = apply_crossref(
            &mut cat, "customer", "custkey", "id", "xref", "orig", "cluster",
        )
        .unwrap();
        assert_eq!(clusters, 2);
        let ids: Vec<String> = cat
            .table("customer")
            .unwrap()
            .rows()
            .iter()
            .map(|r| r[0].to_string())
            .collect();
        assert_eq!(ids, vec!["c1", "c1", "c2"]);
    }

    #[test]
    fn unmapped_key_is_invalid_data() {
        let mut cat = setup();
        cat.table_mut("customer")
            .unwrap()
            .insert(vec![Value::text(""), Value::Int(999), Value::text("zed")])
            .unwrap();
        let err = apply_crossref(
            &mut cat, "customer", "custkey", "id", "xref", "orig", "cluster",
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InvalidData(_)), "{err}");
        assert!(err.to_string().contains("999"), "{err}");
    }

    #[test]
    fn conflicting_mapping_is_invalid_data() {
        let mut cat = setup();
        cat.table_mut("xref")
            .unwrap()
            .insert(vec![Value::Int(101), Value::text("c9")])
            .unwrap();
        let err = apply_crossref(
            &mut cat, "customer", "custkey", "id", "xref", "orig", "cluster",
        )
        .unwrap_err();
        assert!(err.to_string().contains("both"), "{err}");
    }
}
