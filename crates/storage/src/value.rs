//! The typed value model.
//!
//! [`Value`] is the single dynamic value type flowing through the engine:
//! table cells, expression results, join/group/sort keys. [`DataType`] is its
//! static counterpart used in schemas.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::date::Date;

/// Static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Text,
    /// Calendar date.
    Date,
}

impl DataType {
    /// Human-readable SQL-ish name of the type.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically-typed SQL value.
///
/// `Value` implements a *total* order and consistent `Eq`/`Hash` so it can be
/// used directly as a key in hash joins, hash aggregation and sorts:
///
/// * `Null` sorts before everything else and is equal to itself (grouping
///   semantics; three-valued comparison logic is the engine's concern).
/// * `Int` and `Float` are ordered numerically; when numerically equal, the
///   type tag breaks the tie so that `Ord` equality coincides with the
///   structural `Eq`.
/// * `Float` uses `f64::total_cmp`, which gives NaN a definite position.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// String value.
    Text(String),
    /// Date value.
    Date(Date),
}

impl Value {
    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// View as `f64` if numeric (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// View as `i64` if integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as `&str` if text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// View as `bool` if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as [`Date`] if a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Whether this value is an instance of `ty` (NULL matches every type).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == ty || (t == DataType::Int && ty == DataType::Float),
        }
    }

    /// Coerce into `ty` where a lossless conversion exists (`Int`→`Float`).
    /// Returns the value unchanged when it already conforms.
    pub fn coerce_to(self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), DataType::Float) => Some(Value::Float(i as f64)),
            (v, t) if v.data_type() == Some(t) => Some(v),
            _ => None,
        }
    }

    /// SQL comparison: numeric types compare numerically, `Null` is
    /// incomparable (returns `None`), mismatched types are incomparable.
    ///
    /// This is the comparison used by WHERE predicates; the total [`Ord`]
    /// below is for sorting/grouping.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            // A date and a text literal in date format compare chronologically,
            // which lets queries write `o_orderdate < '1995-03-15'`.
            (Value::Date(a), Value::Text(b)) => b.parse::<Date>().ok().map(|b| a.cmp(&b)),
            (Value::Text(a), Value::Date(b)) => a.parse::<Date>().ok().map(|a| a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality as three-valued logic: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Rank of the type tag for the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric family shares a rank
            Value::Text(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            // Numeric family: compare numerically; break numeric ties on the
            // type tag (Int < Float) so Ord-equality implies structural Eq.
            (a, b) => {
                // Equal type_rank and none of the arms above matched, so both
                // sides are numeric; a non-numeric pair cannot reach here.
                let (Some(fa), Some(fb)) = (a.as_f64(), b.as_f64()) else {
                    return Ordering::Equal;
                };
                // Use total_cmp on the float images except that an exact Int
                // must compare equal to itself; i64→f64 can lose precision for
                // |i| > 2^53, so compare Int/Int exactly first.
                if let (Value::Int(x), Value::Int(y)) = (a, b) {
                    return x.cmp(y);
                }
                match fa.total_cmp(&fb) {
                    Ordering::Equal => {
                        let ta = matches!(a, Value::Float(_)) as u8;
                        let tb = matches!(b, Value::Float(_)) as u8;
                        match ta.cmp(&tb) {
                            Ordering::Equal => {
                                // Same type & numerically equal: for floats,
                                // total_cmp Equal means identical bits.
                                Ordering::Equal
                            }
                            o => o,
                        }
                    }
                    o => o,
                }
            }
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_sorts_first_and_groups_with_itself() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn numeric_cross_type_order() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // Numerically equal, but tie broken by type tag: Int < Float.
        assert!(Value::Int(1) < Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn sql_cmp_coerces_numerics() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Text("a".into()).sql_eq(&Value::Int(1)), None);
    }

    #[test]
    fn date_text_comparison() {
        let d = Value::Date("1995-03-15".parse().unwrap());
        assert_eq!(d.sql_cmp(&Value::text("1995-03-16")), Some(Ordering::Less));
        assert_eq!(
            Value::text("1995-03-16").sql_cmp(&d),
            Some(Ordering::Greater)
        );
        assert_eq!(d.sql_cmp(&Value::text("not a date")), None);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // NaN has a definite position (after +inf in total_cmp).
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, Value::Float(f64::NAN));
    }

    #[test]
    fn negative_zero_distinct_in_total_order_consistent_hash() {
        let pz = Value::Float(0.0);
        let nz = Value::Float(-0.0);
        assert!(nz < pz);
        assert_ne!(pz, nz);
        assert_ne!(h(&pz), h(&nz));
    }

    #[test]
    fn eq_implies_same_hash() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(42),
            Value::Float(3.25),
            Value::text("abc"),
            Value::Date(Date::from_days(9000)),
        ];
        for v in &vals {
            assert_eq!(v, &v.clone());
            assert_eq!(h(v), h(&v.clone()));
        }
    }

    #[test]
    fn large_int_precision_preserved_in_order() {
        let a = Value::Int(i64::MAX - 1);
        let b = Value::Int(i64::MAX);
        assert!(a < b); // would be equal if compared via f64
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Int(2).coerce_to(DataType::Float),
            Some(Value::Float(2.0))
        );
        assert_eq!(Value::Null.coerce_to(DataType::Int), Some(Value::Null));
        assert_eq!(Value::text("x").coerce_to(DataType::Int), None);
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }
}
