//! The table catalog.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;

/// A named collection of tables.
///
/// Uses a `BTreeMap` so iteration order (and hence anything derived from it,
/// e.g. candidate-database enumeration order) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a new empty table with the given schema.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> Result<&mut Table, StorageError> {
        let name = name.into().to_ascii_lowercase();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let table = Table::new(name.clone(), schema);
        Ok(self.tables.entry(name).or_insert(table))
    }

    /// Register an already-populated table (replacing any previous one with
    /// the same name is an error).
    pub fn add_table(&mut self, table: Table) -> Result<(), StorageError> {
        if self.tables.contains_key(table.name()) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    /// Replace a table unconditionally (used when swapping in candidate
    /// databases during naive clean-answer evaluation).
    pub fn replace_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Fetch a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        let key = name.to_ascii_lowercase();
        self.tables.get(&key).ok_or(StorageError::NoSuchTable(key))
    }

    /// Mutable access to a table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get_mut(&key)
            .ok_or(StorageError::NoSuchTable(key))
    }

    /// True when a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, StorageError> {
        let key = name.to_ascii_lowercase();
        self.tables
            .remove(&key)
            .ok_or(StorageError::NoSuchTable(key))
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all tables (reported by the data generator).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn create_lookup_drop() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("a", DataType::Int)]).unwrap();
        cat.create_table("T", schema.clone()).unwrap();
        assert!(cat.contains("t"));
        assert!(cat.table("T").is_ok());
        assert!(matches!(
            cat.create_table("t", schema),
            Err(StorageError::TableExists(_))
        ));
        cat.drop_table("T").unwrap();
        assert!(!cat.contains("t"));
        assert!(matches!(cat.table("t"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn names_sorted() {
        let mut cat = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            cat.create_table(n, Schema::default()).unwrap();
        }
        assert_eq!(cat.table_names(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn replace_table_overwrites() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("a", DataType::Int)]).unwrap();
        cat.create_table("t", schema.clone()).unwrap();
        let mut t2 = Table::new("t", schema);
        t2.insert(vec![1.into()]).unwrap();
        cat.replace_table(t2);
        assert_eq!(cat.table("t").unwrap().len(), 1);
    }
}
