//! Catalog persistence: save/load a whole catalog as a directory of
//! `<table>.schema` + `<table>.csv` files.
//!
//! The format is deliberately boring — line-oriented schemas and RFC-4180
//! CSV — so persisted databases are diffable, hand-editable, and loadable
//! by any external tool. The benchmark harnesses use the same CSV writer
//! for their measured series.

use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::catalog::Catalog;
use crate::csv;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::DataType;

/// File extension of schema files.
pub const SCHEMA_EXT: &str = "schema";
/// File extension of data files.
pub const DATA_EXT: &str = "csv";

fn type_name(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Text => "text",
        DataType::Date => "date",
    }
}

fn parse_type(s: &str) -> Result<DataType, StorageError> {
    Ok(match s {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "text" => DataType::Text,
        "date" => DataType::Date,
        other => {
            return Err(StorageError::Csv(format!(
                "unknown type {other:?} in schema file"
            )))
        }
    })
}

/// Save every table of `catalog` into `dir` (created if missing). Existing
/// files for the same table names are overwritten; unrelated files are left
/// alone.
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<(), StorageError> {
    fs::create_dir_all(dir)?;
    for table in catalog.tables() {
        let schema_path = dir.join(format!("{}.{SCHEMA_EXT}", table.name()));
        let mut text = String::new();
        for c in table.schema().columns() {
            text.push_str(&format!("{} {}\n", c.name(), type_name(c.data_type())));
        }
        fs::write(schema_path, text)?;

        let data_path = dir.join(format!("{}.{DATA_EXT}", table.name()));
        let mut out = BufWriter::new(fs::File::create(data_path)?);
        csv::write_table(table, &mut out)?;
    }
    Ok(())
}

/// Load a catalog from a directory written by [`save_catalog`]: every
/// `<name>.schema` file (with its `<name>.csv`) becomes a table.
pub fn load_catalog(dir: &Path) -> Result<Catalog, StorageError> {
    let mut catalog = Catalog::new();
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(SCHEMA_EXT) {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    for name in names {
        let schema_text = fs::read_to_string(dir.join(format!("{name}.{SCHEMA_EXT}")))?;
        let mut pairs = Vec::new();
        for line in schema_text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (col, ty) = line.split_once(' ').ok_or_else(|| {
                StorageError::Csv(format!("malformed schema line {line:?} for table {name:?}"))
            })?;
            pairs.push((col.to_string(), parse_type(ty.trim())?));
        }
        let schema = Schema::from_pairs(pairs)?;
        let data_path = dir.join(format!("{name}.{DATA_EXT}"));
        let table = if data_path.exists() {
            let reader = BufReader::new(fs::File::open(data_path)?);
            csv::read_table(&name, schema, reader)?
        } else {
            crate::table::Table::new(&name, schema)
        };
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::Value;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("conquer_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(
            "customer",
            Schema::from_pairs([
                ("id", DataType::Text),
                ("income", DataType::Int),
                ("prob", DataType::Float),
                ("since", DataType::Date),
                ("active", DataType::Bool),
            ])
            .unwrap(),
        );
        t.insert(vec![
            "c1".into(),
            120000.into(),
            0.9.into(),
            Value::Date("1999-01-02".parse().unwrap()),
            true.into(),
        ])
        .unwrap();
        t.insert(vec![
            Value::Null,
            Value::Null,
            0.1.into(),
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        cat.add_table(t).unwrap();
        cat.create_table("empty", Schema::from_pairs([("x", DataType::Int)]).unwrap())
            .unwrap();
        cat
    }

    #[test]
    fn roundtrip_all_types_and_nulls() {
        let dir = tempdir("roundtrip");
        let cat = sample();
        save_catalog(&cat, &dir).unwrap();
        let back = load_catalog(&dir).unwrap();
        assert_eq!(back.table_names(), vec!["customer", "empty"]);
        let (a, b) = (
            cat.table("customer").unwrap(),
            back.table("customer").unwrap(),
        );
        assert_eq!(a.schema(), b.schema());
        // NULL text round-trips as empty → NULL; all other values exact.
        assert_eq!(a.rows()[0], b.rows()[0]);
        assert!(b.rows()[1][0].is_null());
        assert_eq!(back.table("empty").unwrap().len(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        let dir = tempdir("missing");
        assert!(load_catalog(&dir).is_err());
    }

    #[test]
    fn malformed_schema_rejected() {
        let dir = tempdir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.schema"), "no-type-here\n").unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::write(dir.join("bad.schema"), "col weirdtype\n").unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_idempotent() {
        let dir = tempdir("idem");
        let cat = sample();
        save_catalog(&cat, &dir).unwrap();
        save_catalog(&cat, &dir).unwrap();
        let back = load_catalog(&dir).unwrap();
        assert_eq!(back.table("customer").unwrap().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}
