//! Crash-safe catalog persistence.
//!
//! A catalog is saved as a directory of `<table>.schema` + `<table>.csv`
//! files — deliberately boring line-oriented schemas and RFC-4180 CSV, so
//! persisted databases stay diffable and loadable by external tools. What
//! changed from the naive format is *how* those files reach disk:
//!
//! ```text
//! <dir>/
//!   CURRENT            # name of the committed epoch, e.g. "v000007"
//!   v000007/           # one complete, immutable snapshot
//!     MANIFEST         # "fnv1a64:<hex> <size> <file>" per file
//!     walseq           # last WAL sequence folded into this epoch
//!     customer.schema
//!     customer.csv
//!   wal.log            # committed writes newer than the epoch (crate::wal)
//!   .tmp-v000008-1234/ # in-flight save (ignored by loads, gc'd later)
//! ```
//!
//! Individual writes do not rewrite epochs: they append to the
//! [write-ahead log](crate::wal) and are replayed by both loaders on top
//! of the epoch snapshot, gated on the epoch's `walseq`. [`save_catalog`]
//! doubles as the checkpoint: it folds the current catalog (epoch + WAL)
//! into a fresh epoch and truncates the log.
//!
//! [`save_catalog`] never touches the committed snapshot: it writes every
//! file into a fresh temp directory (fsyncing each), writes a checksum
//! `MANIFEST`, atomically renames the temp directory to the next epoch,
//! and finally swaps the `CURRENT` pointer with an atomic rename. A crash
//! at *any* point — mid-file, mid-manifest, between the renames — leaves
//! `CURRENT` pointing at the previous fully-consistent epoch, which
//! [`load_catalog`] will happily load. Only after the commit are the old
//! epoch and any stale temp directories garbage-collected.
//!
//! [`load_catalog`] verifies every file of the committed epoch against the
//! manifest (size + FNV-1a checksum) and fails with a typed
//! [`StorageError::Corrupt`] naming the offending file — corruption is
//! *reported*, never silently dropped. [`load_catalog_recover`] is the
//! lenient entry point: it falls back to the newest loadable epoch and
//! returns a [`RecoveryReport`] describing everything it skipped
//! (corrupt epochs, orphaned publishes, stale temp directories).
//!
//! Directories written by the pre-epoch format (schema/CSV files directly
//! in `<dir>`, no `CURRENT`) are still loadable; the first save upgrades
//! them to the epoch layout without deleting the legacy files.
//!
//! Fault-injection points (active only with the `fault` feature; see
//! [`crate::fault`]): `persist::file` before each table file is created,
//! `persist::io_write` on every write syscall into table files,
//! `persist::manifest` before the manifest is written, `persist::publish`
//! before the epoch rename, `persist::commit` before the `CURRENT` swap.

use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};

use crate::catalog::Catalog;
use crate::csv;
use crate::error::StorageError;
use crate::fault;
use crate::schema::Schema;
use crate::value::DataType;
use crate::vfs;

/// File extension of schema files.
pub const SCHEMA_EXT: &str = "schema";
/// File extension of data files.
pub const DATA_EXT: &str = "csv";
/// Name of the committed-epoch pointer file.
pub const CURRENT_FILE: &str = "CURRENT";
/// Name of the per-epoch checksum manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the per-epoch file recording the last WAL sequence folded into
/// that epoch (see [`crate::wal`]); replay skips commits at or below it.
pub const WALSEQ_FILE: &str = "walseq";
/// First line of a valid manifest.
pub(crate) const MANIFEST_HEADER: &str = "conquer-manifest v1";

pub(crate) fn type_name(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Text => "text",
        DataType::Date => "date",
    }
}

fn parse_type(s: &str, path: &Path) -> Result<DataType, StorageError> {
    Ok(match s {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "text" => DataType::Text,
        "date" => DataType::Date,
        other => {
            return Err(StorageError::Schema {
                path: path.display().to_string(),
                message: format!("unknown column type {other:?}"),
            })
        }
    })
}

/// FNV-1a 64-bit checksum — small, dependency-free, and plenty to detect
/// torn writes and bit rot (this is an integrity check, not a security
/// boundary).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What [`load_catalog_recover`] had to work around.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[must_use = "recovery may have replayed or discarded data; inspect the report"]
pub struct RecoveryReport {
    /// The epoch that was ultimately loaded (`None` for a legacy-layout
    /// load).
    pub loaded_epoch: Option<String>,
    /// Committed write-ahead-log groups replayed on top of the loaded
    /// epoch (each one a write that committed after the last checkpoint).
    pub wal_commits_replayed: u64,
    /// Human-readable descriptions of everything skipped or repaired:
    /// corrupt epochs, orphaned (published-but-uncommitted) epochs, stale
    /// temp directories from crashed saves, torn WAL tails.
    pub issues: Vec<String>,
}

impl RecoveryReport {
    /// True when the load was completely clean.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

/// Durably save every table of `catalog` into `dir` (created if missing).
///
/// The save is atomic: it becomes visible only when the `CURRENT` pointer
/// is swapped at the very end, and a crash at any earlier point leaves the
/// previously committed snapshot untouched and loadable. Unrelated files
/// in `dir` are left alone.
///
/// This is also the **checkpoint** primitive for the write-ahead log
/// ([`crate::wal`]): the new epoch records the last committed WAL
/// sequence in its `walseq` file, and after the commit the log is
/// truncated to a fresh header. `catalog` must therefore already contain
/// every committed WAL write (it does for any catalog obtained from
/// [`load_catalog`]/[`load_catalog_recover`], which replay the log). A
/// crash between the `CURRENT` swap and the truncation is harmless:
/// replay skips every sequence ≤ `walseq`.
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<(), StorageError> {
    // Writes and fsyncs every table file: only blocking-tolerant locks
    // (the engine's writer lock during a checkpoint) may be held here.
    let _io = conquer_sync::blocking_region("persist::save_catalog");
    vfs::create_dir_all(dir)?;
    let wal_seq = crate::wal::durable_seq(dir)?;
    let epoch_num = next_epoch_number(dir);
    let epoch_name = format!("v{epoch_num:06}");
    let tmp = dir.join(format!(".tmp-{epoch_name}-{}", std::process::id()));
    // A same-named leftover can only come from a crashed save by this
    // very pid/epoch; replace it.
    let _ = vfs::remove_dir_all(&tmp);
    vfs::create_dir_all(&tmp)?;

    // 1. Write every table file (+ fsync each) into the temp directory.
    let mut manifest = String::from(MANIFEST_HEADER);
    manifest.push('\n');
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for table in catalog.tables() {
        let mut schema_text = String::new();
        for c in table.schema().columns() {
            schema_text.push_str(&format!("{} {}\n", c.name(), type_name(c.data_type())));
        }
        files.push((
            format!("{}.{SCHEMA_EXT}", table.name()),
            schema_text.into_bytes(),
        ));
        let mut data = Vec::new();
        csv::write_table(table, &mut data)?;
        files.push((format!("{}.{DATA_EXT}", table.name()), data));
    }
    files.push((WALSEQ_FILE.to_string(), format!("{wal_seq}\n").into_bytes()));
    for (name, bytes) in &files {
        fault::trigger("persist::file")?;
        write_file_sync(&tmp.join(name), bytes)?;
        manifest.push_str(&format!(
            "fnv1a64:{:016x} {} {}\n",
            fnv1a64(bytes),
            bytes.len(),
            name
        ));
    }

    // 2. Write the manifest, fsync it and the temp directory itself.
    //    Nothing is published yet, so a directory-fsync failure here
    //    fails the save loudly — publishing entries that might not be
    //    durable would tear the epoch's all-or-nothing guarantee.
    fault::trigger("persist::manifest")?;
    write_file_sync(&tmp.join(MANIFEST_FILE), manifest.as_bytes())?;
    vfs::sync_dir(&tmp)?;

    // 3. Publish: atomically rename the temp directory to its epoch name.
    //    A same-named orphan can only be an uncommitted epoch from a
    //    crashed save (CURRENT still points elsewhere) — remove it.
    //
    //    The directory fsync here is a HARD failure: step 5 deletes the
    //    superseded epoch, so continuing past a failed sync would destroy
    //    the fallback while the new epoch's rename is not yet durable —
    //    a crash could then leave *no* loadable epoch. Aborting instead
    //    leaves the old epoch committed and the full log intact.
    fault::trigger("persist::publish")?;
    let epoch_dir = dir.join(&epoch_name);
    if vfs::exists(&epoch_dir) {
        vfs::remove_dir_all(&epoch_dir)?;
    }
    vfs::rename(&tmp, &epoch_dir)?;
    vfs::sync_dir(dir)?;

    // 4. Commit: atomically swap the CURRENT pointer. The directory fsync
    //    is hard for the same reason as step 3: gc must never run while
    //    the swap's durability is in doubt.
    fault::trigger("persist::commit")?;
    let current_tmp = dir.join(format!(".{CURRENT_FILE}.tmp-{}", std::process::id()));
    write_file_sync(&current_tmp, epoch_name.as_bytes())?;
    vfs::rename(&current_tmp, &dir.join(CURRENT_FILE))?;
    vfs::sync_dir(dir)?;

    // 5. Garbage-collect superseded epochs and stale temp directories,
    //    and truncate the WAL — every sequence ≤ wal_seq is now folded
    //    into the committed epoch. Both are best-effort: a failure here
    //    cannot corrupt the committed state (stale WAL frames are skipped
    //    by sequence-gated replay, stale temp files by naming), but it is
    //    counted and noted, never silently dropped.
    gc(dir, &epoch_name);
    sync_dir_noted(dir, "after epoch garbage collection");
    if vfs::exists(&dir.join(crate::wal::WAL_FILE)) {
        if let Err(e) = crate::wal::truncate_wal(dir, wal_seq) {
            vfs::note_io_error(format!(
                "post-checkpoint WAL truncation in {} failed: {e}",
                dir.display()
            ));
        }
    }
    Ok(())
}

/// Write `bytes` to `path` and fsync the file. Writes go through a
/// [`fault::FaultWriter`] so tests can inject partial writes.
fn write_file_sync(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let file = vfs::File::create(path)?;
    let mut w = fault::FaultWriter::new(file, "persist::io_write");
    w.write_all(bytes)?;
    w.flush()?;
    w.into_inner().sync_all()?;
    Ok(())
}

/// fsync a directory whose contents are already safe either way (the
/// commit collapses to old-or-new regardless): failures are counted into
/// the IO health counters and noted, never silently dropped.
fn sync_dir_noted(dir: &Path, when: &str) {
    if let Err(e) = vfs::sync_dir(dir) {
        vfs::note_io_error(format!(
            "directory fsync {when} in {} failed: {e}",
            dir.display()
        ));
    }
}

/// The epoch number the next save should use: one past the largest epoch
/// visible on disk (committed or not), so publishes never collide with a
/// committed snapshot.
fn next_epoch_number(dir: &Path) -> u64 {
    let mut max = 0u64;
    if let Some(name) = read_current(dir) {
        max = max.max(parse_epoch(&name).unwrap_or(0));
    }
    for name in list_epoch_dirs(dir) {
        max = max.max(parse_epoch(&name).unwrap_or(0));
    }
    max + 1
}

fn parse_epoch(name: &str) -> Option<u64> {
    name.strip_prefix('v')?.parse().ok()
}

pub(crate) fn read_current(dir: &Path) -> Option<String> {
    let text = vfs::read_to_string(&dir.join(CURRENT_FILE)).ok()?;
    let name = text.trim();
    (!name.is_empty()).then(|| name.to_string())
}

/// The `walseq` recorded by the committed epoch (0 when there is no
/// committed epoch, or it predates the WAL).
pub(crate) fn current_walseq(dir: &Path) -> u64 {
    match read_current(dir) {
        Some(epoch) => epoch_walseq(&dir.join(epoch)),
        None => 0,
    }
}

/// The `walseq` stamped into one epoch directory (0 for pre-WAL epochs,
/// which by definition have no folded-in WAL commits).
fn epoch_walseq(epoch_dir: &Path) -> u64 {
    vfs::read_to_string(&epoch_dir.join(WALSEQ_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Names of `v*` epoch directories directly under `dir`.
pub(crate) fn list_epoch_dirs(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = vfs::dir_entries(dir) {
        for entry in entries {
            if entry.is_dir && parse_epoch(&entry.name).is_some() {
                out.push(entry.name);
            }
        }
    }
    out.sort();
    out
}

/// Names of `.tmp-*` in-flight-save directories directly under `dir`.
pub(crate) fn list_tmp_dirs(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = vfs::dir_entries(dir) {
        for entry in entries {
            if entry.is_dir && entry.name.starts_with(".tmp-") {
                out.push(entry.name);
            }
        }
    }
    out.sort();
    out
}

/// Remove epochs other than `keep`, stale temp directories, and stale WAL
/// truncation temp files.
fn gc(dir: &Path, keep: &str) {
    for name in list_epoch_dirs(dir) {
        if name != keep {
            let _ = vfs::remove_dir_all(&dir.join(name));
        }
    }
    for name in list_tmp_dirs(dir) {
        let _ = vfs::remove_dir_all(&dir.join(name));
    }
    for name in crate::wal::list_wal_tmp_files(dir) {
        let _ = vfs::remove_file(&dir.join(name));
    }
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

/// Load the committed snapshot from a directory written by
/// [`save_catalog`], verifying every file against the epoch's checksum
/// manifest. Fails with [`StorageError::Corrupt`] (naming the offending
/// file) on any integrity violation — use [`load_catalog_recover`] to fall
/// back to an older epoch instead.
///
/// Directories in the legacy layout (schema/CSV files directly in `dir`,
/// no `CURRENT`) load without integrity verification.
///
/// Committed write-ahead-log suffixes (sequences newer than the epoch's
/// `walseq`, see [`crate::wal`]) are replayed on top of the loaded
/// snapshot. A torn WAL tail — the expected residue of a crash mid-commit
/// — is tolerated silently here; use [`load_catalog_recover`] to have it
/// reported.
pub fn load_catalog(dir: &Path) -> Result<Catalog, StorageError> {
    let (mut catalog, min_seq) = match read_current(dir) {
        Some(epoch) => {
            let epoch_dir = dir.join(&epoch);
            (load_epoch(&epoch_dir)?, epoch_walseq(&epoch_dir))
        }
        None => (load_legacy(dir)?, 0),
    };
    if let Some(wal) = crate::wal::read_wal(dir)? {
        crate::wal::replay(&wal, &mut catalog, min_seq);
    }
    Ok(catalog)
}

/// Load the newest loadable snapshot, tolerating (and reporting) corrupt
/// or partially-written state: a corrupt committed epoch falls back to the
/// newest older epoch that verifies; orphaned epochs (published but never
/// committed) and stale temp directories from crashed saves are reported.
///
/// Fails only when *no* epoch is loadable.
pub fn load_catalog_recover(dir: &Path) -> Result<(Catalog, RecoveryReport), StorageError> {
    let mut report = RecoveryReport::default();
    for tmp in list_tmp_dirs(dir) {
        report.issues.push(format!(
            "stale temp directory from an interrupted save: {tmp}"
        ));
    }
    // A WAL truncation temp file means a checkpoint was interrupted
    // between staging the fresh log and renaming it into place; the live
    // log is still authoritative, the staged one is garbage.
    for tmp in crate::wal::list_wal_tmp_files(dir) {
        match vfs::remove_file(&dir.join(&tmp)) {
            Ok(()) => report.issues.push(format!(
                "stale WAL temp file from an interrupted checkpoint: {tmp}; removed"
            )),
            Err(e) => report.issues.push(format!(
                "stale WAL temp file from an interrupted checkpoint: {tmp}; \
                 could not be removed: {e}"
            )),
        }
    }
    // Spill sessions are scratch state for in-flight queries; one found at
    // load time belongs to a process that died mid-query. Remove it.
    for spill in crate::spill::list_spill_dirs(dir) {
        match vfs::remove_dir_all(&dir.join(&spill)) {
            Ok(()) => report.issues.push(format!(
                "orphaned spill directory from an interrupted query: {spill}; removed"
            )),
            Err(e) => report.issues.push(format!(
                "orphaned spill directory from an interrupted query: {spill}; \
                 could not be removed: {e}"
            )),
        }
    }

    let current = read_current(dir);
    let epochs = list_epoch_dirs(dir);
    if current.is_none() && epochs.is_empty() {
        // Legacy layout (or nothing at all): defer to the strict loader.
        let mut catalog = load_legacy(dir)?;
        replay_wal_reported(dir, &mut catalog, 0, &mut report)?;
        return Ok((catalog, report));
    }

    for orphan in epochs.iter().filter(|e| {
        current
            .as_deref()
            .is_some_and(|c| parse_epoch(e).unwrap_or(0) > parse_epoch(c).unwrap_or(0))
    }) {
        report.issues.push(format!(
            "orphaned epoch {orphan}: published but never committed \
             (save interrupted before the CURRENT swap); ignored"
        ));
    }

    // Try the committed epoch first, then every other epoch newest-first.
    let mut candidates: Vec<String> = Vec::new();
    if let Some(c) = &current {
        candidates.push(c.clone());
    }
    for e in epochs.iter().rev() {
        if Some(e.as_str()) != current.as_deref() {
            candidates.push(e.clone());
        }
    }

    // On total failure, surface the *committed* epoch's error — it is the
    // one the user cares about, not whichever fallback failed last.
    let mut first_err: Option<StorageError> = None;
    for epoch in candidates {
        match load_epoch(&dir.join(&epoch)) {
            Ok(mut catalog) => {
                // Replay gated on *this* epoch's walseq: falling back to
                // an older epoch automatically replays more of the log,
                // re-applying the writes the newer (corrupt) epoch had
                // folded in — as long as the log still has them.
                let min_seq = epoch_walseq(&dir.join(&epoch));
                replay_wal_reported(dir, &mut catalog, min_seq, &mut report)?;
                report.loaded_epoch = Some(epoch);
                return Ok((catalog, report));
            }
            Err(e) => {
                report
                    .issues
                    .push(format!("epoch {epoch} is not loadable: {e}"));
                first_err.get_or_insert(e);
            }
        }
    }
    Err(first_err.unwrap_or_else(|| StorageError::Corrupt {
        path: dir.display().to_string(),
        detail: "no loadable epoch found".into(),
    }))
}

/// Replay the WAL into `catalog` (commits with sequence > `min_seq`),
/// recording the replay count and any torn tail in `report`.
fn replay_wal_reported(
    dir: &Path,
    catalog: &mut Catalog,
    min_seq: u64,
    report: &mut RecoveryReport,
) -> Result<(), StorageError> {
    if let Some(wal) = crate::wal::read_wal(dir)? {
        let (applied, torn) = crate::wal::replay(&wal, catalog, min_seq);
        report.wal_commits_replayed = applied;
        if let Some(t) = torn {
            report.issues.push(format!(
                "write-ahead log has an incomplete tail ({t}); \
                 every fully committed write before it was replayed"
            ));
        }
    }
    Ok(())
}

/// Load and verify one epoch directory against its manifest.
fn load_epoch(epoch_dir: &Path) -> Result<Catalog, StorageError> {
    let manifest_path = epoch_dir.join(MANIFEST_FILE);
    let corrupt = |path: &Path, detail: String| StorageError::Corrupt {
        path: path.display().to_string(),
        detail,
    };
    let manifest_text = vfs::read_to_string(&manifest_path)
        .map_err(|e| corrupt(&manifest_path, format!("cannot read manifest: {e}")))?;
    let mut lines = manifest_text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(
            &manifest_path,
            format!("bad manifest header (expected {MANIFEST_HEADER:?})"),
        ));
    }

    // Verify every manifest entry and collect the verified bytes.
    let mut verified: Vec<(String, Vec<u8>)> = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (sum, size, name) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(z), Some(n)) => (s, z, n),
            _ => {
                return Err(corrupt(
                    &manifest_path,
                    format!("malformed manifest line {line:?}"),
                ))
            }
        };
        let expected_sum = sum
            .strip_prefix("fnv1a64:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt(&manifest_path, format!("bad checksum field {sum:?}")))?;
        let expected_size: u64 = size
            .parse()
            .map_err(|_| corrupt(&manifest_path, format!("bad size field {size:?}")))?;
        let file_path = epoch_dir.join(name);
        let bytes = vfs::read(&file_path).map_err(|e| {
            corrupt(
                &file_path,
                format!("listed in manifest but unreadable: {e}"),
            )
        })?;
        if bytes.len() as u64 != expected_size {
            return Err(corrupt(
                &file_path,
                format!(
                    "size mismatch: manifest says {expected_size} bytes, file has {} \
                     (partially written?)",
                    bytes.len()
                ),
            ));
        }
        let actual_sum = fnv1a64(&bytes);
        if actual_sum != expected_sum {
            return Err(corrupt(
                &file_path,
                format!(
                    "checksum mismatch: manifest says fnv1a64:{expected_sum:016x}, \
                     file hashes to fnv1a64:{actual_sum:016x}"
                ),
            ));
        }
        verified.push((name.to_string(), bytes));
    }

    // Assemble tables from the verified bytes: schemas first, then data.
    let mut catalog = Catalog::new();
    let mut names: Vec<String> = verified
        .iter()
        .filter_map(|(n, _)| n.strip_suffix(&format!(".{SCHEMA_EXT}")))
        .map(str::to_string)
        .collect();
    names.sort();
    let find = |file: &str| verified.iter().find(|(n, _)| n == file).map(|(_, b)| b);
    for name in names {
        let schema_file = format!("{name}.{SCHEMA_EXT}");
        let schema_bytes = find(&schema_file)
            .ok_or_else(|| corrupt(&epoch_dir.join(&schema_file), "schema file vanished".into()))?;
        let schema_path = epoch_dir.join(&schema_file);
        let schema_text = std::str::from_utf8(schema_bytes).map_err(|_| StorageError::Schema {
            path: schema_path.display().to_string(),
            message: "schema file is not valid UTF-8".into(),
        })?;
        let schema = parse_schema_text(schema_text, &schema_path)?;
        let table = match find(&format!("{name}.{DATA_EXT}")) {
            Some(data) => csv::read_table(&name, schema, BufReader::new(&data[..]))?,
            None => crate::table::Table::new(&name, schema),
        };
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

/// Parse the line-oriented `<column> <type>` schema format.
pub(crate) fn parse_schema_text(text: &str, path: &Path) -> Result<Schema, StorageError> {
    let mut pairs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (col, ty) = line.split_once(' ').ok_or_else(|| StorageError::Schema {
            path: path.display().to_string(),
            message: format!("malformed schema line {line:?} (expected \"<column> <type>\")"),
        })?;
        pairs.push((col.to_string(), parse_type(ty.trim(), path)?));
    }
    Schema::from_pairs(pairs)
}

/// Load a legacy (pre-epoch) layout: every `<name>.schema` file directly
/// in `dir` (with its `<name>.csv`) becomes a table. No manifest, no
/// integrity verification — this is the hand-editable escape hatch.
fn load_legacy(dir: &Path) -> Result<Catalog, StorageError> {
    let mut catalog = Catalog::new();
    let mut names: Vec<String> = Vec::new();
    for entry in vfs::dir_entries(dir)? {
        if let Some(stem) = entry.name.strip_suffix(&format!(".{SCHEMA_EXT}")) {
            if !entry.is_dir {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    for name in names {
        let schema_path = dir.join(format!("{name}.{SCHEMA_EXT}"));
        let schema_text = vfs::read_to_string(&schema_path)?;
        let schema = parse_schema_text(&schema_text, &schema_path)?;
        let data_path = dir.join(format!("{name}.{DATA_EXT}"));
        let table = if vfs::exists(&data_path) {
            let reader = BufReader::new(vfs::File::open(&data_path)?);
            csv::read_table(&name, schema, reader)?
        } else {
            crate::table::Table::new(&name, schema)
        };
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

/// The path of a table's data file inside the currently committed epoch
/// (or the legacy location when no epoch is committed). Useful for
/// external tools that want to read the CSVs directly.
pub fn current_data_path(dir: &Path, table: &str) -> PathBuf {
    match read_current(dir) {
        Some(epoch) => dir.join(epoch).join(format!("{table}.{DATA_EXT}")),
        None => dir.join(format!("{table}.{DATA_EXT}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::Value;
    use std::fs;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("conquer_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(
            "customer",
            Schema::from_pairs([
                ("id", DataType::Text),
                ("income", DataType::Int),
                ("prob", DataType::Float),
                ("since", DataType::Date),
                ("active", DataType::Bool),
            ])
            .unwrap(),
        );
        t.insert(vec![
            "c1".into(),
            120000.into(),
            0.9.into(),
            Value::Date("1999-01-02".parse().unwrap()),
            true.into(),
        ])
        .unwrap();
        t.insert(vec![
            Value::Null,
            Value::Null,
            0.1.into(),
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        cat.add_table(t).unwrap();
        cat.create_table("empty", Schema::from_pairs([("x", DataType::Int)]).unwrap())
            .unwrap();
        cat
    }

    #[test]
    fn roundtrip_all_types_and_nulls() {
        let dir = tempdir("roundtrip");
        let cat = sample();
        save_catalog(&cat, &dir).unwrap();
        let back = load_catalog(&dir).unwrap();
        assert_eq!(back.table_names(), vec!["customer", "empty"]);
        let (a, b) = (
            cat.table("customer").unwrap(),
            back.table("customer").unwrap(),
        );
        assert_eq!(a.schema(), b.schema());
        // NULL text round-trips as empty → NULL; all other values exact.
        assert_eq!(a.rows()[0], b.rows()[0]);
        assert!(b.rows()[1][0].is_null());
        assert_eq!(back.table("empty").unwrap().len(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        let dir = tempdir("missing");
        assert!(load_catalog(&dir).is_err());
    }

    #[test]
    fn malformed_schema_rejected_with_schema_error_naming_the_file() {
        let dir = tempdir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.schema"), "no-type-here\n").unwrap();
        let err = load_catalog(&dir).unwrap_err();
        match &err {
            StorageError::Schema { path, .. } => assert!(path.contains("bad.schema"), "{err}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        fs::write(dir.join("bad.schema"), "col weirdtype\n").unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert!(
            matches!(&err, StorageError::Schema { message, .. } if message.contains("weirdtype")),
            "{err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_idempotent_and_gcs_old_epochs() {
        let dir = tempdir("idem");
        let cat = sample();
        save_catalog(&cat, &dir).unwrap();
        save_catalog(&cat, &dir).unwrap();
        let back = load_catalog(&dir).unwrap();
        assert_eq!(back.table("customer").unwrap().len(), 2);
        // only the committed epoch survives gc
        assert_eq!(list_epoch_dirs(&dir).len(), 1);
        assert!(list_tmp_dirs(&dir).is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_data_file_is_reported_not_dropped() {
        let dir = tempdir("corrupt");
        save_catalog(&sample(), &dir).unwrap();
        let epoch = read_current(&dir).unwrap();
        let victim = dir.join(&epoch).join("customer.csv");
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0xff; // flip a bit
        fs::write(&victim, bytes).unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { path, detail }
                if path.contains("customer.csv") && detail.contains("checksum")),
            "{err:?}"
        );
        // recovery has nothing older to fall back to → also fails, but
        // reports what it saw
        let rec = load_catalog_recover(&dir);
        assert!(rec.is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_reported_as_partial_write() {
        let dir = tempdir("truncated");
        save_catalog(&sample(), &dir).unwrap();
        let epoch = read_current(&dir).unwrap();
        let victim = dir.join(&epoch).join("customer.csv");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { detail, .. } if detail.contains("size mismatch")),
            "{err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_epoch_is_ignored_and_reported() {
        let dir = tempdir("orphan");
        save_catalog(&sample(), &dir).unwrap();
        // Simulate a save that crashed after publish but before commit:
        // an epoch directory newer than CURRENT.
        fs::create_dir_all(dir.join("v999999")).unwrap();
        fs::write(dir.join("v999999").join(MANIFEST_FILE), "garbage").unwrap();
        let strict = load_catalog(&dir).unwrap();
        assert_eq!(strict.table_names(), vec!["customer", "empty"]);
        let (cat, report) = load_catalog_recover(&dir).unwrap();
        assert_eq!(cat.table_names(), vec!["customer", "empty"]);
        assert!(
            report
                .issues
                .iter()
                .any(|i| i.contains("orphaned epoch v999999")),
            "{report:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_spill_dir_is_removed_and_reported() {
        let dir = tempdir("spill_orphan");
        save_catalog(&sample(), &dir).unwrap();
        // Simulate a process killed mid-query: a spill session directory
        // with a half-written run file left behind.
        let orphan = dir.join(format!("{}{}", crate::spill::SPILL_DIR_PREFIX, "999-0"));
        fs::create_dir_all(&orphan).unwrap();
        fs::write(orphan.join("run-000000.spill"), b"partial").unwrap();
        let (cat, report) = load_catalog_recover(&dir).unwrap();
        assert_eq!(cat.table_names(), vec!["customer", "empty"]);
        assert!(
            report
                .issues
                .iter()
                .any(|i| i.contains("orphaned spill directory") && i.contains("removed")),
            "{report:?}"
        );
        assert!(!orphan.exists(), "orphan spill dir must be deleted");
        // A second recovery is quiet about spills.
        let (_, report2) = load_catalog_recover(&dir).unwrap();
        assert!(
            !report2.issues.iter().any(|i| i.contains("spill")),
            "{report2:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_to_older_epoch_when_current_is_corrupt() {
        let dir = tempdir("fallback");
        let cat1 = sample();
        save_catalog(&cat1, &dir).unwrap();
        let epoch1 = read_current(&dir).unwrap();
        // Second save; then corrupt its manifest and keep epoch1 around.
        let mut cat2 = sample();
        cat2.create_table("extra", Schema::from_pairs([("y", DataType::Int)]).unwrap())
            .unwrap();
        // preserve epoch1 from gc by re-creating it afterwards
        let saved_epoch1 = dir.join(&epoch1);
        let backup = tempdir("fallback_backup");
        fs::create_dir_all(&backup).unwrap();
        copy_dir(&saved_epoch1, &backup.join(&epoch1));
        save_catalog(&cat2, &dir).unwrap();
        copy_dir(&backup.join(&epoch1), &saved_epoch1);
        let epoch2 = read_current(&dir).unwrap();
        fs::write(dir.join(&epoch2).join(MANIFEST_FILE), "garbage").unwrap();

        assert!(load_catalog(&dir).is_err());
        let (cat, report) = load_catalog_recover(&dir).unwrap();
        assert_eq!(report.loaded_epoch, Some(epoch1));
        assert_eq!(cat.table_names(), vec!["customer", "empty"]);
        assert!(
            report.issues.iter().any(|i| i.contains(&epoch2)),
            "{report:?}"
        );
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&backup).ok();
    }

    #[test]
    fn legacy_layout_still_loads_and_upgrades_on_save() {
        let dir = tempdir("legacy");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("t.schema"), "a int\nb text\n").unwrap();
        fs::write(dir.join("t.csv"), "a,b\n1,x\n2,y\n").unwrap();
        let cat = load_catalog(&dir).unwrap();
        assert_eq!(cat.table("t").unwrap().len(), 2);
        let (cat2, report) = load_catalog_recover(&dir).unwrap();
        assert_eq!(cat2.table("t").unwrap().len(), 2);
        assert!(report.loaded_epoch.is_none());
        // First save upgrades to the epoch layout without touching the
        // legacy files.
        save_catalog(&cat, &dir).unwrap();
        assert!(dir.join(CURRENT_FILE).exists());
        assert!(dir.join("t.schema").exists());
        assert_eq!(load_catalog(&dir).unwrap().table("t").unwrap().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    fn copy_dir(from: &Path, to: &Path) {
        fs::create_dir_all(to).unwrap();
        for entry in fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}
