//! Write-ahead logging: crash-safe catalog writes without rewriting epochs.
//!
//! [`crate::persist::save_catalog`] is atomic but O(catalog): every save
//! rewrites the whole epoch directory. The WAL makes individual writes
//! cheap and durable: a committed write appends the affected tables to
//! `<dir>/wal.log` and fsyncs once; the full epoch rewrite happens only at
//! **checkpoint** time, when [`save_catalog`](crate::persist::save_catalog)
//! folds the log into a fresh epoch and truncates it.
//!
//! ```text
//! <dir>/
//!   CURRENT          # committed epoch pointer (see persist)
//!   v000007/
//!     MANIFEST
//!     walseq         # last WAL sequence folded into this epoch
//!     customer.schema
//!     customer.csv
//!   wal.log          # committed writes newer than v000007
//! ```
//!
//! ## File format
//!
//! The log is a sequence of frames in the spill-record framing:
//!
//! ```text
//! [u32 LE payload length][u64 LE fnv1a64(payload)][payload]
//! ```
//!
//! The payload's first byte is a tag:
//!
//! * `0` **header** — magic `"conquer-wal v1"` + the `u64 LE` base
//!   sequence (the `walseq` of the epoch current when the log was created
//!   or last truncated). Always the first frame.
//! * `1` **put** — a complete table image: name, schema text (the
//!   `.schema` format), row count, then rows in the spill value codec.
//!   Whole-table images make replay idempotent and order-insensitive
//!   within a commit.
//! * `2` **drop** — a table name.
//! * `3` **commit** — the `u64 LE` sequence number sealing every put/drop
//!   frame since the previous commit. A write is durable iff its commit
//!   frame is fully on disk ([`Wal::commit`] fsyncs before returning).
//!
//! ## Recovery semantics
//!
//! Replay ([`crate::load_catalog`] / [`crate::load_catalog_recover`])
//! applies committed frames **in order**, skipping commits whose sequence
//! is ≤ the loaded epoch's `walseq` (they are already folded in — this
//! gating is what makes a crash *between* an epoch commit and the WAL
//! truncation harmless). Parsing stops at the first incomplete or
//! checksum-failing frame: that is the torn tail a crash mid-append
//! leaves behind, and everything before it is still recovered. The torn
//! tail is reported, never a load failure. [`Wal::open`] truncates the
//! tail (torn bytes *and* op frames missing their commit) before
//! accepting new appends, so an interrupted commit can never leak into a
//! later one.
//!
//! Fault-injection points (active only with the `fault` feature, see
//! [`crate::fault`]): `wal::open` on open, `wal::op` before each op frame
//! is staged, `wal::commit` before the commit frame is staged,
//! `wal::io_write` on every write into the log, `wal::sync` before the
//! commit fsync, `wal::truncate` before a truncation writes its
//! replacement log, `wal::truncate_commit` before the replacement is
//! renamed into place.

use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::catalog::Catalog;
use crate::error::StorageError;
use crate::fault;
use crate::persist::fnv1a64;
use crate::spill::{decode_value, encode_value, take, take_arr};
use crate::table::Table;
use crate::vfs;

/// Name of the write-ahead log file inside a persistence directory.
pub const WAL_FILE: &str = "wal.log";

/// Magic string opening every log (in the header frame).
const WAL_MAGIC: &[u8] = b"conquer-wal v1";

/// Prefix of the temp file a truncation stages its replacement log under.
pub(crate) const WAL_TMP_PREFIX: &str = ".wal.tmp-";

/// Upper bound on one frame's payload; a larger length prefix means the
/// file is corrupt (a table image of this size would not fit in memory
/// many times over anyway).
const MAX_PAYLOAD_BYTES: u32 = 1 << 30;

const TAG_HEADER: u8 = 0;
const TAG_PUT: u8 = 1;
const TAG_DROP: u8 = 2;
const TAG_COMMIT: u8 = 3;

fn corrupt(path: &Path, detail: String) -> StorageError {
    StorageError::Corrupt {
        path: path.display().to_string(),
        detail,
    }
}

/// One logical operation inside a WAL commit.
///
/// `Put` carries the *complete* post-write image of a table (not a delta):
/// replaying it is a plain [`Catalog::replace_table`], idempotent under
/// partial re-replay.
#[derive(Debug)]
pub enum WalOp<'a> {
    /// Replace (or create) a table with this image.
    Put(&'a Table),
    /// Drop the named table (a no-op on replay if it is already gone).
    Drop(&'a str),
}

/// An owned, decoded WAL operation (the replay-side twin of [`WalOp`]).
#[derive(Debug)]
pub(crate) enum WalRecord {
    Put(Table),
    Drop(String),
}

/// Everything a scan of `wal.log` found.
#[derive(Debug, Default)]
pub(crate) struct WalContents {
    /// The header's base sequence.
    pub base_seq: u64,
    /// The last committed sequence (`base_seq` when no commit exists).
    pub last_seq: u64,
    /// Committed operation groups, in commit order.
    pub commits: Vec<(u64, Vec<WalRecord>)>,
    /// Byte offset just past the last fully-committed frame — the point a
    /// writer truncates to before appending.
    pub committed_len: u64,
    /// Description of the torn/uncommitted tail, when one exists.
    pub torn: Option<String>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn header_payload(base_seq: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + WAL_MAGIC.len() + 8);
    p.push(TAG_HEADER);
    p.extend_from_slice(WAL_MAGIC);
    p.extend_from_slice(&base_seq.to_le_bytes());
    p
}

fn commit_payload(seq: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.push(TAG_COMMIT);
    p.extend_from_slice(&seq.to_le_bytes());
    p
}

fn put_payload(table: &Table) -> Vec<u8> {
    let mut schema_text = String::new();
    for c in table.schema().columns() {
        schema_text.push_str(&format!(
            "{} {}\n",
            c.name(),
            crate::persist::type_name(c.data_type())
        ));
    }
    let mut p = Vec::new();
    p.push(TAG_PUT);
    p.extend_from_slice(&(table.name().len() as u32).to_le_bytes());
    p.extend_from_slice(table.name().as_bytes());
    p.extend_from_slice(&(schema_text.len() as u32).to_le_bytes());
    p.extend_from_slice(schema_text.as_bytes());
    p.extend_from_slice(&(table.len() as u32).to_le_bytes());
    for row in table.rows() {
        p.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            encode_value(v, &mut p);
        }
    }
    p
}

fn drop_payload(name: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(5 + name.len());
    p.push(TAG_DROP);
    p.extend_from_slice(&(name.len() as u32).to_le_bytes());
    p.extend_from_slice(name.as_bytes());
    p
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn take_u32(buf: &[u8], pos: &mut usize, path: &Path) -> Result<u32, StorageError> {
    Ok(u32::from_le_bytes(take_arr(buf, pos, path)?))
}

fn take_u64(buf: &[u8], pos: &mut usize, path: &Path) -> Result<u64, StorageError> {
    Ok(u64::from_le_bytes(take_arr(buf, pos, path)?))
}

fn take_str(buf: &[u8], pos: &mut usize, path: &Path) -> Result<String, StorageError> {
    let len = take_u32(buf, pos, path)? as usize;
    let bytes = take(buf, pos, len, path)?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| corrupt(path, "WAL string is not valid UTF-8".into()))
}

fn decode_put(payload: &[u8], path: &Path) -> Result<Table, StorageError> {
    let mut pos = 1; // past the tag
    let name = take_str(payload, &mut pos, path)?;
    let schema_text = take_str(payload, &mut pos, path)?;
    let schema = crate::persist::parse_schema_text(&schema_text, path)?;
    let nrows = take_u32(payload, &mut pos, path)? as usize;
    let mut table = Table::new(&name, schema);
    for _ in 0..nrows {
        let nvals = take_u32(payload, &mut pos, path)? as usize;
        // Cap the pre-allocation: the count is corruption-controlled.
        let mut row = Vec::with_capacity(nvals.min(1024));
        for _ in 0..nvals {
            row.push(decode_value(payload, &mut pos, path)?);
        }
        table.insert(row)?;
    }
    if pos != payload.len() {
        return Err(corrupt(
            path,
            format!(
                "WAL put frame for {name:?} has {} trailing bytes",
                payload.len() - pos
            ),
        ));
    }
    Ok(table)
}

/// Parse one frame starting at `*pos`. `Ok(None)` means a clean
/// end-of-file; a torn or corrupt frame is an `Err` (the *caller* decides
/// that means "stop here", not "fail the load").
fn next_frame<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    path: &Path,
) -> Result<Option<&'a [u8]>, StorageError> {
    if *pos == buf.len() {
        return Ok(None);
    }
    let at = *pos;
    let len = take_u32(buf, pos, path)?;
    if len > MAX_PAYLOAD_BYTES {
        return Err(corrupt(
            path,
            format!("frame at offset {at} declares an absurd payload of {len} bytes"),
        ));
    }
    let sum = take_u64(buf, pos, path)?;
    let payload = take(buf, pos, len as usize, path)?;
    let actual = fnv1a64(payload);
    if actual != sum {
        return Err(corrupt(
            path,
            format!(
                "frame at offset {at} fails its checksum \
                 (expected fnv1a64:{sum:016x}, got fnv1a64:{actual:016x})"
            ),
        ));
    }
    if payload.is_empty() {
        return Err(corrupt(path, format!("empty frame at offset {at}")));
    }
    Ok(Some(payload))
}

/// Scan `<dir>/wal.log`. Returns `Ok(None)` when the file does not exist.
/// Torn tails never fail the scan — they end it, with everything before
/// them intact and `torn` describing what was dropped. Only filesystem
/// errors (not corruption) surface as `Err`.
pub(crate) fn read_wal(dir: &Path) -> Result<Option<WalContents>, StorageError> {
    let path = dir.join(WAL_FILE);
    let buf = match vfs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut out = WalContents::default();
    let mut pos = 0usize;

    // Header frame first; a log whose very header is unreadable recovers
    // as "no commits" (committed_len 0 tells the writer to start over).
    match next_frame(&buf, &mut pos, &path) {
        Ok(Some(payload)) if payload[0] == TAG_HEADER && payload[1..].starts_with(WAL_MAGIC) => {
            let mut p = 1 + WAL_MAGIC.len();
            out.base_seq = take_u64(payload, &mut p, &path)?;
            out.last_seq = out.base_seq;
            out.committed_len = pos as u64;
        }
        Ok(None) => {
            out.torn = Some("write-ahead log is empty (no header)".into());
            return Ok(Some(out));
        }
        Ok(Some(_)) | Err(_) => {
            out.torn = Some("write-ahead log header is missing or corrupt".into());
            return Ok(Some(out));
        }
    }

    // Frames until EOF or the first tear.
    let mut pending: Vec<WalRecord> = Vec::new();
    loop {
        let frame_start = pos;
        match next_frame(&buf, &mut pos, &path) {
            Ok(None) => break,
            Err(e) => {
                out.torn = Some(format!("torn tail: {e}"));
                break;
            }
            Ok(Some(payload)) => {
                let decoded = match payload[0] {
                    TAG_PUT => decode_put(payload, &path).map(WalRecord::Put),
                    TAG_DROP => {
                        let mut p = 1;
                        take_str(payload, &mut p, &path).map(WalRecord::Drop)
                    }
                    TAG_COMMIT => {
                        let mut p = 1;
                        let seq = take_u64(payload, &mut p, &path)?;
                        if seq <= out.last_seq {
                            out.torn = Some(format!(
                                "commit sequence went backwards at offset {frame_start} \
                                 ({seq} after {})",
                                out.last_seq
                            ));
                            break;
                        }
                        out.last_seq = seq;
                        out.commits.push((seq, std::mem::take(&mut pending)));
                        out.committed_len = pos as u64;
                        continue;
                    }
                    TAG_HEADER => {
                        out.torn = Some(format!("unexpected header frame at offset {frame_start}"));
                        break;
                    }
                    other => {
                        out.torn =
                            Some(format!("unknown frame tag {other} at offset {frame_start}"));
                        break;
                    }
                };
                match decoded {
                    Ok(rec) => pending.push(rec),
                    Err(e) => {
                        out.torn = Some(format!("torn tail: {e}"));
                        break;
                    }
                }
            }
        }
    }
    if out.torn.is_none() && !pending.is_empty() {
        out.torn = Some(format!(
            "interrupted commit: {} operation frame(s) with no commit marker",
            pending.len()
        ));
    }
    Ok(Some(out))
}

/// The last committed sequence recorded anywhere under `dir`: the maximum
/// of the WAL's last commit and the committed epoch's `walseq`. This is
/// what a checkpoint stamps into the new epoch, and the floor a fresh log
/// starts its sequences above.
pub(crate) fn durable_seq(dir: &Path) -> Result<u64, StorageError> {
    let from_epoch = crate::persist::current_walseq(dir);
    let from_wal = read_wal(dir)?.map_or(0, |c| c.last_seq);
    Ok(from_epoch.max(from_wal))
}

/// Replay every committed WAL group with sequence > `min_seq` into
/// `catalog`, in commit order. Returns `(applied, torn)`.
pub(crate) fn replay<'a>(
    contents: &'a WalContents,
    catalog: &mut Catalog,
    min_seq: u64,
) -> (u64, Option<&'a str>) {
    let mut applied = 0;
    for (seq, records) in &contents.commits {
        if *seq <= min_seq {
            continue;
        }
        for rec in records {
            match rec {
                WalRecord::Put(table) => catalog.replace_table(table.clone()),
                WalRecord::Drop(name) => {
                    let _ = catalog.drop_table(name);
                }
            }
        }
        applied += 1;
    }
    (applied, contents.torn.as_deref())
}

/// Atomically replace `<dir>/wal.log` with a fresh, empty log whose header
/// carries `base_seq`. Called by
/// [`save_catalog`](crate::persist::save_catalog) after a checkpoint
/// commits: every sequence ≤ `base_seq` is folded into the new epoch, so
/// the old frames are dead weight. The replacement is staged in a temp
/// file and renamed into place — a crash anywhere leaves either the old
/// log (harmless: replay is sequence-gated) or the new one.
pub(crate) fn truncate_wal(dir: &Path, base_seq: u64) -> Result<(), StorageError> {
    // Stages, fsyncs, and renames files: only blocking-tolerant locks
    // (the engine's writer lock) may be held across this.
    let _io = conquer_sync::blocking_region("wal::truncate");
    fault::trigger("wal::truncate")?;
    let tmp = dir.join(format!("{WAL_TMP_PREFIX}{}", std::process::id()));
    let mut buf = Vec::new();
    push_frame(&mut buf, &header_payload(base_seq));
    {
        let file = vfs::File::create(&tmp)?;
        let mut w = fault::FaultWriter::new(file, "wal::io_write");
        w.write_all(&buf)?;
        w.flush()?;
        w.into_inner().sync_all()?;
    }
    fault::trigger("wal::truncate_commit")?;
    vfs::rename(&tmp, &dir.join(WAL_FILE))?;
    // The rename only becomes durable once the directory itself is
    // fsynced. A failure here is tolerable (sequence-gated replay skips
    // stale frames either way) but must not vanish: count it and leave a
    // note for the recovery path.
    if let Err(e) = vfs::sync_dir(dir) {
        vfs::note_io_error(format!(
            "directory fsync after WAL truncation in {} failed: {e}",
            dir.display()
        ));
    }
    Ok(())
}

/// Names of stale `.wal.tmp-*` files directly under `dir` (left by a
/// truncation interrupted between staging and rename).
pub(crate) fn list_wal_tmp_files(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = vfs::dir_entries(dir) {
        for entry in entries {
            if !entry.is_dir && entry.name.starts_with(WAL_TMP_PREFIX) {
                out.push(entry.name);
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// The writer handle
// ---------------------------------------------------------------------------

/// An open, append-only handle on `<dir>/wal.log`.
///
/// One writer at a time (callers serialize; the engine's shared-database
/// writer lock does this for served traffic). Every [`Wal::commit`] is
/// atomic-on-disk: it stages the op frames plus a commit frame, writes
/// them in one append, and fsyncs before returning — `Ok` means the write
/// survives any crash, `Err` means the log is as if the call never
/// happened (the partial append is rolled back, and a *kill* mid-append
/// is cleaned up by the next [`Wal::open`] / tolerated by replay as a
/// torn tail).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: vfs::File,
    /// Sequence the next commit will be stamped with.
    next_seq: u64,
    /// Bytes of committed log (= current file length).
    len: u64,
    /// Set when this descriptor can no longer be trusted: a commit fsync
    /// failed (fsyncgate: after a failed fsync the kernel may have
    /// dropped the dirty flags, so retrying fsync can report success
    /// without durability), or a failed append could not be rolled back.
    /// The next commit heals by reopen + re-truncate, never fsync retry.
    poisoned: bool,
}

impl Wal {
    /// Open (creating if necessary) the log in `dir`, truncating any
    /// torn or uncommitted tail so new appends start at a clean commit
    /// boundary. Sequences continue above both the log's last commit and
    /// the committed epoch's `walseq`, so a recreated log can never reuse
    /// a sequence an epoch already folded in.
    pub fn open(dir: &Path) -> Result<Wal, StorageError> {
        let _io = conquer_sync::blocking_region("wal::open");
        fault::trigger("wal::open")?;
        vfs::create_dir_all(dir)?;
        let floor = durable_seq(dir)?;
        let path = dir.join(WAL_FILE);
        let contents = read_wal(dir)?;
        let mut file = vfs::File::open_rw(&path)?;
        let (last_seq, committed_len) = match &contents {
            Some(c) if c.committed_len > 0 => (c.last_seq.max(floor), c.committed_len),
            // Missing, empty, or header-corrupt log: start a fresh one
            // whose base is everything already durable in the epochs.
            _ => {
                let mut buf = Vec::new();
                push_frame(&mut buf, &header_payload(floor));
                file.set_len(0)?;
                file.write_all(&buf)?;
                file.sync_all()?;
                // The log's own directory entry must be durable too, or a
                // crash could lose the whole (fsynced) file and with it
                // every commit it ever acknowledges.
                vfs::sync_dir(dir)?;
                (floor, buf.len() as u64)
            }
        };
        file.set_len(committed_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            next_seq: last_seq + 1,
            len: committed_len,
            poisoned: false,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of committed log on disk (checkpoint policies watch this).
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// The sequence of the most recent commit (0 when the log has never
    /// committed anything and no epoch has a `walseq`).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Durably append one atomic group of operations. On `Ok(seq)` the
    /// group is fsynced and will be replayed by any future load; on `Err`
    /// the log is unchanged (the partial append is truncated away).
    pub fn commit(&mut self, ops: &[WalOp<'_>]) -> Result<u64, StorageError> {
        if self.poisoned {
            // fsyncgate rule: a poisoned descriptor is never fsynced
            // again. Heal by reopening and re-truncating to the last
            // acknowledged boundary, then proceed on the fresh handle.
            self.heal()?;
        }
        let seq = self.next_seq;
        let mut buf = Vec::new();
        for op in ops {
            fault::trigger("wal::op")?;
            match op {
                WalOp::Put(table) => push_frame(&mut buf, &put_payload(table)),
                WalOp::Drop(name) => push_frame(&mut buf, &drop_payload(name)),
            }
        }
        fault::trigger("wal::commit")?;
        push_frame(&mut buf, &commit_payload(seq));

        let written = (|| -> Result<(), StorageError> {
            // The append + fsync is the engine's canonical
            // hold-a-lock-while-blocking site; the writer mutex rank is
            // marked blocking-tolerant for exactly this call.
            let _io = conquer_sync::blocking_region("wal::commit");
            let mut w = fault::FaultWriter::new(&mut self.file, "wal::io_write");
            w.write_all(&buf)?;
            w.flush()?;
            Ok(())
        })();
        if let Err(e) = written {
            // Err must mean "as if never called": drop the partial append.
            self.rollback();
            return Err(e);
        }

        let synced = (|| -> Result<(), StorageError> {
            let _io = conquer_sync::blocking_region("wal::commit");
            fault::trigger("wal::sync")?;
            self.file.sync_data()?;
            Ok(())
        })();
        match synced {
            Ok(()) => {
                self.len += buf.len() as u64;
                self.next_seq = seq + 1;
                Ok(seq)
            }
            Err(e) => {
                // A failed fsync leaves the kernel's dirty-page state
                // undefined, so this descriptor can never prove
                // durability again: poison it (the next commit heals by
                // reopen + re-truncate + replay, never fsync retry) and
                // roll the append back best-effort so readers of the file
                // see the old boundary immediately. The commit is
                // reported failed; nothing is acknowledged.
                vfs::note_fsync_failure(format!(
                    "WAL commit fsync in {} failed: {e}",
                    self.dir.display()
                ));
                self.rollback();
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Whether the descriptor is poisoned (next commit will heal first).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Truncate away an un-acknowledged append; poison on failure so a
    /// half-frame can never be extended into a fake commit.
    fn rollback(&mut self) {
        let rolled_back =
            self.file.set_len(self.len).is_ok() && self.file.seek(SeekFrom::End(0)).is_ok();
        if !rolled_back {
            self.poisoned = true;
        }
    }

    /// Recover a poisoned handle: open a fresh descriptor, re-scan, and
    /// truncate any frames past the last *acknowledged* commit — bytes a
    /// failed fsync covered may have reached the disk after all, and a
    /// commit that was reported failed must never surface as durable.
    fn heal(&mut self) -> Result<(), StorageError> {
        let acked_len = self.len;
        let acked_next = self.next_seq;
        *self = Wal::open(&self.dir)?;
        if self.len > acked_len {
            let truncated = (|| -> Result<(), StorageError> {
                self.file.set_len(acked_len)?;
                self.file.seek(SeekFrom::End(0))?;
                self.file.sync_all()?;
                Ok(())
            })();
            if let Err(e) = truncated {
                self.poisoned = true;
                return Err(e);
            }
            self.len = acked_len;
            self.next_seq = acked_next;
        }
        Ok(())
    }

    /// Re-open the handle after something else replaced the file on disk
    /// (a checkpoint's [`truncate_wal`] renames a fresh log over it; this
    /// handle would otherwise keep appending to the unlinked inode).
    pub fn reopen(&mut self) -> Result<(), StorageError> {
        *self = Wal::open(&self.dir)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer_wal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(name: &str, rows: &[i64]) -> Table {
        let mut t = Table::new(
            name,
            Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]).unwrap(),
        );
        for r in rows {
            t.insert(vec![Value::Int(*r), Value::Text(format!("r{r}"))])
                .unwrap();
        }
        t
    }

    #[test]
    fn commit_and_scan_roundtrip() {
        let dir = tempdir("roundtrip");
        let mut wal = Wal::open(&dir).unwrap();
        let t = table("t", &[1, 2]);
        let s1 = wal.commit(&[WalOp::Put(&t)]).unwrap();
        let s2 = wal.commit(&[WalOp::Drop("gone"), WalOp::Put(&t)]).unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(wal.last_seq(), 2);

        let c = read_wal(&dir).unwrap().unwrap();
        assert_eq!(c.last_seq, 2);
        assert_eq!(c.commits.len(), 2);
        assert!(c.torn.is_none());
        assert_eq!(c.committed_len, wal.size_bytes());
        match &c.commits[0].1[..] {
            [WalRecord::Put(t2)] => {
                assert_eq!(t2.name(), "t");
                assert_eq!(t2.rows(), t.rows());
                assert_eq!(t2.schema(), t.schema());
            }
            other => panic!("unexpected {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_applies_puts_and_drops_above_min_seq() {
        let dir = tempdir("replay");
        let mut wal = Wal::open(&dir).unwrap();
        wal.commit(&[WalOp::Put(&table("t", &[1]))]).unwrap();
        wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();
        wal.commit(&[WalOp::Drop("t"), WalOp::Put(&table("u", &[9]))])
            .unwrap();

        let c = read_wal(&dir).unwrap().unwrap();
        let mut cat = Catalog::new();
        let (applied, torn) = replay(&c, &mut cat, 0);
        assert_eq!((applied, torn), (3, None));
        assert!(!cat.contains("t"));
        assert_eq!(cat.table("u").unwrap().len(), 1);

        // Gated replay skips already-folded commits.
        let mut cat2 = Catalog::new();
        cat2.add_table(table("t", &[1, 2])).unwrap();
        let (applied2, _) = replay(&c, &mut cat2, 2);
        assert_eq!(applied2, 1);
        assert!(!cat2.contains("t"));
        assert!(cat2.contains("u"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_byte_truncation_recovers_a_committed_prefix() {
        let dir = tempdir("tear");
        let mut wal = Wal::open(&dir).unwrap();
        for i in 0..3i64 {
            wal.commit(&[WalOp::Put(&table("t", &[i]))]).unwrap();
        }
        let full = fs::read(dir.join(WAL_FILE)).unwrap();

        for cut in 0..full.len() {
            fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let c = read_wal(&dir).unwrap().unwrap();
            // Whatever the cut, the scan yields some prefix of the three
            // commits, each intact, and flags the tail iff bytes remain
            // past the last whole commit.
            for (i, (seq, recs)) in c.commits.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                match &recs[..] {
                    [WalRecord::Put(t)] => assert_eq!(t.rows()[0][0], Value::Int(i as i64)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(
                c.committed_len <= cut as u64,
                "committed_len {} beyond the {cut}-byte file",
                c.committed_len
            );
            if (cut as u64) > c.committed_len {
                assert!(c.torn.is_some(), "cut at {cut} left undetected garbage");
            }
            // A writer reopening over the tear truncates it and can keep
            // committing.
            let before = c.commits.len() as u64;
            let mut w = Wal::open(&dir).unwrap();
            w.commit(&[WalOp::Put(&table("t", &[42]))]).unwrap();
            let c2 = read_wal(&dir).unwrap().unwrap();
            assert!(c2.torn.is_none());
            assert_eq!(c2.commits.len() as u64, before + 1);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_mid_file_stops_replay_at_the_flip() {
        let dir = tempdir("bitflip");
        let mut wal = Wal::open(&dir).unwrap();
        wal.commit(&[WalOp::Put(&table("t", &[1]))]).unwrap();
        let after_first = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        wal.commit(&[WalOp::Put(&table("t", &[2]))]).unwrap();

        let mut bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        let victim = after_first as usize + 14; // inside the second commit's put frame
        bytes[victim] ^= 0xff;
        fs::write(dir.join(WAL_FILE), bytes).unwrap();

        let c = read_wal(&dir).unwrap().unwrap();
        assert_eq!(c.commits.len(), 1, "replay must stop at the corruption");
        assert!(c.torn.as_deref().is_some_and(|t| t.contains("checksum")));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_resets_the_log_and_preserves_the_sequence_floor() {
        let dir = tempdir("trunc");
        let mut wal = Wal::open(&dir).unwrap();
        wal.commit(&[WalOp::Put(&table("t", &[1]))]).unwrap();
        wal.commit(&[WalOp::Put(&table("t", &[2]))]).unwrap();
        truncate_wal(&dir, 2).unwrap();

        let c = read_wal(&dir).unwrap().unwrap();
        assert_eq!((c.base_seq, c.last_seq, c.commits.len()), (2, 2, 0));

        wal.reopen().unwrap();
        let seq = wal.commit(&[WalOp::Drop("t")]).unwrap();
        assert_eq!(seq, 3, "sequences must continue past the truncation base");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_value_types_roundtrip_through_put_frames() {
        let dir = tempdir("types");
        let mut t = Table::new(
            "v",
            Schema::from_pairs([
                ("b", DataType::Bool),
                ("i", DataType::Int),
                ("f", DataType::Float),
                ("s", DataType::Text),
                ("d", DataType::Date),
            ])
            .unwrap(),
        );
        t.insert(vec![
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(-0.0),
            Value::Text("héllo\tworld".into()),
            Value::Date("2006-04-03".parse().unwrap()),
        ])
        .unwrap();
        t.insert(vec![
            Value::Null,
            Value::Null,
            Value::Float(f64::NAN),
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        wal.commit(&[WalOp::Put(&t)]).unwrap();
        let c = read_wal(&dir).unwrap().unwrap();
        match &c.commits[0].1[..] {
            [WalRecord::Put(t2)] => {
                assert_eq!(t2.schema(), t.schema());
                assert_eq!(t2.rows()[0], t.rows()[0]);
                match (&t2.rows()[1][2], &t.rows()[1][2]) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "NaN must roundtrip bit-exactly")
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }
}
