//! Materialized tables.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::index::HashIndex;
use crate::schema::{Column, Schema};
use crate::value::Value;

/// A row is an ordered list of values matching the table's schema.
pub type Row = Vec<Value>;

/// A named, materialized, typed table.
///
/// Rows are validated (arity + type conformance, with implicit `Int`→`Float`
/// coercion) on insertion, so downstream code can assume well-typed data.
/// Tables can carry per-column [`HashIndex`]es, which are built lazily and
/// invalidated by mutation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// Lazily built equi indexes, keyed by column position.
    indexes: HashMap<usize, HashIndex>,
}

impl Table {
    /// Create an empty table. Table names are lower-cased.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// The (lower-cased) table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The row at `idx`.
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows.get(idx)
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize, StorageError> {
        self.schema
            .index_of(name)
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Validate and insert a row. `Int` values are silently widened to
    /// `Float` where the column requires it.
    pub fn insert(&mut self, row: Row) -> Result<(), StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(self.schema.columns()) {
            let got = value
                .data_type()
                .map(|t| t.name().to_string())
                .unwrap_or_else(|| "NULL".to_string());
            match value.coerce_to(col.data_type()) {
                Some(v) => out.push(v),
                None => {
                    return Err(StorageError::TypeMismatch {
                        table: self.name.clone(),
                        column: col.name().to_string(),
                        expected: col.data_type(),
                        got,
                    })
                }
            }
        }
        self.rows.push(out);
        self.indexes.clear();
        Ok(())
    }

    /// Insert many rows, stopping at the first error.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<(), StorageError> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Value of column `col` in row `row_idx` (panics on bad indices —
    /// callers hold validated positions).
    pub fn value(&self, row_idx: usize, col: usize) -> &Value {
        &self.rows[row_idx][col]
    }

    /// Ensure an equi hash index exists on `column`, returning it.
    pub fn index_on(&mut self, column: &str) -> Result<&HashIndex, StorageError> {
        let col = self.column_index(column)?;
        self.indexes
            .entry(col)
            .or_insert_with(|| HashIndex::build(col, &self.rows));
        Ok(&self.indexes[&col])
    }

    /// An already-built index on `column`, if any.
    pub fn existing_index(&self, column: &str) -> Option<&HashIndex> {
        let col = self.schema.index_of(column)?;
        self.indexes.get(&col)
    }

    /// Append a new column with the given per-row values (offline schema
    /// evolution: identifier propagation adds `…idfk` columns this way).
    pub fn add_column(
        &mut self,
        column: Column,
        values: Vec<Value>,
    ) -> Result<usize, StorageError> {
        if values.len() != self.rows.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.rows.len(),
                got: values.len(),
            });
        }
        let ty = column.data_type();
        let mut coerced = Vec::with_capacity(values.len());
        for v in values {
            let got = v.data_type();
            match v.coerce_to(ty) {
                Some(cv) => coerced.push(cv),
                None => {
                    return Err(StorageError::TypeMismatch {
                        table: self.name.clone(),
                        column: column.name().to_string(),
                        expected: ty,
                        got: got.map(|t| t.name().to_string()).unwrap_or("NULL".into()),
                    })
                }
            }
        }
        let idx = self.schema.push_column(column)?;
        for (row, v) in self.rows.iter_mut().zip(coerced) {
            row.push(v);
        }
        self.indexes.clear();
        Ok(idx)
    }

    /// Overwrite the value of `column` in every row using `f(row_idx, old)`.
    pub fn update_column<F>(&mut self, column: &str, mut f: F) -> Result<(), StorageError>
    where
        F: FnMut(usize, &Value) -> Value,
    {
        let col = self.column_index(column)?;
        let ty = self
            .schema
            .column_at(col)
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_string(),
            })?
            .data_type();
        for (i, row) in self.rows.iter_mut().enumerate() {
            let new = f(i, &row[col]);
            match new.coerce_to(ty) {
                Some(v) => row[col] = v,
                None => {
                    return Err(StorageError::TypeMismatch {
                        table: self.name.clone(),
                        column: column.to_string(),
                        expected: ty,
                        got: "incompatible value".into(),
                    })
                }
            }
        }
        self.indexes.clear();
        Ok(())
    }

    /// Apply in-place cell updates: `f` returns `(column, new value)`
    /// pairs for each row it wants to change (or `None` to leave the row).
    /// New values are validated against the schema (with `Int`→`Float`
    /// coercion). Returns the number of rows changed.
    pub fn transform_rows<F>(&mut self, mut f: F) -> Result<usize, StorageError>
    where
        F: FnMut(usize, &Row) -> Option<Vec<(usize, Value)>>,
    {
        let mut changed = 0;
        for i in 0..self.rows.len() {
            let Some(updates) = f(i, &self.rows[i]) else {
                continue;
            };
            if updates.is_empty() {
                continue;
            }
            // Validate (and coerce) all updates before applying any, so the
            // row stays consistent on error.
            let mut coerced = Vec::with_capacity(updates.len());
            for (col, v) in updates {
                let column =
                    self.schema
                        .column_at(col)
                        .ok_or_else(|| StorageError::NoSuchColumn {
                            table: self.name.clone(),
                            column: format!("#{col}"),
                        })?;
                let ty = column.data_type();
                let got = v.data_type();
                match v.coerce_to(ty) {
                    Some(cv) => coerced.push((col, cv)),
                    None => {
                        return Err(StorageError::TypeMismatch {
                            table: self.name.clone(),
                            column: column.name().to_string(),
                            expected: ty,
                            got: got.map(|t| t.name().to_string()).unwrap_or("NULL".into()),
                        })
                    }
                }
            }
            for (col, v) in coerced {
                self.rows[i][col] = v;
            }
            changed += 1;
        }
        if changed > 0 {
            self.indexes.clear();
        }
        Ok(changed)
    }

    /// Retain only rows matching the predicate (row index, row).
    pub fn retain<F: FnMut(usize, &Row) -> bool>(&mut self, mut f: F) {
        let mut i = 0;
        self.rows.retain(|r| {
            let keep = f(i, r);
            i += 1;
            keep
        });
        self.indexes.clear();
    }

    /// Total number of cells (rows × columns); used for scan-cost baselines.
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.schema.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} [{} rows]",
            self.name,
            self.schema,
            self.rows.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn people() -> Table {
        let schema =
            Schema::from_pairs([("name", DataType::Text), ("age", DataType::Int)]).unwrap();
        Table::new("People", schema)
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = people();
        t.insert(vec!["ann".into(), 31.into()]).unwrap();
        assert_eq!(t.len(), 1);

        let err = t.insert(vec!["bob".into()]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));

        let err = t.insert(vec![Value::Int(3), Value::Int(4)]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn int_widens_to_float_column() {
        let schema = Schema::from_pairs([("prob", DataType::Float)]).unwrap();
        let mut t = Table::new("p", schema);
        t.insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(t.value(0, 0), &Value::Float(1.0));
    }

    #[test]
    fn nulls_conform_to_any_type() {
        let mut t = people();
        t.insert(vec![Value::Null, Value::Null]).unwrap();
        assert!(t.value(0, 0).is_null());
    }

    #[test]
    fn name_lowercased() {
        assert_eq!(people().name(), "people");
    }

    #[test]
    fn index_is_rebuilt_after_mutation() {
        let mut t = people();
        t.insert(vec!["ann".into(), 31.into()]).unwrap();
        t.index_on("name").unwrap();
        assert!(t.existing_index("name").is_some());
        t.insert(vec!["bob".into(), 40.into()]).unwrap();
        assert!(
            t.existing_index("name").is_none(),
            "mutation must invalidate"
        );
        let idx = t.index_on("name").unwrap();
        assert_eq!(idx.lookup(&"bob".into()), &[1]);
    }

    #[test]
    fn add_column_extends_rows() {
        let mut t = people();
        t.insert(vec!["ann".into(), 31.into()]).unwrap();
        t.insert(vec!["bob".into(), 40.into()]).unwrap();
        let idx = t
            .add_column(
                Column::new("prob", DataType::Float),
                vec![0.4.into(), 0.6.into()],
            )
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(t.value(1, 2), &Value::Float(0.6));
        // wrong arity rejected
        let err = t
            .add_column(Column::new("x", DataType::Int), vec![Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn update_column_rewrites_values() {
        let mut t = people();
        t.insert(vec!["ann".into(), 31.into()]).unwrap();
        t.update_column("age", |_, v| Value::Int(v.as_i64().unwrap() + 1))
            .unwrap();
        assert_eq!(t.value(0, 1), &Value::Int(32));
    }

    #[test]
    fn retain_filters_rows() {
        let mut t = people();
        t.insert(vec!["ann".into(), 31.into()]).unwrap();
        t.insert(vec!["bob".into(), 40.into()]).unwrap();
        t.retain(|_, r| r[1].as_i64().unwrap() > 35);
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, 0), &Value::text("bob"));
    }
}
