//! Property test: CSV persistence round-trips adversarial values for every
//! [`DataType`] — embedded quotes, commas, newlines and CRs in text, NULLs
//! anywhere, extreme integers, non-finite/signed-zero floats, and dates
//! across the whole supported calendar (years 1–9999; negative years have
//! no `YYYY-MM-DD` spelling and are excluded by construction).
//!
//! One documented lossy case: `Text("")` is written as the empty field and
//! reads back as NULL. The expectation function below applies exactly that
//! normalization and nothing else.

use conquer_storage::{csv, Catalog, DataType, Date, Schema, Table, Value};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable ASCII plus the four characters RFC 4180 makes interesting,
    // and some multi-byte UTF-8 for good measure.
    proptest::collection::vec(
        prop_oneof![
            Just('"'),
            Just(','),
            Just('\n'),
            Just('\r'),
            Just('é'),
            Just('日'),
            (32u8..=126).prop_map(|b| b as char),
        ],
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn float_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        Just(5e-324), // smallest subnormal
        Just(0.0),
        Just(-0.0),
    ]
}

/// Days range spanning 0001-01-01 ..= 9999-12-31.
const MIN_DAY: i32 = -719162;
const MAX_DAY: i32 = 2932896;

fn value_for(ty: DataType) -> BoxedStrategy<Value> {
    let with_null = |s: BoxedStrategy<Value>| prop_oneof![1 => Just(Value::Null), 4 => s].boxed();
    match ty {
        DataType::Bool => with_null(any::<bool>().prop_map(Value::Bool).boxed()),
        DataType::Int => with_null(
            prop_oneof![
                any::<i64>(),
                Just(i64::MIN),
                Just(i64::MAX),
                Just(0),
                Just(-1),
            ]
            .prop_map(Value::Int)
            .boxed(),
        ),
        DataType::Float => with_null(float_strategy().prop_map(Value::Float).boxed()),
        DataType::Text => with_null(text_strategy().prop_map(Value::text).boxed()),
        DataType::Date => with_null(
            (MIN_DAY..=MAX_DAY)
                .prop_map(|d| Value::Date(Date::from_days(d)))
                .boxed(),
        ),
    }
}

fn schema() -> Schema {
    Schema::from_pairs([
        ("b", DataType::Bool),
        ("i", DataType::Int),
        ("f", DataType::Float),
        ("t", DataType::Text),
        ("d", DataType::Date),
    ])
    .unwrap()
}

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        value_for(DataType::Bool),
        value_for(DataType::Int),
        value_for(DataType::Float),
        value_for(DataType::Text),
        value_for(DataType::Date),
    )
        .prop_map(|(b, i, f, t, d)| vec![b, i, f, t, d])
}

/// What a value must read back as: everything exact, except two documented
/// lossy cases — `Text("")` → NULL (NULL is written as the empty field),
/// and NaN sign/payload bits (every NaN prints as `NaN` and parses back as
/// the canonical quiet NaN, which `f64::total_cmp` distinguishes from
/// `-NaN`).
fn expected(v: &Value) -> Value {
    match v {
        Value::Text(t) if t.is_empty() => Value::Null,
        Value::Float(f) if f.is_nan() => Value::Float(f64::NAN),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// write_table → read_table is the identity (modulo `Text("")` → NULL)
    /// for adversarial rows covering every data type.
    #[test]
    fn csv_roundtrip_adversarial(rows in proptest::collection::vec(row_strategy(), 0..12)) {
        let mut table = Table::new("t", schema());
        for row in &rows {
            table.insert(row.clone()).unwrap();
        }
        let mut buf = Vec::new();
        csv::write_table(&table, &mut buf).unwrap();
        let back = csv::read_table("t", schema(), &buf[..]).unwrap();
        prop_assert_eq!(back.len(), rows.len());
        for (ri, row) in rows.iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                prop_assert_eq!(
                    back.value(ri, ci),
                    &expected(v),
                    "row {} col {} (wrote {:?})", ri, ci, v
                );
            }
        }
    }

    /// The same property through the full save/load path (epoch directory,
    /// manifest verification included).
    #[test]
    fn persist_roundtrip_adversarial(rows in proptest::collection::vec(row_strategy(), 0..8)) {
        let mut table = Table::new("t", schema());
        for row in &rows {
            table.insert(row.clone()).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(table).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "conquer_csv_prop_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        conquer_storage::save_catalog(&cat, &dir).unwrap();
        let back = conquer_storage::load_catalog(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let t = back.table("t").unwrap();
        prop_assert_eq!(t.len(), rows.len());
        for (ri, row) in rows.iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                prop_assert_eq!(t.value(ri, ci), &expected(v), "row {} col {}", ri, ci);
            }
        }
    }
}
