//! Fault-injection tests for crash-safe persistence (require
//! `--features fault`): kill a save at every reachable failure point and
//! assert (a) the failure surfaces as a typed error, (b) the previously
//! committed catalog is still fully loadable, (c) the very next save
//! succeeds and commits.
#![cfg(feature = "fault")]

use std::path::{Path, PathBuf};

use conquer_sync::{rank, Mutex, MutexGuard};

use conquer_storage::{
    fault, load_catalog, load_catalog_recover, save_catalog, Catalog, DataType, Schema,
    StorageError, Table, Value,
};

/// The fault registry is process-global; every test must hold this lock.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_fault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A catalog whose single table has `n` rows (so versions are
/// distinguishable by row count).
fn catalog_with_rows(n: i64) -> Catalog {
    let mut t = Table::new(
        "t",
        Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]).unwrap(),
    );
    for i in 0..n {
        t.insert(vec![Value::Int(i), Value::text(format!("row {i}"))])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(t).unwrap();
    cat
}

fn loaded_rows(dir: &Path) -> usize {
    load_catalog(dir).unwrap().table("t").unwrap().len()
}

/// Count how many times `point` is hit during one clean save of `cat`.
fn count_hits(point: &str, cat: &Catalog) -> u64 {
    let scratch = tempdir("scratch");
    fault::reset();
    save_catalog(cat, &scratch).unwrap();
    let hits = fault::hit_count(point);
    std::fs::remove_dir_all(&scratch).ok();
    hits
}

#[test]
fn save_killed_at_every_failure_point_leaves_previous_catalog_loadable() {
    let _guard = serialize();
    let dir = tempdir("kill_everywhere");
    let v1 = catalog_with_rows(3);
    let v2 = catalog_with_rows(7);
    fault::reset();
    save_catalog(&v1, &dir).unwrap();
    assert_eq!(loaded_rows(&dir), 3);

    for point in [
        "persist::file",
        "persist::io_write",
        "persist::manifest",
        "persist::publish",
        "persist::commit",
    ] {
        let hits = count_hits(point, &v2);
        assert!(hits > 0, "fault point {point} never hit during a save");
        for i in 1..=hits {
            fault::reset();
            fault::arm(point, i);
            let err = save_catalog(&v2, &dir)
                .expect_err(&format!("save survived {point} hit {i}/{hits}"));
            assert!(
                matches!(err, StorageError::Io(_)),
                "unexpected error type from {point} hit {i}: {err:?}"
            );
            // The committed snapshot is untouched — strict load succeeds
            // and still sees v1.
            assert_eq!(
                loaded_rows(&dir),
                3,
                "previous catalog lost after {point} hit {i}"
            );
        }
    }

    // The database stays usable: the next clean save commits v2 and the
    // debris from all the crashed attempts is garbage-collected.
    fault::reset();
    save_catalog(&v2, &dir).unwrap();
    assert_eq!(loaded_rows(&dir), 7);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stale temp dirs survived gc: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_reports_debris_from_a_crashed_save() {
    let _guard = serialize();
    let dir = tempdir("debris");
    fault::reset();
    save_catalog(&catalog_with_rows(2), &dir).unwrap();
    // Crash mid-write: leaves a .tmp-* directory behind.
    fault::arm("persist::manifest", 1);
    assert!(save_catalog(&catalog_with_rows(5), &dir).is_err());
    fault::reset();
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(cat.table("t").unwrap().len(), 2);
    assert!(
        report.issues.iter().any(|i| i.contains("interrupted save")),
        "{report:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_fault_is_a_typed_error_not_a_panic() {
    let _guard = serialize();
    let dir = tempdir("typed");
    fault::reset();
    fault::arm("persist::io_write", 1);
    let err = save_catalog(&catalog_with_rows(1), &dir).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    fault::reset();
    std::fs::remove_dir_all(&dir).ok();
}
