//! Fault-injection tests for the write-ahead log (require
//! `--features fault`): kill a commit, a checkpoint, and a truncation at
//! every reachable failure point and assert that (a) the failure surfaces
//! as a typed error, (b) reload recovers exactly the last committed
//! state — never a torn catalog, never a lost committed write — and
//! (c) the log keeps accepting commits afterwards.
#![cfg(feature = "fault")]

use std::path::{Path, PathBuf};

use conquer_sync::{rank, Mutex, MutexGuard};

use conquer_storage::{
    fault, load_catalog, load_catalog_recover, save_catalog, DataType, Schema, Table, Value, Wal,
    WalOp,
};

/// The fault registry is process-global; every test must hold this lock.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_fwal_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn table(rows: i64) -> Table {
    let mut t = Table::new(
        "t",
        Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]).unwrap(),
    );
    for i in 0..rows {
        t.insert(vec![Value::Int(i), Value::text(format!("row {i}"))])
            .unwrap();
    }
    t
}

fn loaded_rows(dir: &Path) -> usize {
    load_catalog(dir).unwrap().table("t").unwrap().len()
}

/// Hits of `point` during one clean two-op commit.
fn commit_hits(point: &str) -> u64 {
    let scratch = tempdir("scratch");
    fault::reset();
    let mut wal = Wal::open(&scratch).unwrap();
    wal.commit(&[WalOp::Put(&table(2)), WalOp::Drop("ghost")])
        .unwrap();
    let hits = fault::hit_count(point);
    std::fs::remove_dir_all(&scratch).ok();
    hits
}

#[test]
fn commit_killed_at_every_failure_point_recovers_last_committed_state() {
    let _guard = serialize();
    let dir = tempdir("commit_kill");
    fault::reset();
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table(3))]).unwrap();
    assert_eq!(loaded_rows(&dir), 3);

    for point in ["wal::op", "wal::commit", "wal::io_write", "wal::sync"] {
        let hits = commit_hits(point);
        assert!(hits > 0, "fault point {point} never hit during a commit");
        for i in 1..=hits {
            fault::reset();
            fault::arm(point, i);
            let err = wal
                .commit(&[WalOp::Put(&table(7)), WalOp::Drop("ghost")])
                .unwrap_err();
            assert!(
                err.to_string().contains("injected fault"),
                "{point} hit {i}: {err}"
            );
            // A failed commit must be as if it never happened: the last
            // committed state reloads exactly, strict and lenient alike.
            fault::reset();
            assert_eq!(loaded_rows(&dir), 3, "{point} hit {i}");
            let (cat, report) = load_catalog_recover(&dir).unwrap();
            assert_eq!(cat.table("t").unwrap().len(), 3);
            assert!(
                !report.issues.iter().any(|s| s.contains("torn")),
                "rolled-back append left a tear at {point} hit {i}: {report:?}"
            );
        }
    }

    // The log still works after every induced failure.
    fault::reset();
    wal.commit(&[WalOp::Put(&table(9))]).unwrap();
    assert_eq!(loaded_rows(&dir), 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_killed_at_every_failure_point_loses_no_committed_write() {
    let _guard = serialize();
    let dir = tempdir("ckpt_kill");
    fault::reset();
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table(2))]).unwrap();
    save_catalog(&load_catalog(&dir).unwrap(), &dir).unwrap();
    wal.reopen().unwrap();
    wal.commit(&[WalOp::Put(&table(5))]).unwrap();
    assert_eq!(loaded_rows(&dir), 5);

    // Hits of each point during one clean checkpoint of this state.
    let count = |point: &str| -> u64 {
        let scratch = tempdir("ckpt_scratch");
        fault::reset();
        let mut w = Wal::open(&scratch).unwrap();
        w.commit(&[WalOp::Put(&table(2))]).unwrap();
        save_catalog(&load_catalog(&scratch).unwrap(), &scratch).unwrap();
        let hits = fault::hit_count(point);
        std::fs::remove_dir_all(&scratch).ok();
        hits
    };

    for point in [
        "persist::file",
        "persist::io_write",
        "persist::manifest",
        "persist::publish",
        "persist::commit",
        "wal::truncate",
        "wal::truncate_commit",
    ] {
        let hits = count(point);
        assert!(
            hits > 0,
            "fault point {point} never hit during a checkpoint"
        );
        for i in 1..=hits {
            fault::reset();
            fault::arm(point, i);
            let folded = load_catalog(&dir).unwrap();
            // The epoch-save part of a checkpoint fails loudly; the WAL
            // truncation is best-effort (the fold already committed).
            let _ = save_catalog(&folded, &dir);
            fault::reset();
            // Regardless of where the kill landed, reload must see every
            // committed write: either the old epoch + WAL replay, or the
            // new epoch that folded it — both are exactly 5 rows.
            assert_eq!(loaded_rows(&dir), 5, "{point} hit {i}");
            let (cat, _) = load_catalog_recover(&dir).unwrap();
            assert_eq!(cat.table("t").unwrap().len(), 5, "{point} hit {i}");
        }
    }

    // After all that, a clean checkpoint still works and the WAL shrinks.
    fault::reset();
    save_catalog(&load_catalog(&dir).unwrap(), &dir).unwrap();
    assert_eq!(loaded_rows(&dir), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_failure_is_typed_and_reopen_succeeds() {
    let _guard = serialize();
    let dir = tempdir("open_kill");
    fault::reset();
    fault::arm("wal::open", 1);
    let err = Wal::open(&dir).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    fault::reset();
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table(1))]).unwrap();
    assert_eq!(loaded_rows(&dir), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_truncation_leaves_a_cleanable_temp_file() {
    let _guard = serialize();
    let dir = tempdir("trunc_tmp");
    fault::reset();
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table(4))]).unwrap();

    // Kill the checkpoint between staging the fresh log and the rename.
    fault::arm("wal::truncate_commit", 1);
    let _ = save_catalog(&load_catalog(&dir).unwrap(), &dir);
    fault::reset();
    let stale: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(".wal.tmp-"))
        })
        .collect();
    assert!(!stale.is_empty(), "the staged log must be left behind");

    // Recovery removes it, reports it, and the state is intact.
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(cat.table("t").unwrap().len(), 4);
    assert!(
        report
            .issues
            .iter()
            .any(|i| i.contains("interrupted checkpoint") && i.contains("removed")),
        "{report:?}"
    );
    let (_, report2) = load_catalog_recover(&dir).unwrap();
    assert!(
        !report2.issues.iter().any(|i| i.contains("wal.tmp")),
        "{report2:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
