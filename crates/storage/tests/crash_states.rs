//! Crash-state enumeration: mount the simulated filesystem, run a storage
//! operation, enumerate *every* post-crash disk image the unsynced state
//! admits (subsets of pending ops dropped or reordered, the final write
//! torn mid-buffer), and prove each one recovers to a committed boundary —
//! never a partial state, never an unrecoverable directory.
//!
//! Covered paths: a WAL commit whose fsync fails, every fsync of a full
//! checkpoint (`save_catalog`), and spill writes (which are scratch and
//! must never affect recovery).

#![cfg(feature = "fault")]

use std::path::{Path, PathBuf};

use conquer_storage::vfs::{self, mount_sim};
use conquer_storage::{
    load_catalog_recover, save_catalog, scrub, Catalog, DataType, Schema, Table, Value, Wal, WalOp,
};

fn table(name: &str, rows: &[i64]) -> Table {
    let mut t = Table::new(name, Schema::from_pairs([("a", DataType::Int)]).unwrap());
    for r in rows {
        t.insert(vec![Value::Int(*r)]).unwrap();
    }
    t
}

fn catalog(rows: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(table("t", rows)).unwrap();
    cat
}

fn rows_of(cat: &Catalog) -> Vec<i64> {
    cat.table("t")
        .expect("table t must exist in every recovered state")
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        })
        .collect()
}

/// Recover `dir` after restoring `state` and return t's rows.
fn recovered_rows(fs: &vfs::SimFs, state: &vfs::CrashState, dir: &Path) -> Vec<i64> {
    fs.restore(state);
    let (cat, _report) = load_catalog_recover(dir)
        .unwrap_or_else(|e| panic!("crash state {:?} failed to recover: {e}", state.label));
    rows_of(&cat)
}

#[test]
fn every_crash_state_of_a_failed_wal_commit_recovers_to_a_boundary() {
    let (fs, _guard) = mount_sim("/sim/crash_wal");
    let dir = PathBuf::from("/sim/crash_wal/db");

    // Committed boundary A: an epoch with two rows, everything durable.
    save_catalog(&catalog(&[1, 2]), &dir).unwrap();
    fs.restore(&fs.current_image());

    // Boundary B is a WAL commit whose fsync fails: the append reached
    // the page cache but durability was never promised, and the rollback
    // truncation is itself unsynced. Both old and fully-applied new are
    // legal post-crash outcomes; anything in between is not.
    let mut wal = Wal::open(&dir).unwrap();
    fs.fail_sync("wal.log", 1);
    let err = wal.commit(&[WalOp::Put(&table("t", &[1, 2, 3]))]);
    assert!(err.is_err(), "a failed fsync must fail the commit");
    assert!(wal.is_poisoned());
    assert!(fs.pending_ops() > 0, "the unacked append must be pending");

    let states = fs.crash_states();
    assert!(states.len() > 2, "expected subsets + torn variants");
    let mut outcomes = std::collections::BTreeSet::new();
    for state in &states {
        let rows = recovered_rows(&fs, state, &dir);
        assert!(
            rows == vec![1, 2] || rows == vec![1, 2, 3],
            "crash state {:?} recovered to a non-boundary state {rows:?}",
            state.label
        );
        outcomes.insert(rows);
    }
    // The enumeration must actually exercise both sides of the boundary:
    // the old state (append lost or torn) and the complete-but-unacked
    // commit (append fully reached the platter).
    assert_eq!(outcomes.len(), 2, "both boundaries must be reachable");
}

#[test]
fn every_crash_state_of_every_checkpoint_fsync_failure_recovers() {
    let (fs, _guard) = mount_sim("/sim/crash_ckpt");
    let dir = PathBuf::from("/sim/crash_ckpt/db");

    // Committed boundary: epoch v000001 with the old rows.
    save_catalog(&catalog(&[1, 2]), &dir).unwrap();
    let baseline = fs.current_image();

    // Count the fsyncs of a clean checkpoint so the loop below can fail
    // each one in turn. `restore` resets the sync counter.
    fs.restore(&baseline);
    save_catalog(&catalog(&[1, 2, 3]), &dir).unwrap();
    let total_syncs = fs.sync_calls();
    assert!(
        total_syncs >= 8,
        "expected a multi-fsync save: {total_syncs}"
    );

    for nth in 1..=total_syncs {
        fs.restore(&baseline);
        fs.fail_sync("", nth);
        let saved = save_catalog(&catalog(&[1, 2, 3]), &dir);

        for state in &fs.crash_states() {
            let rows = recovered_rows(&fs, state, &dir);
            match &saved {
                // A save that reported success has committed the new
                // epoch durably; no crash may roll it back.
                Ok(()) => assert_eq!(
                    rows,
                    vec![1, 2, 3],
                    "fsync #{nth} noted-but-tolerated, yet crash state {:?} lost the save",
                    state.label
                ),
                // A failed save must leave old-or-new, never a mix and
                // never an unloadable directory.
                Err(_) => assert!(
                    rows == vec![1, 2] || rows == vec![1, 2, 3],
                    "fsync #{nth} failed, crash state {:?} recovered to {rows:?}",
                    state.label
                ),
            }
        }
    }
}

#[test]
fn spill_writes_never_sync_and_never_affect_recovery() {
    let (fs, _guard) = mount_sim("/sim/crash_spill");
    let dir = PathBuf::from("/sim/crash_spill/db");

    save_catalog(&catalog(&[7]), &dir).unwrap();
    fs.restore(&fs.current_image());

    // Spill a few rows. Spill data is scratch for an in-flight query: it
    // must never be fsynced (that would tax every large query for bytes
    // nobody needs after a crash), so every spill op stays pending.
    let session = conquer_storage::SpillSession::create_in(&dir).unwrap();
    let mut w = session.writer().unwrap();
    w.write_row(&[Value::Int(1)]).unwrap();
    w.write_row(&[Value::Int(2)]).unwrap();
    let spill = w.finish().unwrap();
    assert_eq!(spill.rows(), 2);
    assert!(
        fs.pending_ops() > 0,
        "spill writes must not be fsynced, so they must all be pending"
    );

    for state in &fs.crash_states() {
        fs.restore(state);
        // Whatever subset of the spill survived, recovery sees the same
        // committed catalog and sweeps the orphaned spill directory.
        let (cat, report) = load_catalog_recover(&dir).unwrap();
        assert_eq!(rows_of(&cat), vec![7]);
        if state.dirs.iter().any(|d| {
            d.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("spill-"))
        }) {
            assert!(
                report.issues.iter().any(|i| i.contains("spill")),
                "surviving spill dir must be reported: {report:?}"
            );
        }
    }
}

#[test]
fn scrub_quarantines_spill_dirs_left_by_a_crash() {
    let (fs, _guard) = mount_sim("/sim/crash_spill_scrub");
    let dir = PathBuf::from("/sim/crash_spill_scrub/db");

    save_catalog(&catalog(&[7]), &dir).unwrap();
    let session = conquer_storage::SpillSession::create_in(&dir).unwrap();
    let mut w = session.writer().unwrap();
    w.write_row(&[Value::Int(1)]).unwrap();
    let _spill = w.finish().unwrap();

    // Crash with everything applied: the spill dir survives in full.
    fs.restore(&fs.current_image());
    let report = scrub(&dir).unwrap();
    assert!(
        report.is_clean(),
        "spill dirs are suspect, not corrupt: {report:?}"
    );
    assert!(report.quarantined >= 1, "{report:?}");
    assert!(
        report.issues.iter().any(|i| i.contains("spill")),
        "{report:?}"
    );
}
