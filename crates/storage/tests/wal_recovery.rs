//! Integration tests for WAL-backed recovery: epoch snapshots plus
//! committed log suffixes must reload to exactly the last committed
//! state, across checkpoints, torn tails, and epoch fallback.

use std::fs;
use std::path::{Path, PathBuf};

use conquer_storage::wal::WAL_FILE;
use conquer_storage::{
    load_catalog, load_catalog_recover, save_catalog, Catalog, DataType, Schema, Table, Value, Wal,
    WalOp,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_walrec_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn table(name: &str, rows: &[i64]) -> Table {
    let mut t = Table::new(name, Schema::from_pairs([("a", DataType::Int)]).unwrap());
    for r in rows {
        t.insert(vec![Value::Int(*r)]).unwrap();
    }
    t
}

fn rows_of(cat: &Catalog, name: &str) -> Vec<i64> {
    cat.table(name)
        .unwrap()
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        })
        .collect()
}

#[test]
fn wal_suffix_replays_on_top_of_the_epoch() {
    let dir = tempdir("suffix");
    let mut cat = Catalog::new();
    cat.add_table(table("t", &[1, 2])).unwrap();
    save_catalog(&cat, &dir).unwrap();

    // Two committed writes after the checkpoint.
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2, 3]))]).unwrap();
    wal.commit(&[WalOp::Put(&table("u", &[9]))]).unwrap();

    let strict = load_catalog(&dir).unwrap();
    assert_eq!(rows_of(&strict, "t"), vec![1, 2, 3]);
    assert_eq!(rows_of(&strict, "u"), vec![9]);

    let (lenient, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&lenient, "t"), vec![1, 2, 3]);
    assert_eq!(report.wal_commits_replayed, 2);
    assert!(report.is_clean(), "{report:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_folds_the_wal_and_gates_stale_replay() {
    let dir = tempdir("fold");
    let mut cat = Catalog::new();
    cat.add_table(table("t", &[1])).unwrap();
    save_catalog(&cat, &dir).unwrap();

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();

    // Checkpoint: fold epoch + WAL into a fresh epoch.
    let folded = load_catalog(&dir).unwrap();
    let wal_before = fs::read(dir.join(WAL_FILE)).unwrap();
    save_catalog(&folded, &dir).unwrap();
    let wal_after = fs::read(dir.join(WAL_FILE)).unwrap();
    assert!(
        wal_after.len() < wal_before.len(),
        "checkpoint must truncate the log ({} -> {} bytes)",
        wal_before.len(),
        wal_after.len()
    );
    assert_eq!(rows_of(&load_catalog(&dir).unwrap(), "t"), vec![1, 2]);

    // Even if the truncation had been lost (simulate the crash window by
    // restoring the pre-checkpoint log), replay is gated on the epoch's
    // walseq: the stale commit must NOT re-apply over newer state.
    fs::write(dir.join(WAL_FILE), &wal_before).unwrap();
    wal.reopen().unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2, 7]))]).unwrap();
    let (cat2, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat2, "t"), vec![1, 2, 7]);
    assert_eq!(
        report.wal_commits_replayed, 1,
        "the pre-checkpoint commit must be skipped: {report:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_reported_and_committed_prefix_survives() {
    let dir = tempdir("torn");
    let mut cat = Catalog::new();
    cat.add_table(table("t", &[1])).unwrap();
    save_catalog(&cat, &dir).unwrap();

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2, 3]))]).unwrap();

    // Tear the last commit mid-frame, as a kill mid-append would.
    let bytes = fs::read(dir.join(WAL_FILE)).unwrap();
    fs::write(dir.join(WAL_FILE), &bytes[..bytes.len() - 5]).unwrap();

    let strict = load_catalog(&dir).unwrap();
    assert_eq!(rows_of(&strict, "t"), vec![1, 2], "prefix must survive");

    let (lenient, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&lenient, "t"), vec![1, 2]);
    assert_eq!(report.wal_commits_replayed, 1);
    assert!(
        report.issues.iter().any(|i| i.contains("incomplete tail")),
        "{report:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_alone_recovers_an_empty_directory() {
    let dir = tempdir("bare");
    fs::create_dir_all(&dir).unwrap();
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[4, 5]))]).unwrap();

    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat, "t"), vec![4, 5]);
    assert_eq!(report.loaded_epoch, None);
    assert_eq!(report.wal_commits_replayed, 1);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn epoch_fallback_replays_more_of_the_log() {
    let dir = tempdir("fallback");
    let mut cat = Catalog::new();
    cat.add_table(table("t", &[1])).unwrap();
    save_catalog(&cat, &dir).unwrap();
    let epoch1 = current_epoch(&dir);
    let backup = tempdir("fallback_backup");
    copy_dir(&dir.join(&epoch1), &backup.join(&epoch1));

    // Commit to the WAL, checkpoint (epoch2 folds seq 1), then corrupt
    // epoch2 and restore epoch1 — but keep the post-checkpoint WAL commit.
    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();
    save_catalog(&load_catalog(&dir).unwrap(), &dir).unwrap();
    wal.reopen().unwrap();
    wal.commit(&[WalOp::Put(&table("u", &[8]))]).unwrap();
    let epoch2 = current_epoch(&dir);
    assert_ne!(epoch1, epoch2);
    copy_dir(&backup.join(&epoch1), &dir.join(&epoch1));
    fs::write(
        dir.join(&epoch2)
            .join(conquer_storage::persist::MANIFEST_FILE),
        "garbage",
    )
    .unwrap();

    // epoch2 is unloadable; recovery falls back to epoch1, whose lower
    // walseq lets the (truncated) WAL bring it as far forward as it can:
    // the post-checkpoint commit still applies.
    let (rec, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(report.loaded_epoch, Some(epoch1));
    assert_eq!(rows_of(&rec, "u"), vec![8]);
    assert!(
        report.issues.iter().any(|i| i.contains(&epoch2)),
        "{report:?}"
    );
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&backup).ok();
}

fn current_epoch(dir: &Path) -> String {
    fs::read_to_string(dir.join("CURRENT"))
        .unwrap()
        .trim()
        .to_string()
}

fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}
