//! Typed disk faults against the simulated filesystem: ENOSPC mid-commit
//! and mid-spill, EIO on read, silent bit-rot in committed WAL frames,
//! and the fsyncgate rule — a failed WAL fsync is never acknowledged and
//! the handle heals by reopen + re-truncate + replay, never fsync retry.

#![cfg(feature = "fault")]

use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

use conquer_storage::vfs::{self, mount_sim};
use conquer_storage::wal::WAL_FILE;
use conquer_storage::{
    load_catalog_recover, save_catalog, scrub, Catalog, DataType, Schema, StorageError, Table,
    Value, Wal, WalOp,
};

fn table(name: &str, rows: &[i64]) -> Table {
    let mut t = Table::new(name, Schema::from_pairs([("a", DataType::Int)]).unwrap());
    for r in rows {
        t.insert(vec![Value::Int(*r)]).unwrap();
    }
    t
}

fn catalog(rows: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(table("t", rows)).unwrap();
    cat
}

fn rows_of(cat: &Catalog) -> Vec<i64> {
    cat.table("t")
        .unwrap()
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        })
        .collect()
}

fn sim_size(fs: &vfs::SimFs) -> u64 {
    fs.current_image()
        .files
        .values()
        .map(|d| d.len() as u64)
        .sum()
}

#[test]
fn enospc_mid_commit_is_typed_and_rolls_back() {
    let (fs, _guard) = mount_sim("/sim/flt_enospc_wal");
    let dir = PathBuf::from("/sim/flt_enospc_wal/db");
    save_catalog(&catalog(&[1]), &dir).unwrap();

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();

    // Cap the disk just above current usage: the next append hits ENOSPC
    // partway through and must surface as the typed NoSpace error with
    // the log rolled back to the acknowledged boundary.
    fs.set_capacity(Some(sim_size(&fs) + 8));
    let big: Vec<i64> = (0..200).collect();
    let err = wal.commit(&[WalOp::Put(&table("t", &big))]).unwrap_err();
    assert!(
        matches!(err, StorageError::NoSpace(_)),
        "expected NoSpace, got {err:?}"
    );

    // The failed commit left no trace; after space frees up the same
    // handle commits again and recovery sees only acknowledged writes.
    fs.set_capacity(None);
    wal.commit(&[WalOp::Put(&table("t", &[1, 2, 3]))]).unwrap();
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat), vec![1, 2, 3]);
    assert_eq!(report.wal_commits_replayed, 2, "{report:?}");
}

#[test]
fn enospc_mid_spill_is_typed() {
    let (fs, _guard) = mount_sim("/sim/flt_enospc_spill");
    let dir = PathBuf::from("/sim/flt_enospc_spill/db");
    vfs::create_dir_all(&dir).unwrap();

    let session = conquer_storage::SpillSession::create_in(&dir).unwrap();
    let mut w = session.writer().unwrap();
    fs.set_capacity(Some(sim_size(&fs) + 64));
    // BufWriter absorbs rows until its buffer spills to the full disk.
    let mut err = None;
    for i in 0..100_000 {
        if let Err(e) = w.write_row(&[Value::Int(i)]) {
            err = Some(e);
            break;
        }
    }
    let err = err.expect("a full disk must fail the spill");
    assert!(
        matches!(err, StorageError::NoSpace(_)),
        "expected NoSpace, got {err:?}"
    );
}

#[test]
fn eio_on_read_makes_the_scrub_count_the_file_corrupt() {
    let (fs, _guard) = mount_sim("/sim/flt_eio");
    let dir = PathBuf::from("/sim/flt_eio/db");
    save_catalog(&catalog(&[1, 2]), &dir).unwrap();

    assert!(scrub(&dir).unwrap().is_clean());
    fs.fail_read("t.csv", 1);
    let report = scrub(&dir).unwrap();
    assert!(report.corrupt >= 1, "{report:?}");
    assert!(
        report.issues.iter().any(|i| i.contains("t.csv")),
        "{report:?}"
    );
    // The injected fault fires once; the next sweep is clean again.
    assert!(scrub(&dir).unwrap().is_clean());
}

#[test]
fn bit_rot_in_a_committed_frame_stops_replay_at_the_epoch_boundary() {
    let (fs, _guard) = mount_sim("/sim/flt_bitrot");
    let dir = PathBuf::from("/sim/flt_bitrot/db");
    save_catalog(&catalog(&[1]), &dir).unwrap();

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2, 3]))]).unwrap();

    // Flip one bit inside the *first* commit's put frame (past the
    // 35-byte header frame). Replay must stop there: the second commit
    // is intact on disk but unreachable behind the rot, and trusting it
    // would reorder history.
    fs.flip_byte(&dir.join(WAL_FILE), 40);
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat), vec![1], "replay must stop at the flip");
    assert_eq!(report.wal_commits_replayed, 0);
    assert!(!report.is_clean(), "{report:?}");

    // The scrub sees the same rot as corruption, attributed to the WAL.
    let scrubbed = scrub(&dir).unwrap();
    assert!(scrubbed.corrupt >= 1, "{scrubbed:?}");
    assert!(scrubbed.wal_corrupt_frames >= 1, "{scrubbed:?}");
}

#[test]
fn torn_tail_is_recoverable_and_scrubbed_as_wal_corruption() {
    let (_fs, _guard) = mount_sim("/sim/flt_torn");
    let dir = PathBuf::from("/sim/flt_torn/db");
    save_catalog(&catalog(&[1]), &dir).unwrap();

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[1, 2]))]).unwrap();

    // Tear the tail by hand: a few garbage bytes past the last commit,
    // as a crash mid-append would leave.
    let mut f = vfs::File::open_rw(&dir.join(WAL_FILE)).unwrap();
    f.seek(SeekFrom::End(0)).unwrap();
    f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // Recovery keeps every committed frame and reports the torn residue.
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat), vec![1, 2]);
    assert_eq!(report.wal_commits_replayed, 1);
    assert!(!report.is_clean(), "{report:?}");

    // A scrub runs on a quiesced directory where `Wal::open` would have
    // truncated the tear already; finding one is corruption.
    let scrubbed = scrub(&dir).unwrap();
    assert!(scrubbed.wal_corrupt_frames >= 1, "{scrubbed:?}");

    // And `Wal::open` indeed repairs it for the write path.
    let wal = Wal::open(&dir).unwrap();
    assert_eq!(wal.last_seq(), 1);
    assert!(scrub(&dir).unwrap().is_clean());
}

#[test]
fn failed_fsync_is_never_acked_and_heals_by_reopen_not_retry() {
    let (fs, _guard) = mount_sim("/sim/flt_fsyncgate");
    let dir = PathBuf::from("/sim/flt_fsyncgate/db");
    save_catalog(&catalog(&[0]), &dir).unwrap();
    fs.restore(&fs.current_image());

    let mut wal = Wal::open(&dir).unwrap();
    wal.commit(&[WalOp::Put(&table("t", &[0, 1]))]).unwrap();

    let failures_before = vfs::counters().fsync_failures;
    fs.fail_sync("wal.log", 1);
    let err = wal.commit(&[WalOp::Put(&table("t", &[0, 1, 2]))]);
    assert!(err.is_err(), "a failed fsync must fail the commit");
    assert!(wal.is_poisoned(), "the descriptor must be poisoned");
    assert!(
        vfs::counters().fsync_failures > failures_before,
        "the failure must be counted"
    );

    // The next commit on the same handle must heal by reopening — the
    // open count proves a fresh descriptor, and the sim would panic the
    // durability check below if the old (lied-to) descriptor had simply
    // retried fsync, because lied bytes are never promotable.
    let opens_before = fs.opens();
    let seq = wal.commit(&[WalOp::Put(&table("t", &[0, 3]))]).unwrap();
    assert!(!wal.is_poisoned());
    assert!(
        fs.opens() > opens_before,
        "healing must reopen the file, not retry fsync on the poisoned fd"
    );

    // Crash now: the durable image must contain the first and third
    // commits and no trace of the unacknowledged second one.
    fs.restore(&fs.durable_image());
    let (cat, report) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat), vec![0, 3]);
    assert_eq!(report.wal_commits_replayed, 2, "{report:?}");

    // The healed log continues the sequence past the failed commit.
    let reopened = Wal::open(&dir).unwrap();
    assert_eq!(reopened.last_seq(), seq);
}

#[test]
fn epoch_bit_rot_is_caught_by_scrub_and_recovery_falls_back() {
    let (fs, _guard) = mount_sim("/sim/flt_epochrot");
    let dir = PathBuf::from("/sim/flt_epochrot/db");
    save_catalog(&catalog(&[1, 2]), &dir).unwrap();

    // Find the committed epoch's data file and rot one byte.
    let epoch = vfs::read_to_string(&dir.join("CURRENT")).unwrap();
    let data = dir.join(epoch.trim()).join("t.csv");
    fs.flip_byte(&data, 3);

    let report = scrub(&dir).unwrap();
    assert!(report.corrupt >= 1, "{report:?}");
    assert_eq!(
        report.wal_corrupt_frames, 0,
        "rot is in the epoch, not the log"
    );
    assert!(
        report.issues.iter().any(|i| i.contains("t.csv")),
        "{report:?}"
    );

    // Strict load refuses; with no older epoch the lenient loader fails
    // too — silently inventing data would be worse.
    assert!(conquer_storage::load_catalog(&dir).is_err());
    assert!(load_catalog_recover(&dir).is_err());

    // With a newer clean epoch committed on top, recovery works again
    // and the scrub quarantines nothing it cannot attribute.
    save_catalog(&catalog(&[9]), &dir).unwrap();
    let (cat, _) = load_catalog_recover(&dir).unwrap();
    assert_eq!(rows_of(&cat), vec![9]);
    assert!(scrub(&dir).unwrap().is_clean());
}
