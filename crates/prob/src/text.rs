//! Small text utilities: Levenshtein distance for the edit-distance
//! measure (and for the data generator's perturbation checks).

/// Classic Levenshtein edit distance (insert/delete/substitute, unit cost),
/// O(|a|·|b|) time, O(min) memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance normalized to `[0, 1]` by the longer string's
/// length (0 = identical, 1 = nothing in common).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("Mary", "Marion"), 3);
    }

    #[test]
    fn normalization() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("a", "b"), 1.0);
        assert!((normalized_levenshtein("abcd", "abce") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unicode_counted_by_chars() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let (a, b, c) = ("banking", "building", "bank");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
