//! Distributional Cluster Features (Section 4.1.2).
//!
//! `DCF(c) = (|c|, p(V|c))`: a cluster's cardinality together with the
//! conditional distribution of attribute values given the cluster. Merging
//! two DCFs weights their distributions by cardinality:
//!
//! ```text
//! |c*| = |c1| + |c2|
//! p(v|c*) = |c1|/|c*| · p(v|c1) + |c2|/|c*| · p(v|c2)
//! ```

use std::collections::BTreeMap;

/// A cluster summary: cardinality (weight) plus a sparse value
/// distribution. Deterministically ordered (`BTreeMap`) for reproducible
/// iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcf {
    weight: f64,
    dist: BTreeMap<u32, f64>,
}

impl Dcf {
    /// The empty summary (weight 0, empty distribution).
    pub fn empty() -> Self {
        Dcf {
            weight: 0.0,
            dist: BTreeMap::new(),
        }
    }

    /// Build from a weight and `(value id, probability)` pairs
    /// (probabilities for repeated ids accumulate).
    pub fn from_parts<I: IntoIterator<Item = (u32, f64)>>(weight: f64, parts: I) -> Self {
        let mut dist = BTreeMap::new();
        for (v, p) in parts {
            *dist.entry(v).or_insert(0.0) += p;
        }
        Dcf { weight, dist }
    }

    /// Cluster cardinality `|c|`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// `p(v | c)` (0 outside the support).
    pub fn probability(&self, value: u32) -> f64 {
        self.dist.get(&value).copied().unwrap_or(0.0)
    }

    /// Iterate over the support as `(value id, probability)`.
    pub fn support(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.dist.iter().map(|(&v, &p)| (v, p))
    }

    /// Number of values with non-zero probability.
    pub fn support_size(&self) -> usize {
        self.dist.len()
    }

    /// Merge two summaries per the paper's recursive DCF formula.
    pub fn merge(&self, other: &Dcf) -> Dcf {
        let weight = self.weight + other.weight;
        if weight == 0.0 {
            return Dcf::empty();
        }
        let (wa, wb) = (self.weight / weight, other.weight / weight);
        let mut dist = BTreeMap::new();
        for (&v, &p) in &self.dist {
            *dist.entry(v).or_insert(0.0) += wa * p;
        }
        for (&v, &p) in &other.dist {
            *dist.entry(v).or_insert(0.0) += wb * p;
        }
        Dcf { weight, dist }
    }

    /// The most probable value of each attribute, given a classifier from
    /// value id to attribute index. Used for modal ("most frequent values")
    /// summaries like the paper's Table 4 header row.
    pub fn modal_values<F: Fn(u32) -> usize>(&self, attr_of: F, m: usize) -> Vec<Option<u32>> {
        let mut best: Vec<Option<(u32, f64)>> = vec![None; m];
        for (v, p) in self.support() {
            let a = attr_of(v);
            if best[a].is_none_or(|(_, bp)| p > bp) {
                best[a] = Some((v, p));
            }
        }
        best.into_iter().map(|b| b.map(|(v, _)| v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcf(w: f64, parts: &[(u32, f64)]) -> Dcf {
        Dcf::from_parts(w, parts.iter().copied())
    }

    #[test]
    fn merge_weights_distributions() {
        let a = dcf(1.0, &[(0, 0.5), (1, 0.5)]);
        let b = dcf(1.0, &[(1, 0.5), (2, 0.5)]);
        let m = a.merge(&b);
        assert_eq!(m.weight(), 2.0);
        assert!((m.probability(0) - 0.25).abs() < 1e-12);
        assert!((m.probability(1) - 0.5).abs() < 1e-12);
        assert!((m.probability(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_respects_cardinality_weighting() {
        let big = dcf(3.0, &[(0, 1.0)]);
        let small = dcf(1.0, &[(1, 1.0)]);
        let m = big.merge(&small);
        assert!((m.probability(0) - 0.75).abs() < 1e-12);
        assert!((m.probability(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_and_preserves_mass() {
        let a = dcf(2.0, &[(0, 0.25), (1, 0.75)]);
        let b = dcf(5.0, &[(1, 0.1), (2, 0.9)]);
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        for v in 0..3 {
            assert!((ab.probability(v) - ba.probability(v)).abs() < 1e-12);
        }
        let mass: f64 = ab.support().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_associative_up_to_float() {
        let a = dcf(1.0, &[(0, 1.0)]);
        let b = dcf(2.0, &[(1, 1.0)]);
        let c = dcf(3.0, &[(2, 1.0)]);
        let l = a.merge(&b).merge(&c);
        let r = a.merge(&b.merge(&c));
        for v in 0..3 {
            assert!((l.probability(v) - r.probability(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_merges_are_identity() {
        let a = dcf(2.0, &[(0, 1.0)]);
        let m = a.merge(&Dcf::empty());
        assert_eq!(m, a);
        assert_eq!(Dcf::empty().merge(&Dcf::empty()), Dcf::empty());
    }

    #[test]
    fn modal_values_pick_argmax_per_attribute() {
        // values 0,1 belong to attribute 0; values 2,3 to attribute 1.
        let d = dcf(2.0, &[(0, 0.4), (1, 0.1), (2, 0.2), (3, 0.3)]);
        let modal = d.modal_values(|v| if v < 2 { 0 } else { 1 }, 2);
        assert_eq!(modal, vec![Some(0), Some(3)]);
    }
}
