//! # conquer-prob
//!
//! Tuple-probability assignment from a duplicate clustering — Section 4 of
//! the paper, in full.
//!
//! Given a relation, a clustering of its tuples (the output of any tuple-
//! matching tool), and a distance measure, the Figure-5 algorithm assigns
//! each tuple a probability of being in the clean database:
//!
//! 1. compute each cluster's *representative* by merging its tuples'
//!    Distributional Cluster Features ([`Dcf`], Section 4.1.2);
//! 2. compute every tuple's distance to its representative and the
//!    per-cluster distance sum `S(cᵢ)`;
//! 3. turn distances into similarities `sₜ = 1 − dₜ/S(cᵢ)` and normalize to
//!    probabilities `prob(t) = sₜ/(|cᵢ|−1)` (singleton clusters get 1).
//!
//! The distance is pluggable. [`InfoLossDistance`] implements the paper's
//! information-loss measure `d(s₁,s₂) = I(C;V) − I(C′;V)` (LIMBO-style,
//! Section 4.1.3), computed via the weighted Jensen–Shannon shortcut which
//! is algebraically identical (property-tested against the direct mutual-
//! information difference). [`EditDistance`] demonstrates the modularity the
//! paper claims: any tuple-level distance slots into the same algorithm.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod assign;
pub mod cluster;
pub mod dcf;
pub mod distance;
pub mod matrix;
pub mod text;

pub use assign::{
    assign_probabilities, assign_probabilities_into, assign_probabilities_parallel,
    uniform_probabilities, Clustering,
};
pub use cluster::{
    limbo_sequential, multi_pass_sorted_neighborhood, pairwise_quality, sorted_neighborhood,
    LimboConfig, SortedNeighborhoodConfig, UnionFind,
};
pub use dcf::Dcf;
pub use distance::{DistanceMeasure, EditDistance, InfoLossDistance};
pub use matrix::CategoricalMatrix;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, conquer_storage::StorageError>;
