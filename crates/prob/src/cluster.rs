//! Duplicate detection: producing the clustering the rest of the system
//! consumes.
//!
//! The paper treats tuple matching as an exchangeable black box ("one of
//! the benefits of our approach is that it is modular and can work with
//! different techniques that find matching tuples") and cites two families
//! it interoperates with; this module implements one representative of
//! each, so the repository runs end-to-end from raw duplicated data:
//!
//! * [`sorted_neighborhood`] — the merge/purge method of Hernández &
//!   Stolfo (the paper's \[17\], whose UIS generator drives the
//!   experiments): sort by a discriminating key, slide a fixed window,
//!   union records whose similarity clears a threshold.
//! * [`limbo_sequential`] — a LIMBO-flavoured clusterer (the paper's \[4\],
//!   by the same authors): scan tuples, assigning each to the existing
//!   cluster summary whose merge loses the least information, or opening a
//!   new cluster when every merge would lose more than `max_loss`.
//!
//! Both return a [`Clustering`] ready for
//! [`crate::assign::assign_probabilities`].

use conquer_storage::Table;

use crate::assign::Clustering;
use crate::dcf::Dcf;
use crate::distance::information_loss;
use crate::matrix::CategoricalMatrix;
use crate::text::normalized_levenshtein;
use crate::Result;

/// Disjoint-set union (union-find) with path compression and union by
/// size — the merge structure both matchers share.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Extract the partition as a clustering (groups ordered by smallest
    /// member).
    pub fn into_clustering(mut self) -> Clustering {
        let n = self.parent.len();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = self.find(i);
            groups.entry(r).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        clusters.sort_by_key(|c| c[0]);
        // A DSU partition assigns every element to exactly one group, so
        // this cannot fail; degrade to singletons rather than panic.
        Clustering::new(clusters, n).unwrap_or_else(|_| Clustering::singletons(n))
    }
}

/// Options for the sorted-neighborhood (merge/purge) matcher.
#[derive(Debug, Clone)]
pub struct SortedNeighborhoodConfig {
    /// Attributes compared (and, concatenated, used as the sort key).
    pub attributes: Vec<String>,
    /// Window size `w`: each record is compared with the `w−1` records
    /// before it in key order.
    pub window: usize,
    /// Similarity threshold in `[0, 1]` above which two records match
    /// (similarity = 1 − mean normalized edit distance per attribute).
    pub threshold: f64,
}

impl Default for SortedNeighborhoodConfig {
    fn default() -> Self {
        SortedNeighborhoodConfig {
            attributes: Vec::new(),
            window: 8,
            threshold: 0.75,
        }
    }
}

/// Pairwise record similarity: 1 − mean normalized Levenshtein over the
/// compared attributes.
pub fn record_similarity(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let d: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| normalized_levenshtein(x, y))
        .sum::<f64>()
        / a.len() as f64;
    1.0 - d
}

/// The merge/purge sorted-neighborhood matcher. `O(n log n + n·w)`
/// comparisons; transitive matches are closed through the union-find (the
/// method's standard "transitive closure" phase).
pub fn sorted_neighborhood(table: &Table, config: &SortedNeighborhoodConfig) -> Result<Clustering> {
    let cols: Vec<usize> = config
        .attributes
        .iter()
        .map(|a| table.column_index(a))
        .collect::<std::result::Result<_, _>>()?;
    let n = table.len();
    // Render the compared fields once.
    let rendered: Vec<Vec<String>> = table
        .rows()
        .iter()
        .map(|row| {
            cols.iter()
                .map(|&c| row[c].to_string().to_ascii_lowercase())
                .collect()
        })
        .collect();
    // Sort key: the concatenated fields.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rendered[a].join("\u{1}").cmp(&rendered[b].join("\u{1}")));

    let mut dsu = UnionFind::new(n);
    let w = config.window.max(2);
    for i in 0..n {
        for j in i.saturating_sub(w - 1)..i {
            let (a, b) = (order[i], order[j]);
            if record_similarity(&rendered[a], &rendered[b]) >= config.threshold {
                dsu.union(a, b);
            }
        }
    }
    Ok(dsu.into_clustering())
}

/// Multi-pass sorted neighborhood, the full merge/purge design: each pass
/// sorts by a different key (attribute order), and matches found in any
/// pass are unioned — records that sort far apart under one key (a typo in
/// its first character, say) are caught by a pass keyed on another
/// attribute. `passes` gives the attribute orderings; window/threshold are
/// shared.
pub fn multi_pass_sorted_neighborhood(
    table: &Table,
    passes: &[Vec<String>],
    window: usize,
    threshold: f64,
) -> Result<Clustering> {
    let n = table.len();
    let mut dsu = UnionFind::new(n);
    for attributes in passes {
        let config = SortedNeighborhoodConfig {
            attributes: attributes.clone(),
            window,
            threshold,
        };
        let pass = sorted_neighborhood(table, &config)?;
        for cluster in pass.clusters() {
            for w in cluster.windows(2) {
                dsu.union(w[0], w[1]);
            }
        }
    }
    Ok(dsu.into_clustering())
}

/// Options for the LIMBO-style sequential clusterer.
#[derive(Debug, Clone, Copy)]
pub struct LimboConfig {
    /// Maximum information loss (bits, normalized by relation size) a merge
    /// may incur; larger values produce coarser clusterings.
    pub max_loss: f64,
}

impl Default for LimboConfig {
    fn default() -> Self {
        LimboConfig { max_loss: 0.05 }
    }
}

/// Sequential LIMBO-flavoured clustering: one pass over the tuples; each
/// tuple joins the existing summary whose merge loses the least mutual
/// information, or starts a new cluster if every merge would lose more
/// than `max_loss`. `O(n·k)` with `k` final clusters.
pub fn limbo_sequential(matrix: &CategoricalMatrix, config: &LimboConfig) -> Clustering {
    let n = matrix.n();
    let mut summaries: Vec<Dcf> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for t in 0..n {
        let dcf = matrix.tuple_dcf(t);
        let mut best: Option<(usize, f64)> = None;
        for (ci, s) in summaries.iter().enumerate() {
            let loss = information_loss(&dcf, s, n as f64);
            if best.is_none_or(|(_, b)| loss < b) {
                best = Some((ci, loss));
            }
        }
        match best {
            Some((ci, loss)) if loss <= config.max_loss => {
                summaries[ci] = summaries[ci].merge(&dcf);
                members[ci].push(t);
            }
            _ => {
                summaries.push(dcf);
                members.push(vec![t]);
            }
        }
    }
    // The loop above assigns each tuple to exactly one cluster, so this
    // cannot fail; degrade to singletons rather than panic.
    Clustering::new(members, n).unwrap_or_else(|_| Clustering::singletons(n))
}

/// Pairwise quality of a clustering against a ground truth: precision,
/// recall and F1 over "same-cluster" pairs. Used to validate the matchers
/// on generated data (and handy for downstream users tuning thresholds).
pub fn pairwise_quality(predicted: &Clustering, truth: &Clustering) -> (f64, f64, f64) {
    let n = truth.total_rows();
    let label = |c: &Clustering| {
        let mut l = vec![0usize; n];
        for (ci, cluster) in c.clusters().iter().enumerate() {
            for &i in cluster {
                l[i] = ci;
            }
        }
        l
    };
    let (pl, tl) = (label(predicted), label(truth));
    let (mut tp, mut fp, mut fnn) = (0u64, 0u64, 0u64);
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = pl[i] == pl[j];
            let same_true = tl[i] == tl[j];
            match (same_pred, same_true) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fnn += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fnn == 0 {
        1.0
    } else {
        tp as f64 / (tp + fnn) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_storage::{DataType, Schema};

    fn people() -> Table {
        let schema =
            Schema::from_pairs([("name", DataType::Text), ("city", DataType::Text)]).unwrap();
        let mut t = Table::new("people", schema);
        for (n, c) in [
            ("john smith", "toronto"),
            ("jhon smith", "toronto"), // typo duplicate of 0
            ("john smyth", "torotno"), // typo duplicate of 0
            ("mary jones", "ottawa"),
            ("mary jones", "otawa"),  // typo duplicate of 3
            ("ada king", "montreal"), // singleton
        ] {
            t.insert(vec![n.into(), c.into()]).unwrap();
        }
        t
    }

    fn truth() -> Clustering {
        Clustering::new(vec![vec![0, 1, 2], vec![3, 4], vec![5]], 6).unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut dsu = UnionFind::new(4);
        assert!(dsu.union(0, 1));
        assert!(!dsu.union(1, 0));
        assert!(dsu.union(2, 3));
        assert_eq!(dsu.find(1), dsu.find(0));
        assert_ne!(dsu.find(0), dsu.find(2));
        let c = dsu.into_clustering();
        assert_eq!(c.clusters(), &[vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn sorted_neighborhood_recovers_typo_clusters() {
        let t = people();
        let config = SortedNeighborhoodConfig {
            attributes: vec!["name".into(), "city".into()],
            window: 6,
            threshold: 0.7,
        };
        let predicted = sorted_neighborhood(&t, &config).unwrap();
        let (p, r, f1) = pairwise_quality(&predicted, &truth());
        assert!(p >= 0.99, "precision {p}");
        assert!(r >= 0.99, "recall {r}");
        assert!(f1 >= 0.99, "f1 {f1}");
    }

    #[test]
    fn threshold_one_yields_exact_duplicate_clusters_only() {
        let t = people();
        let config = SortedNeighborhoodConfig {
            attributes: vec!["name".into(), "city".into()],
            window: 6,
            threshold: 1.0,
        };
        let predicted = sorted_neighborhood(&t, &config).unwrap();
        // No two records are textually identical, so all singletons.
        assert_eq!(predicted.len(), 6);
    }

    #[test]
    fn multi_pass_catches_first_character_typos() {
        // A typo in the *first* character of the name pushes the record far
        // away in name-sorted order; a city-keyed second pass still finds it.
        let schema =
            Schema::from_pairs([("name", DataType::Text), ("city", DataType::Text)]).unwrap();
        let mut t = Table::new("people", schema);
        for (n, c) in [
            ("aaron judge", "brookline"),
            ("zaron judge", "brookline"), // first-char typo of 0
            ("aaron judge", "cambridge"), // different entity, same name
            ("mia wong", "somerville"),
            ("mia wong", "somerville"), // exact duplicate of 3
        ] {
            t.insert(vec![n.into(), c.into()]).unwrap();
        }
        // Single name-first pass with a tiny window misses (0, 1)…
        let single = sorted_neighborhood(
            &t,
            &SortedNeighborhoodConfig {
                attributes: vec!["name".into(), "city".into()],
                window: 2,
                threshold: 0.85,
            },
        )
        .unwrap();
        let find =
            |c: &Clustering, i: usize| c.clusters().iter().position(|cl| cl.contains(&i)).unwrap();
        assert_ne!(
            find(&single, 0),
            find(&single, 1),
            "window too small in name order"
        );

        // …but the city-keyed second pass catches it.
        let multi = multi_pass_sorted_neighborhood(
            &t,
            &[
                vec!["name".into(), "city".into()],
                vec!["city".into(), "name".into()],
            ],
            2,
            0.85,
        )
        .unwrap();
        assert_eq!(find(&multi, 0), find(&multi, 1));
        assert_eq!(find(&multi, 3), find(&multi, 4));
        assert_ne!(
            find(&multi, 0),
            find(&multi, 2),
            "different city stays separate"
        );
    }

    #[test]
    fn limbo_sequential_groups_similar_tuples() {
        let t = people();
        let matrix = CategoricalMatrix::from_table(&t, &["name", "city"]).unwrap();
        // On *categorical* equality alone, typo variants share no values, so
        // the information-loss clusterer needs shared values to group; give
        // it exact duplicates instead.
        let schema = Schema::from_pairs([("a", DataType::Text), ("b", DataType::Text)]).unwrap();
        let mut exact = Table::new("t", schema);
        for (a, b) in [("x", "p"), ("x", "p"), ("x", "q"), ("y", "r"), ("y", "r")] {
            exact.insert(vec![a.into(), b.into()]).unwrap();
        }
        let m2 = CategoricalMatrix::from_table(&exact, &["a", "b"]).unwrap();
        let c = limbo_sequential(&m2, &LimboConfig { max_loss: 0.2 });
        // x-records group together, y-records group together.
        assert!(c.len() <= 3, "{:?}", c.clusters());
        let find = |i: usize| c.clusters().iter().position(|cl| cl.contains(&i)).unwrap();
        assert_eq!(find(0), find(1));
        assert_eq!(find(3), find(4));
        assert_ne!(find(0), find(3));

        // Strict threshold: everything is a singleton.
        let strict = limbo_sequential(&matrix, &LimboConfig { max_loss: 0.0 });
        assert_eq!(strict.len(), 6);
    }

    #[test]
    fn pairwise_quality_bounds() {
        let t = truth();
        let (p, r, f1) = pairwise_quality(&t, &t);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
        let singletons = Clustering::singletons(6);
        let (p, r, _) = pairwise_quality(&singletons, &t);
        assert_eq!(p, 1.0, "no predicted pairs ⇒ vacuous precision");
        assert_eq!(r, 0.0);
        let one = Clustering::new(vec![(0..6).collect()], 6).unwrap();
        let (p, r, _) = pairwise_quality(&one, &t);
        assert!(p < 1.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn record_similarity_range() {
        assert_eq!(record_similarity(&[], &[]), 1.0);
        let a = vec!["abc".to_string()];
        let b = vec!["abc".to_string()];
        assert_eq!(record_similarity(&a, &b), 1.0);
        let c = vec!["xyz".to_string()];
        assert_eq!(record_similarity(&a, &c), 0.0);
    }
}
