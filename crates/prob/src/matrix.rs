//! Categorical data representation (Section 4.1.1).
//!
//! A relation over attributes `A₁…Aₘ` is viewed as an `n × |V|` matrix,
//! where `V` is the disjoint union of the attribute domains ("identical
//! values from different attributes are treated as distinct values"). Each
//! tuple's row, normalized, is the conditional distribution `p(v|t)`: `1/m`
//! for each of the tuple's `m` values (the paper's Table 1).
//!
//! Values are interned to dense ids so distributions can be sparse maps.

use std::collections::HashMap;

use conquer_storage::{StorageError, Table};

use crate::dcf::Dcf;
use crate::Result;

/// Interned categorical view of (selected attributes of) a relation.
#[derive(Debug, Clone)]
pub struct CategoricalMatrix {
    /// Number of tuples `n`.
    n: usize,
    /// Number of attributes `m`.
    m: usize,
    /// Per tuple: its `m` interned value ids.
    tuple_values: Vec<Vec<u32>>,
    /// Id → (attribute index, rendered value).
    value_names: Vec<(usize, String)>,
    /// Names of the attributes used.
    attributes: Vec<String>,
}

impl CategoricalMatrix {
    /// Build from the given attributes of a table. Every value is rendered
    /// to text (categorical treatment — the paper's measure targets
    /// categorical data; numeric values participate by their spelling).
    /// NULLs intern as a distinct per-attribute value.
    pub fn from_table(table: &Table, attributes: &[&str]) -> Result<Self> {
        if attributes.is_empty() {
            return Err(StorageError::Csv(
                "categorical matrix needs at least one attribute".into(),
            ));
        }
        let cols: Vec<usize> = attributes
            .iter()
            .map(|a| table.column_index(a))
            .collect::<std::result::Result<_, _>>()?;
        let mut interner: HashMap<(usize, String), u32> = HashMap::new();
        let mut value_names: Vec<(usize, String)> = Vec::new();
        let mut tuple_values = Vec::with_capacity(table.len());
        for row in table.rows() {
            let mut vals = Vec::with_capacity(cols.len());
            for (ai, &c) in cols.iter().enumerate() {
                let text = row[c].to_string();
                let next = value_names.len() as u32;
                let id = *interner.entry((ai, text.clone())).or_insert_with(|| {
                    value_names.push((ai, text));
                    next
                });
                vals.push(id);
            }
            tuple_values.push(vals);
        }
        Ok(CategoricalMatrix {
            n: table.len(),
            m: cols.len(),
            tuple_values,
            value_names,
            attributes: attributes.iter().map(|s| s.to_ascii_lowercase()).collect(),
        })
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Size of the joint value domain `|V|`.
    pub fn domain_size(&self) -> usize {
        self.value_names.len()
    }

    /// Attribute names used to build the matrix.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The interned value ids of tuple `t`.
    pub fn values_of(&self, t: usize) -> &[u32] {
        &self.tuple_values[t]
    }

    /// `(attribute index, rendered value)` for a value id.
    pub fn value_name(&self, id: u32) -> (usize, &str) {
        let (a, s) = &self.value_names[id as usize];
        (*a, s.as_str())
    }

    /// The singleton DCF of tuple `t`: weight 1, probability `1/m` per
    /// value (the normalized matrix row of Example 8).
    pub fn tuple_dcf(&self, t: usize) -> Dcf {
        let p = 1.0 / self.m as f64;
        Dcf::from_parts(1.0, self.tuple_values[t].iter().map(|&v| (v, p)))
    }

    /// The representative of a set of tuples: the merge of their DCFs
    /// (Section 4.1.2).
    pub fn cluster_dcf(&self, rows: &[usize]) -> Dcf {
        let mut it = rows.iter();
        let Some(&first) = it.next() else {
            return Dcf::empty();
        };
        let mut acc = self.tuple_dcf(first);
        for &r in it {
            acc = acc.merge(&self.tuple_dcf(r));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_storage::{DataType, Schema, Value};

    /// The paper's Figure 6 customer relation.
    pub(crate) fn figure6() -> Table {
        let schema = Schema::from_pairs([
            ("name", DataType::Text),
            ("mktsegmt", DataType::Text),
            ("nation", DataType::Text),
            ("address", DataType::Text),
        ])
        .unwrap();
        let mut t = Table::new("customer", schema);
        let rows = [
            ("Mary", "building", "USA", "Jones Ave"),
            ("Mary", "banking", "USA", "Jones Ave"),
            ("Marion", "banking", "USA", "Jones ave"),
            ("John", "building", "America", "Arrow"),
            ("John S.", "building", "USA", "Arrow"),
            ("John", "banking", "Canada", "Baldwin"),
        ];
        for (a, b, c, d) in rows {
            t.insert(vec![a.into(), b.into(), c.into(), d.into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn example8_normalized_rows() {
        let m =
            CategoricalMatrix::from_table(&figure6(), &["name", "mktsegmt", "nation", "address"])
                .unwrap();
        assert_eq!(m.n(), 6);
        assert_eq!(m.m(), 4);
        let dcf = m.tuple_dcf(0);
        // Probability 0.25 of choosing each of t1's four values.
        assert_eq!(dcf.support().count(), 4);
        for (_, p) in dcf.support() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn same_text_in_different_attributes_is_distinct() {
        let schema = Schema::from_pairs([("a", DataType::Text), ("b", DataType::Text)]).unwrap();
        let mut t = Table::new("t", schema);
        t.insert(vec!["x".into(), "x".into()]).unwrap();
        let m = CategoricalMatrix::from_table(&t, &["a", "b"]).unwrap();
        assert_eq!(m.domain_size(), 2, "column-qualified domains");
        assert_ne!(m.values_of(0)[0], m.values_of(0)[1]);
    }

    #[test]
    fn shared_values_share_ids() {
        let m = CategoricalMatrix::from_table(&figure6(), &["nation"]).unwrap();
        // USA appears in t1,t2,t3,t5 — all the same id.
        let usa = m.values_of(0)[0];
        assert_eq!(m.values_of(1)[0], usa);
        assert_eq!(m.values_of(2)[0], usa);
        assert_eq!(m.values_of(4)[0], usa);
        assert_ne!(m.values_of(3)[0], usa); // America
        assert_eq!(m.domain_size(), 3); // USA, America, Canada
        assert_eq!(m.value_name(usa), (0, "USA"));
    }

    #[test]
    fn table2_representatives() {
        let m =
            CategoricalMatrix::from_table(&figure6(), &["name", "mktsegmt", "nation", "address"])
                .unwrap();
        // rep1 = merge of t1,t2,t3 (cluster c1 of Figure 6).
        let rep1 = m.cluster_dcf(&[0, 1, 2]);
        assert!((rep1.weight() - 3.0).abs() < 1e-12);
        // p(USA | c1) stays 0.25 ("remains the same as in the initial
        // tuples" — Table 2); p(Mary | c1) = 2/3 · 1/4 = 1/6.
        let usa = m.values_of(0)[2];
        let mary = m.values_of(0)[0];
        assert!((rep1.probability(usa) - 0.25).abs() < 1e-12);
        assert!((rep1.probability(mary) - 1.0 / 6.0).abs() < 1e-12);
        // Distribution still sums to 1.
        let total: f64 = rep1.support().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nulls_are_a_value() {
        let schema = Schema::from_pairs([("a", DataType::Text)]).unwrap();
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        let m = CategoricalMatrix::from_table(&t, &["a"]).unwrap();
        assert_eq!(m.domain_size(), 1);
        assert_eq!(m.values_of(0), m.values_of(1));
    }

    #[test]
    fn missing_attribute_rejected() {
        assert!(CategoricalMatrix::from_table(&figure6(), &["nope"]).is_err());
        assert!(CategoricalMatrix::from_table(&figure6(), &[]).is_err());
    }
}
