//! Distance measures between tuples and cluster representatives
//! (Section 4.1.3).
//!
//! The paper's measure is **information loss**: merging summaries `s₁, s₂`
//! into a clustering `C′` loses `d(s₁,s₂) = I(C;V) − I(C′;V)` bits of
//! mutual information between the cluster variable and the value variable.
//! For a merge of two clusters this difference reduces to a weighted
//! Jensen–Shannon divergence,
//!
//! ```text
//! ΔI = (n₁+n₂)/N · JS_{π₁,π₂}(p(V|c₁), p(V|c₂)),   πᵢ = nᵢ/(n₁+n₂)
//! ```
//!
//! which needs only the two summaries' supports. Both forms are implemented
//! and tested equal; the shortcut is what the assignment algorithm uses.

use crate::dcf::Dcf;
use crate::matrix::CategoricalMatrix;
use crate::text::normalized_levenshtein;

/// A distance between a tuple and its cluster's representative, pluggable
/// into the Figure-5 probability assignment.
pub trait DistanceMeasure {
    /// The representative form this measure compares against.
    type Rep;

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Build the representative of a cluster given its member rows.
    fn representative(&self, matrix: &CategoricalMatrix, rows: &[usize]) -> Self::Rep;

    /// Distance of tuple `t` to the representative; `n_total` is the number
    /// of tuples in the relation (the normalization constant `N` in the
    /// information-loss formula).
    fn distance(
        &self,
        matrix: &CategoricalMatrix,
        t: usize,
        rep: &Self::Rep,
        n_total: usize,
    ) -> f64;
}

/// The paper's information-loss distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct InfoLossDistance;

impl DistanceMeasure for InfoLossDistance {
    type Rep = Dcf;

    fn name(&self) -> &'static str {
        "information-loss"
    }

    fn representative(&self, matrix: &CategoricalMatrix, rows: &[usize]) -> Dcf {
        matrix.cluster_dcf(rows)
    }

    fn distance(&self, matrix: &CategoricalMatrix, t: usize, rep: &Dcf, n_total: usize) -> f64 {
        information_loss(&matrix.tuple_dcf(t), rep, n_total as f64)
    }
}

/// `ΔI` of merging two summaries within a relation of `n_total` tuples —
/// the weighted-JS shortcut.
pub fn information_loss(a: &Dcf, b: &Dcf, n_total: f64) -> f64 {
    let w = a.weight() + b.weight();
    if w == 0.0 || n_total == 0.0 {
        return 0.0;
    }
    let (pa, pb) = (a.weight() / w, b.weight() / w);
    // Merged distribution M = πa·pA + πb·pB; JS = πa·KL(pA‖M) + πb·KL(pB‖M).
    let merged = a.merge(b);
    let mut js = 0.0;
    for (v, p) in a.support() {
        if p > 0.0 {
            js += pa * p * (p / merged.probability(v)).log2();
        }
    }
    for (v, p) in b.support() {
        if p > 0.0 {
            js += pb * p * (p / merged.probability(v)).log2();
        }
    }
    (w / n_total) * js.max(0.0)
}

/// Mutual information `I(C;V)` of a full clustering, computed directly from
/// the definition. Quadratic in the domain; used to cross-check
/// [`information_loss`] and in tests.
pub fn mutual_information(clusters: &[Dcf], n_total: f64) -> f64 {
    use std::collections::BTreeMap;
    // p(v) = Σ_c p(c) p(v|c)
    let mut pv: BTreeMap<u32, f64> = BTreeMap::new();
    for c in clusters {
        let pc = c.weight() / n_total;
        for (v, p) in c.support() {
            *pv.entry(v).or_insert(0.0) += pc * p;
        }
    }
    let mut i = 0.0;
    for c in clusters {
        let pc = c.weight() / n_total;
        for (v, p) in c.support() {
            if p > 0.0 {
                i += pc * p * (p / pv[&v]).log2();
            }
        }
    }
    i
}

/// A string-edit-distance measure, demonstrating the pluggability the paper
/// claims ("when a distance measure between tuples (e.g., string edit
/// distance) is available, our method can incorporate it").
///
/// The representative is the cluster's *modal tuple* — the most frequent
/// value of each attribute — and the distance is the mean normalized
/// Levenshtein distance between the tuple's values and the modal values.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

impl DistanceMeasure for EditDistance {
    /// Rendered modal value per attribute.
    type Rep = Vec<String>;

    fn name(&self) -> &'static str {
        "edit-distance"
    }

    fn representative(&self, matrix: &CategoricalMatrix, rows: &[usize]) -> Vec<String> {
        let dcf = matrix.cluster_dcf(rows);
        dcf.modal_values(|v| matrix.value_name(v).0, matrix.m())
            .into_iter()
            .map(|v| {
                v.map(|v| matrix.value_name(v).1.to_string())
                    .unwrap_or_default()
            })
            .collect()
    }

    fn distance(
        &self,
        matrix: &CategoricalMatrix,
        t: usize,
        rep: &Vec<String>,
        _n_total: usize,
    ) -> f64 {
        let vals = matrix.values_of(t);
        let mut total = 0.0;
        for (a, &v) in vals.iter().enumerate() {
            let s = matrix.value_name(v).1;
            total += normalized_levenshtein(s, &rep[a]);
        }
        total / matrix.m() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcf(w: f64, parts: &[(u32, f64)]) -> Dcf {
        Dcf::from_parts(w, parts.iter().copied())
    }

    #[test]
    fn identical_distributions_lose_nothing() {
        let a = dcf(1.0, &[(0, 0.5), (1, 0.5)]);
        let b = dcf(3.0, &[(0, 0.5), (1, 0.5)]);
        assert!(information_loss(&a, &b, 10.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_lose_most() {
        let a = dcf(1.0, &[(0, 1.0)]);
        let b = dcf(1.0, &[(1, 1.0)]);
        // JS of disjoint equal-weight distributions is 1 bit; ΔI = 2/N · 1.
        let loss = information_loss(&a, &b, 2.0);
        assert!((loss - 1.0).abs() < 1e-12, "{loss}");
        // Overlap reduces the loss.
        let c = dcf(1.0, &[(0, 0.5), (1, 0.5)]);
        assert!(information_loss(&a, &c, 2.0) < loss);
    }

    #[test]
    fn shortcut_equals_direct_mutual_information_difference() {
        // Three clusters over a small domain; merge the first two.
        let c1 = dcf(2.0, &[(0, 0.5), (1, 0.25), (2, 0.25)]);
        let c2 = dcf(1.0, &[(1, 0.5), (3, 0.5)]);
        let c3 = dcf(3.0, &[(2, 0.75), (4, 0.25)]);
        let n = 6.0;
        let before = mutual_information(&[c1.clone(), c2.clone(), c3.clone()], n);
        let after = mutual_information(&[c1.merge(&c2), c3.clone()], n);
        let direct = before - after;
        let shortcut = information_loss(&c1, &c2, n);
        assert!(
            (direct - shortcut).abs() < 1e-12,
            "direct {direct} vs shortcut {shortcut}"
        );
    }

    #[test]
    fn loss_is_symmetric_and_nonnegative() {
        let a = dcf(2.0, &[(0, 0.7), (1, 0.3)]);
        let b = dcf(5.0, &[(1, 0.2), (2, 0.8)]);
        let ab = information_loss(&a, &b, 7.0);
        let ba = information_loss(&b, &a, 7.0);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab >= 0.0);
    }

    #[test]
    fn mutual_information_of_single_cluster_is_zero() {
        let c = dcf(4.0, &[(0, 0.5), (1, 0.5)]);
        assert!(mutual_information(&[c], 4.0).abs() < 1e-12);
    }

    #[test]
    fn edit_distance_representative_is_modal_tuple() {
        use crate::matrix::CategoricalMatrix;
        use conquer_storage::{DataType, Schema, Table};
        let schema =
            Schema::from_pairs([("name", DataType::Text), ("city", DataType::Text)]).unwrap();
        let mut t = Table::new("t", schema);
        t.insert(vec!["ann".into(), "york".into()]).unwrap();
        t.insert(vec!["ann".into(), "yorke".into()]).unwrap();
        t.insert(vec!["anne".into(), "york".into()]).unwrap();
        let m = CategoricalMatrix::from_table(&t, &["name", "city"]).unwrap();
        let rep = EditDistance.representative(&m, &[0, 1, 2]);
        assert_eq!(rep, vec!["ann".to_string(), "york".to_string()]);
        // t0 matches the modal tuple exactly → distance 0; others don't.
        assert_eq!(EditDistance.distance(&m, 0, &rep, 3), 0.0);
        assert!(EditDistance.distance(&m, 1, &rep, 3) > 0.0);
        assert!(EditDistance.distance(&m, 2, &rep, 3) > 0.0);
    }
}
