//! The probability-assignment algorithm (Figure 5 of the paper).

use std::collections::HashMap;

use conquer_storage::{StorageError, Table, Value};

use crate::distance::DistanceMeasure;
use crate::matrix::CategoricalMatrix;
use crate::Result;

/// A clustering of a relation's rows: disjoint groups of row positions
/// covering the whole table (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Vec<usize>>,
}

impl Clustering {
    /// Build from explicit clusters, verifying they partition `0..n`.
    pub fn new(clusters: Vec<Vec<usize>>, n: usize) -> Result<Self> {
        let mut seen = vec![false; n];
        for c in &clusters {
            if c.is_empty() {
                return Err(StorageError::Csv("empty cluster in clustering".into()));
            }
            for &r in c {
                if r >= n || seen[r] {
                    return Err(StorageError::Csv(format!(
                        "clustering is not a partition: row {r} out of range or repeated"
                    )));
                }
                seen[r] = true;
            }
        }
        if !seen.iter().all(|s| *s) {
            return Err(StorageError::Csv(
                "clustering does not cover every row".into(),
            ));
        }
        Ok(Clustering { clusters })
    }

    /// One singleton cluster per row (a completely clean relation).
    pub fn singletons(n: usize) -> Self {
        Clustering {
            clusters: (0..n).map(|i| vec![i]).collect(),
        }
    }

    /// Group rows by the values of an identifier column — the form in which
    /// tuple matchers deliver their output (Section 2.1). Clusters are
    /// ordered by identifier for determinism.
    pub fn from_id_column(table: &Table, id_column: &str) -> Result<Self> {
        let col = table.column_index(id_column)?;
        let mut by_id: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows().iter().enumerate() {
            by_id.entry(row[col].clone()).or_default().push(i);
        }
        let mut pairs: Vec<(Value, Vec<usize>)> = by_id.into_iter().collect();
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(Clustering {
            clusters: pairs.into_iter().map(|(_, rows)| rows).collect(),
        })
    }

    /// The clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total number of rows covered.
    pub fn total_rows(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }
}

/// Run the Figure-5 algorithm: per cluster, build the representative,
/// measure every member's distance to it, convert to similarities and
/// normalize to probabilities.
///
/// * singleton clusters get probability 1 ("we are certain about its
///   existence in the clean database");
/// * `sₜ = 1 − dₜ/S(cᵢ)`, `prob(t) = sₜ/(|cᵢ|−1)` — so probabilities within
///   a cluster sum to exactly 1;
/// * a cluster of identical tuples (`S = 0`) degenerates to the uniform
///   distribution.
///
/// Returns one probability per table row.
pub fn assign_probabilities<M: DistanceMeasure>(
    matrix: &CategoricalMatrix,
    clustering: &Clustering,
    measure: &M,
) -> Vec<f64> {
    let n_total = matrix.n();
    let mut probs = vec![0.0; n_total];
    for cluster in clustering.clusters() {
        if cluster.len() == 1 {
            probs[cluster[0]] = 1.0;
            continue;
        }
        // Steps 1–2: representative and distance sum.
        let rep = measure.representative(matrix, cluster);
        let distances: Vec<f64> = cluster
            .iter()
            .map(|&t| measure.distance(matrix, t, &rep, n_total))
            .collect();
        let s: f64 = distances.iter().sum();
        let k = cluster.len() as f64;
        // Step 3: similarities → probabilities.
        if s <= f64::EPSILON {
            for &t in cluster {
                probs[t] = 1.0 / k;
            }
        } else {
            for (&t, d) in cluster.iter().zip(&distances) {
                let similarity = 1.0 - d / s;
                probs[t] = similarity / (k - 1.0);
            }
        }
    }
    probs
}

/// Assign probabilities and write them into `prob_column` of the table.
/// Returns the probabilities for convenience.
pub fn assign_probabilities_into<M: DistanceMeasure>(
    table: &mut Table,
    attributes: &[&str],
    id_column: &str,
    prob_column: &str,
    measure: &M,
) -> Result<Vec<f64>> {
    let matrix = CategoricalMatrix::from_table(table, attributes)?;
    let clustering = Clustering::from_id_column(table, id_column)?;
    let probs = assign_probabilities(&matrix, &clustering, measure);
    let snapshot = probs.clone();
    table.update_column(prob_column, |i, _| Value::Float(snapshot[i]))?;
    Ok(probs)
}

/// Parallel variant of [`assign_probabilities`]: clusters are independent,
/// so they are distributed over `threads` scoped worker threads. Produces
/// bit-identical results to the sequential version (per-cluster arithmetic
/// is unchanged). Useful for the Figure-7 offline pass on large relations.
pub fn assign_probabilities_parallel<M: DistanceMeasure + Sync>(
    matrix: &CategoricalMatrix,
    clustering: &Clustering,
    measure: &M,
    threads: usize,
) -> Vec<f64> {
    let threads = threads.max(1);
    if threads == 1 || clustering.len() < 2 * threads {
        return assign_probabilities(matrix, clustering, measure);
    }
    let clusters = clustering.clusters();
    let chunk = clusters.len().div_ceil(threads);
    let results: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for part in clusters.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                for cluster in part {
                    if cluster.len() == 1 {
                        local.push((cluster[0], 1.0));
                        continue;
                    }
                    let rep = measure.representative(matrix, cluster);
                    let distances: Vec<f64> = cluster
                        .iter()
                        .map(|&t| measure.distance(matrix, t, &rep, matrix.n()))
                        .collect();
                    let s: f64 = distances.iter().sum();
                    let k = cluster.len() as f64;
                    if s <= f64::EPSILON {
                        for &t in cluster {
                            local.push((t, 1.0 / k));
                        }
                    } else {
                        for (&t, d) in cluster.iter().zip(&distances) {
                            local.push((t, (1.0 - d / s) / (k - 1.0)));
                        }
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut probs = vec![0.0; matrix.n()];
    for part in results {
        for (t, p) in part {
            probs[t] = p;
        }
    }
    probs
}

/// Uniform probabilities (`1/|cᵢ|` per member): the baseline used when no
/// distance information is wanted.
pub fn uniform_probabilities(clustering: &Clustering, n: usize) -> Vec<f64> {
    let mut probs = vec![0.0; n];
    for cluster in clustering.clusters() {
        let p = 1.0 / cluster.len() as f64;
        for &t in cluster {
            probs[t] = p;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{EditDistance, InfoLossDistance};
    use conquer_storage::{DataType, Schema};

    /// The paper's Figure 6 customer relation with its three clusters.
    fn figure6() -> (Table, Clustering) {
        let schema = Schema::from_pairs([
            ("name", DataType::Text),
            ("mktsegmt", DataType::Text),
            ("nation", DataType::Text),
            ("address", DataType::Text),
        ])
        .unwrap();
        let mut t = Table::new("customer", schema);
        for (a, b, c, d) in [
            ("Mary", "building", "USA", "Jones Ave"),
            ("Mary", "banking", "USA", "Jones Ave"),
            ("Marion", "banking", "USA", "Jones ave"),
            ("John", "building", "America", "Arrow"),
            ("John S.", "building", "USA", "Arrow"),
            ("John", "banking", "Canada", "Baldwin"),
        ] {
            t.insert(vec![a.into(), b.into(), c.into(), d.into()])
                .unwrap();
        }
        let clustering = Clustering::new(vec![vec![0, 1, 2], vec![3, 4], vec![5]], 6).unwrap();
        (t, clustering)
    }

    #[test]
    fn table3_invariants() {
        // Section 4.1.3 / Table 3: within c1, t2 is the most probable tuple
        // (it shares all its values with at least one other tuple); the two
        // tuples of c2 are equally likely (0.5 each); the singleton t6 gets
        // probability 1.
        let (t, clustering) = figure6();
        let matrix =
            CategoricalMatrix::from_table(&t, &["name", "mktsegmt", "nation", "address"]).unwrap();
        let probs = assign_probabilities(&matrix, &clustering, &InfoLossDistance);

        // Cluster sums are exactly 1.
        let c1: f64 = probs[0] + probs[1] + probs[2];
        assert!((c1 - 1.0).abs() < 1e-12, "{probs:?}");
        assert!((probs[3] + probs[4] - 1.0).abs() < 1e-12);
        assert!((probs[5] - 1.0).abs() < 1e-12);

        // t2 dominates c1.
        assert!(probs[1] > probs[0], "{probs:?}");
        assert!(probs[1] > probs[2], "{probs:?}");

        // t4 and t5 are symmetric in c2.
        assert!((probs[3] - 0.5).abs() < 1e-9, "{probs:?}");
        assert!((probs[4] - 0.5).abs() < 1e-9, "{probs:?}");
    }

    #[test]
    fn identical_tuples_get_uniform_probabilities() {
        let schema = Schema::from_pairs([("a", DataType::Text)]).unwrap();
        let mut t = Table::new("t", schema);
        for _ in 0..3 {
            t.insert(vec!["same".into()]).unwrap();
        }
        let matrix = CategoricalMatrix::from_table(&t, &["a"]).unwrap();
        let clustering = Clustering::new(vec![vec![0, 1, 2]], 3).unwrap();
        let probs = assign_probabilities(&matrix, &clustering, &InfoLossDistance);
        for p in probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn edit_distance_measure_agrees_on_ranking() {
        // The modular claim: a different measure still ranks t2 on top of
        // c1 for this data.
        let (t, clustering) = figure6();
        let matrix =
            CategoricalMatrix::from_table(&t, &["name", "mktsegmt", "nation", "address"]).unwrap();
        let probs = assign_probabilities(&matrix, &clustering, &EditDistance);
        assert!((probs[0] + probs[1] + probs[2] - 1.0).abs() < 1e-12);
        assert!(probs[1] >= probs[0] && probs[1] >= probs[2], "{probs:?}");
        assert!((probs[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let (t, clustering) = figure6();
        let matrix = CategoricalMatrix::from_table(&t, &["name", "nation"]).unwrap();
        for probs in [
            assign_probabilities(&matrix, &clustering, &InfoLossDistance),
            assign_probabilities(&matrix, &clustering, &EditDistance),
        ] {
            for p in probs {
                assert!((0.0..=1.0 + 1e-12).contains(&p), "{p}");
            }
        }
    }

    #[test]
    fn clustering_validation() {
        assert!(Clustering::new(vec![vec![0], vec![1]], 2).is_ok());
        assert!(
            Clustering::new(vec![vec![0]], 2).is_err(),
            "must cover all rows"
        );
        assert!(
            Clustering::new(vec![vec![0], vec![0, 1]], 2).is_err(),
            "no overlap"
        );
        assert!(Clustering::new(vec![vec![2]], 2).is_err(), "in range");
        assert!(
            Clustering::new(vec![vec![], vec![0, 1]], 2).is_err(),
            "no empty clusters"
        );
        assert_eq!(Clustering::singletons(3).len(), 3);
    }

    #[test]
    fn clustering_from_id_column() {
        let schema = Schema::from_pairs([("id", DataType::Text), ("x", DataType::Int)]).unwrap();
        let mut t = Table::new("t", schema);
        for (id, x) in [("b", 1), ("a", 2), ("b", 3)] {
            t.insert(vec![id.into(), x.into()]).unwrap();
        }
        let c = Clustering::from_id_column(&t, "id").unwrap();
        assert_eq!(c.clusters(), &[vec![1], vec![0, 2]]); // sorted: a, then b
        assert_eq!(c.total_rows(), 3);
    }

    #[test]
    fn assign_into_updates_prob_column() {
        let schema = Schema::from_pairs([
            ("id", DataType::Text),
            ("name", DataType::Text),
            ("prob", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for (id, name) in [("c1", "ann"), ("c1", "anne"), ("c2", "bob")] {
            t.insert(vec![id.into(), name.into(), 0.0.into()]).unwrap();
        }
        let probs =
            assign_probabilities_into(&mut t, &["name"], "id", "prob", &InfoLossDistance).unwrap();
        assert_eq!(probs.len(), 3);
        assert_eq!(t.value(2, 2), &Value::Float(1.0));
        let sum = t.value(0, 2).as_f64().unwrap() + t.value(1, 2).as_f64().unwrap();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (t, clustering) = figure6();
        let matrix =
            CategoricalMatrix::from_table(&t, &["name", "mktsegmt", "nation", "address"]).unwrap();
        let seq = assign_probabilities(&matrix, &clustering, &InfoLossDistance);
        for threads in [1, 2, 4, 16] {
            let par = crate::assign::assign_probabilities_parallel(
                &matrix,
                &clustering,
                &InfoLossDistance,
                threads,
            );
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn uniform_baseline() {
        let c = Clustering::new(vec![vec![0, 1], vec![2]], 3).unwrap();
        assert_eq!(uniform_probabilities(&c, 3), vec![0.5, 0.5, 1.0]);
    }
}
