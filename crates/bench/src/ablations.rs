//! Extension ablations (beyond the paper's figures): naive-vs-rewritten
//! latency by candidate count, probability-assignment mode costs, and hash
//! vs identifier-index joins.

use std::time::Instant;

use conquer_core::{naive::NaiveOptions, DirtyDatabase, DirtySpec, EvalStrategy};
use conquer_datagen::{
    dirty::{
        compute_probabilities, generate_unpropagated, propagate_identifiers, ProbMode, UisConfig,
    },
    perturb::PerturbOptions,
    queries::query_sql,
    tpch::TpchConfig,
};
use conquer_engine::Database;

use crate::harness::{median_time, Report};

/// A two-table dirty database with `clusters` clusters of two tuples each.
fn tiny(clusters: usize) -> DirtyDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE r (id TEXT, a INTEGER, prob DOUBLE);
         CREATE TABLE s (id TEXT, fk TEXT, prob DOUBLE)",
    )
    .unwrap();
    {
        let t = db.catalog_mut().table_mut("r").unwrap();
        for i in 0..clusters as i64 {
            t.insert(vec![format!("r{i}").into(), i.into(), 0.5.into()])
                .unwrap();
            t.insert(vec![format!("r{i}").into(), (i + 1).into(), 0.5.into()])
                .unwrap();
        }
    }
    {
        let t = db.catalog_mut().table_mut("s").unwrap();
        for i in 0..clusters as i64 {
            t.insert(vec![
                format!("s{i}").into(),
                format!("r{i}").into(),
                1.0.into(),
            ])
            .unwrap();
        }
    }
    DirtyDatabase::new(db, DirtySpec::uniform(&["r", "s"])).unwrap()
}

/// Naive candidate enumeration vs `RewriteClean`, by candidate count.
pub fn naive_vs_rewritten(runs: usize) -> Report {
    let mut report = Report::new(
        "Ablation: naive enumeration vs RewriteClean",
        &[
            "clusters",
            "candidates",
            "naive (ms)",
            "rewritten (ms)",
            "speedup",
        ],
    );
    report.note("the motivation for Section 3: enumeration is exponential, the rewriting is not");
    let sql = "select s.id, r.id from s, r where s.fk = r.id and r.a > 0";
    for clusters in [4usize, 8, 12, 16] {
        let db = tiny(clusters);
        let candidates = db.candidate_count(None).unwrap();
        let (t_naive, _) = median_time(runs, || {
            db.clean_answers_with(sql, EvalStrategy::Naive(NaiveOptions::default()))
                .expect("small enough")
                .len()
        });
        let (t_rw, _) = median_time(runs, || db.clean_answers(sql).expect("rewritable").len());
        report.push_row(vec![
            clusters.to_string(),
            candidates.to_string(),
            format!("{:.2}", t_naive.as_secs_f64() * 1e3),
            format!("{:.3}", t_rw.as_secs_f64() * 1e3),
            format!(
                "{:.0}x",
                t_naive.as_secs_f64() / t_rw.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    report
}

/// Offline cost of each probability-assignment mode on `customer`.
pub fn probability_modes(sf: f64, runs: usize) -> Report {
    let mut report = Report::new(
        "Ablation: probability assignment modes on customer",
        &["mode", "time (ms)"],
    );
    report.note(format!("sf = {sf}, if = 5, median of {runs} runs"));
    let dirty = generate_unpropagated(UisConfig {
        tpch: TpchConfig { sf, seed: 7 },
        if_factor: 5,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .expect("generator");
    for (label, mode) in [
        ("uniform", ProbMode::Uniform),
        ("random", ProbMode::Random),
        ("provenance", ProbMode::Provenance),
        ("info-loss (Section 4)", ProbMode::InfoLoss),
    ] {
        let (t, _) = median_time(runs, || {
            let mut cat = dirty.catalog.clone();
            compute_probabilities(&mut cat, "customer", mode, 7).expect("attributes exist");
            cat.table("customer").expect("present").len()
        });
        report.push_row(vec![
            label.to_string(),
            format!("{:.2}", t.as_secs_f64() * 1e3),
        ]);
    }
    report
}

/// Hash join vs the pre-built identifier-index join on the Q3 join.
pub fn join_strategies(sf: f64, runs: usize) -> Report {
    let mut report = Report::new(
        "Ablation: hash join vs identifier-index join (Q3 join)",
        &["strategy", "time (ms)", "rows"],
    );
    report.note(format!(
        "sf = {sf}, if = 3; the paper pre-built identifier indexes"
    ));
    let mut dirty = generate_unpropagated(UisConfig {
        tpch: TpchConfig { sf, seed: 7 },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .expect("generator");
    propagate_identifiers(&mut dirty.catalog).expect("generated data");
    for t in ["customer", "orders", "lineitem"] {
        compute_probabilities(&mut dirty.catalog, t, ProbMode::Uniform, 7).expect("tables exist");
    }
    let mut db = Database::from_catalog(dirty.catalog);
    let sql = query_sql(3, false);

    let stmt = db.prepare(&sql).expect("q3 prepares");
    let t0 = Instant::now();
    let baseline_rows = stmt.query(&db).expect("q3 runs").len();
    let _ = t0.elapsed();
    let (t_hash, _) = median_time(runs, || stmt.query(&db).expect("q3 runs").len());

    db.create_index("orders", "o_orderkey")
        .expect("column exists");
    db.create_index("customer", "c_custkey")
        .expect("column exists");
    let (t_index, rows) = median_time(runs, || stmt.query(&db).expect("q3 runs").len());
    assert_eq!(rows, baseline_rows, "index path must not change results");

    report.push_row(vec![
        "hash join".into(),
        format!("{:.2}", t_hash.as_secs_f64() * 1e3),
        baseline_rows.to_string(),
    ]);
    report.push_row(vec![
        "identifier-index join".into(),
        format!("{:.2}", t_index.as_secs_f64() * 1e3),
        rows.to_string(),
    ]);
    report
}
