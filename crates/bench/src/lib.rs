//! # conquer-bench
//!
//! Benchmark harnesses reproducing **every table and figure** of the
//! paper's evaluation (Section 4.2 and Section 5). Each figure/table has a
//! binary that prints the same rows/series the paper reports:
//!
//! | binary  | reproduces | paper claim (shape) |
//! |---------|------------|---------------------|
//! | `fig7`  | Figure 7   | offline propagation + probability-computation time on `lineitem` vs `if`; probability time grows with `if`, propagation does not |
//! | `fig8`  | Figure 8   | 13 TPC-H queries, original vs rewritten; overhead small (≤1.5× for most, worst on the many-join high-duplication query) |
//! | `fig9`  | Figure 9   | Query 3 runtime vs tuples/cluster, with/without ORDER BY; original without ORDER BY is flat, rewritten still grows (grouping) |
//! | `fig10` | Figure 10  | rewritten-query runtime vs database size; near-linear growth |
//! | `table3`| Table 3    | per-tuple distance/similarity/probability on the Figure-6 relation |
//! | `table4`| Table 4    | Cora-style cluster: top-2 near-canonical, bottom-2 anomalies |
//! | `parallel` | extension | morsel-parallel speedup on rewritten Q3/Q9/Q10, serial vs 4 worker threads (answers byte-identical either way) |
//! | `run_all` | all of the above | one shot; also writes CSVs under `results/` |
//!
//! Absolute numbers differ from the paper (their substrate was DB2 on 2005
//! hardware at 1 GB scale; ours is an in-memory engine at 1/100 scale — see
//! DESIGN.md), but the comparisons the paper draws are within-figure
//! *ratios and trends*, which these harnesses measure the same way.
//!
//! Scale knobs (environment variables):
//! * `CONQUER_SF` — base scale factor (default 0.2; sf=1 ≈ 78k clean rows);
//! * `CONQUER_RUNS` — timing repetitions, median reported (default 3).

#![warn(missing_docs)]
// Unlike the library crates, the bench harness is allowed to `.expect()`:
// it is measurement scaffolding, and panicking with a message on a broken
// setup is the behaviour we want. `xtask tidy` exempts this crate.

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod tables;

pub use figures::{fig10, fig7, fig8, fig9, parallel_speedup};
pub use harness::{median_time, print_report, write_csv, Report};
pub use tables::{table3, table4};

/// Base scale factor from `CONQUER_SF` (default 0.2).
pub fn base_sf() -> f64 {
    std::env::var("CONQUER_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}

/// Timing repetitions from `CONQUER_RUNS` (default 3).
pub fn runs() -> usize {
    std::env::var("CONQUER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}
