//! Concurrent-client throughput/latency benchmark for `conquer-server`.
//!
//! Spins up an in-process server over a UIS-dirtied TPC-H-lite database,
//! then drives the paper's 13 query templates — each in its original *and*
//! rewritten (clean-answer) form — first from one client, then from many
//! concurrent clients. Every concurrent answer is checked byte-for-byte
//! against the single-client reference (the shared caches must never
//! change an answer), and the run is summarized as throughput plus
//! p50/p95/p99 latency, printed and written to `results/` as CSV.
//!
//! Knobs (environment): `CONQUER_SF` (scale factor, default 0.05),
//! `CONQUER_CLIENTS` (concurrent clients, default 8), `CONQUER_ITERS`
//! (workload passes per client, default 3), plus the server's own
//! `CONQUER_PLAN_CACHE` / `CONQUER_RESULT_CACHE` / `CONQUER_ADMIT` /
//! `CONQUER_QUEUE`.

use std::path::Path;
use std::time::{Duration, Instant};

use conquer_bench::{print_report, write_csv, Report};
use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    queries::{query_sql, QUERY_IDS},
    tpch::TpchConfig,
};
use conquer_engine::{SharedConfig, SharedDatabase};
use conquer_server::{client::wire_form, Client, Server, ServerConfig};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The workload: every template, original then rewritten form.
fn workload(dirty: &conquer_core::DirtyDatabase) -> Vec<(String, String)> {
    let mut queries = Vec::new();
    for &id in &QUERY_IDS {
        let sql = query_sql(id, false);
        let rewritten = dirty
            .rewrite(&sql)
            .unwrap_or_else(|e| panic!("Q{id} must be rewritable: {e}"))
            .to_string();
        queries.push((format!("Q{id}"), sql));
        queries.push((format!("Q{id}r"), rewritten));
    }
    queries
}

/// One pass over the workload; returns per-request latencies and appends
/// each answer's wire form for identity checking.
fn run_pass(
    client: &mut Client,
    queries: &[(String, String)],
    answers: &mut Vec<(String, Vec<String>)>,
) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(queries.len());
    for (name, sql) in queries {
        let t0 = Instant::now();
        let rows = client
            .query(sql)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        latencies.push(t0.elapsed());
        answers.push((name.clone(), wire_form(&rows)));
    }
    latencies
}

fn main() {
    let sf = std::env::var("CONQUER_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let clients = env_usize("CONQUER_CLIENTS", 8);
    let iters = env_usize("CONQUER_ITERS", 3);

    eprintln!("generating dirty TPC-H-lite (sf={sf}) …");
    let dirty = dirty_database(UisConfig {
        tpch: TpchConfig { sf, seed: 2024 },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .expect("generating the benchmark database");
    let queries = workload(&dirty);

    let shared = SharedDatabase::with_config(dirty.db().clone(), SharedConfig::from_env());
    let mut server_config = ServerConfig::default();
    server_config.addr = "127.0.0.1:0".to_string();
    server_config.max_conn = clients + 8;
    let handle = Server::bind(shared.clone(), &server_config)
        .expect("binding the benchmark server")
        .spawn()
        .expect("spawning the benchmark server");
    let addr = handle.addr();
    eprintln!("server on {addr}; {} workload queries", queries.len());

    // Single-client reference pass: both the correctness baseline and the
    // cold-cache timing.
    let mut reference = Vec::new();
    let mut single = Client::connect(addr).expect("connecting the reference client");
    let t0 = Instant::now();
    let mut cold = run_pass(&mut single, &queries, &mut reference);
    let single_wall = t0.elapsed();
    cold.sort();

    // Concurrent pass: `clients` threads, each making `iters` passes; all
    // answers must be byte-identical to the reference.
    let t0 = Instant::now();
    let mut all_latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connecting a bench client");
                    let mut latencies = Vec::new();
                    for _ in 0..iters {
                        let mut answers = Vec::new();
                        latencies.extend(run_pass(&mut client, queries, &mut answers));
                        for ((name, rows), (_, expected)) in answers.iter().zip(reference.iter()) {
                            assert_eq!(
                                rows, expected,
                                "{name}: concurrent answer differs from single-client answer"
                            );
                        }
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all_latencies.extend(h.join().expect("bench client thread"));
        }
    });
    let concurrent_wall = t0.elapsed();
    all_latencies.sort();

    let stats = shared.stats();
    handle.shutdown();

    let mut report = Report::new(
        "Server concurrency",
        &[
            "phase", "clients", "requests", "wall_ms", "qps", "p50_ms", "p95_ms", "p99_ms",
        ],
    );
    let qps = |n: usize, wall: Duration| format!("{:.0}", n as f64 / wall.as_secs_f64().max(1e-9));
    report.push_row(vec![
        "single".into(),
        "1".into(),
        cold.len().to_string(),
        ms(single_wall),
        qps(cold.len(), single_wall),
        ms(percentile(&cold, 50.0)),
        ms(percentile(&cold, 95.0)),
        ms(percentile(&cold, 99.0)),
    ]);
    report.push_row(vec![
        "concurrent".into(),
        clients.to_string(),
        all_latencies.len().to_string(),
        ms(concurrent_wall),
        qps(all_latencies.len(), concurrent_wall),
        ms(percentile(&all_latencies, 50.0)),
        ms(percentile(&all_latencies, 95.0)),
        ms(percentile(&all_latencies, 99.0)),
    ]);
    report.note(format!(
        "sf={sf}, {} workload queries (13 templates, original + rewritten), {iters} passes/client",
        queries.len()
    ));
    report.note(format!(
        "all {} concurrent answers byte-identical to the single-client reference",
        all_latencies.len()
    ));
    report.note(format!(
        "caches: {} result hits / {} misses, {} plan hits / {} misses; admission: {} admitted, {} shed",
        stats.result_hits, stats.result_misses, stats.plan_hits, stats.plan_misses,
        stats.admitted, stats.shed
    ));

    print_report(&report);
    match write_csv(&report, Path::new("results")) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
