//! Reproduce Figure 8 (original vs rewritten query times).
fn main() {
    let report = conquer_bench::fig8(conquer_bench::base_sf(), conquer_bench::runs());
    conquer_bench::print_report(&report);
}
