//! Regenerate every table and figure of the paper in one run, printing each
//! and writing CSVs under `results/`.
use std::path::Path;

fn main() {
    let sf = conquer_bench::base_sf();
    let runs = conquer_bench::runs();
    let out = Path::new("results");
    eprintln!("running all experiments at base sf = {sf}, {runs} runs each…\n");
    let reports = vec![
        conquer_bench::table3(),
        conquer_bench::table4(),
        conquer_bench::fig7(sf, runs),
        conquer_bench::fig8(sf, runs),
        conquer_bench::fig9(sf, runs),
        conquer_bench::fig10(sf, runs),
        conquer_bench::parallel_speedup(sf, runs),
        conquer_bench::ablations::naive_vs_rewritten(runs),
        conquer_bench::ablations::probability_modes(sf, runs),
        conquer_bench::ablations::join_strategies(sf, runs),
    ];
    for report in &reports {
        conquer_bench::print_report(report);
        match conquer_bench::write_csv(report, out) {
            Ok(path) => eprintln!("   wrote {}", path.display()),
            Err(e) => eprintln!("   could not write CSV: {e}"),
        }
    }
}
