//! Reproduce Figure 10 (rewritten-query time over database size).
fn main() {
    let report = conquer_bench::fig10(conquer_bench::base_sf(), conquer_bench::runs());
    conquer_bench::print_report(&report);
}
