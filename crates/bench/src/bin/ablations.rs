//! Run the extension ablations (see `conquer_bench::ablations`).
fn main() {
    let sf = conquer_bench::base_sf();
    let runs = conquer_bench::runs();
    conquer_bench::print_report(&conquer_bench::ablations::naive_vs_rewritten(runs));
    conquer_bench::print_report(&conquer_bench::ablations::probability_modes(sf, runs));
    conquer_bench::print_report(&conquer_bench::ablations::join_strategies(sf, runs));
}
