//! WAL-commit microbench: the vfs guard for the disk-fault model.
//!
//! Every storage byte now flows through `conquer_storage::vfs`, which
//! compiles to direct `std::fs` calls when the `fault` feature is off (a
//! compile-time assertion pins `vfs::File` to the size of `std::fs::File`).
//! This harness measures the claim at the syscall level: a raw `std::fs`
//! append+fsync loop against `Wal::commit` (vfs-routed, checksummed
//! framing) on the same directory. The gap between the two is the framing
//! work; the vfs layer itself must be invisible next to the fsync.
//!
//! Knobs: `CONQUER_WAL_COMMITS` (default 64) commits per phase.

use std::io::Write as _;
use std::time::Instant;

use conquer_bench::{print_report, write_csv, Report};
use conquer_storage::{DataType, Schema, Table, Value, Wal, WalOp};

fn commits() -> usize {
    std::env::var("CONQUER_WAL_COMMITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1)
}

fn main() {
    let n = commits();
    let dir = std::env::temp_dir().join(format!("conquer_wal_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let mut table = Table::new(
        "t",
        Schema::from_pairs([("a", DataType::Int)]).expect("schema"),
    );
    table.insert(vec![Value::Int(42)]).expect("insert");

    // Phase 1: raw std::fs floor — append a frame-sized buffer and
    // fdatasync, the minimum any durable commit must pay.
    let frame = vec![0u8; 96];
    let raw_path = dir.join("raw.log");
    let mut raw = std::fs::File::create(&raw_path).expect("create raw log");
    let t0 = Instant::now();
    for _ in 0..n {
        raw.write_all(&frame).expect("append");
        raw.sync_data().expect("fsync");
    }
    let raw_elapsed = t0.elapsed();
    drop(raw);

    // Phase 2: the real thing — vfs-routed Wal::commit with checksummed
    // framing of a one-row table snapshot per commit.
    let mut wal = Wal::open(&dir).expect("open wal");
    let t0 = Instant::now();
    for _ in 0..n {
        wal.commit(&[WalOp::Put(&table)]).expect("commit");
    }
    let wal_elapsed = t0.elapsed();

    let mut report = Report::new(
        "WAL commit microbench (raw fs floor vs vfs-routed Wal)",
        &["phase", "commits", "total_ms", "us_per_commit"],
    );
    for (phase, elapsed) in [
        ("raw-append-fsync", raw_elapsed),
        ("vfs-wal-commit", wal_elapsed),
    ] {
        report.push_row(vec![
            phase.to_string(),
            n.to_string(),
            format!("{:.3}", elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", elapsed.as_secs_f64() * 1e6 / n as f64),
        ]);
    }
    report.note(format!(
        "vfs overhead vs raw floor: {:+.1}% per commit (fault feature off; \
         vfs::File is size-asserted equal to std::fs::File)",
        (wal_elapsed.as_secs_f64() / raw_elapsed.as_secs_f64() - 1.0) * 100.0
    ));
    report.note("the delta is checksummed framing, not the vfs indirection");
    print_report(&report);
    let path = write_csv(&report, std::path::Path::new("results")).expect("write csv");
    println!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&dir);
}
