//! Reproduce Table 4 (Cora-style qualitative evaluation).
fn main() {
    conquer_bench::print_report(&conquer_bench::table4());
}
