//! Incremental-view maintenance microbench: O(delta) vs O(database).
//!
//! Materializes all thirteen rewritten TPC-H templates as delta-maintained
//! views over a UIS-dirtied database, then measures what one committed DML
//! statement costs with maintenance riding the commit, against what the
//! same freshness would cost without maintenance — a full
//! `REFRESH MATERIALIZED VIEW` of every view (i.e. re-running every
//! rewritten join). The gap is the point of the feature: maintenance
//! touches only the changed clusters' groups, the refresh re-reads the
//! database.
//!
//! Knobs: `CONQUER_SF` (default 0.2 — the dirtied scale), `CONQUER_RUNS`
//! (refresh repetitions, median reported), `CONQUER_VIEW_OPS`
//! (default 64) maintained DML statements timed.

use std::time::Instant;

use conquer_bench::{base_sf, median_time, print_report, runs, write_csv, Report};
use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig, DIRTIED_TABLES},
    perturb::PerturbOptions,
    queries::{query_sql, QUERY_IDS},
    tpch::{identifier_column, TpchConfig},
};
use conquer_engine::Database;
use conquer_storage::Value;

fn ops() -> usize {
    std::env::var("CONQUER_VIEW_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1)
}

fn exec(db: &mut Database, sql: &str) {
    db.prepare(sql)
        .and_then(|s| s.run(db))
        .unwrap_or_else(|e| panic!("{sql}: {e}"));
}

fn literal(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{d}'"),
        other => panic!("unexpected identifier literal {other:?}"),
    }
}

/// Deterministic small mutations cycling over the dirtied tables:
/// duplicate a tuple, retract a cluster, rescale a cluster's
/// probabilities. Each touches O(1) clusters.
fn op_sql(db: &Database, i: usize) -> String {
    let table = DIRTIED_TABLES[i % DIRTIED_TABLES.len()];
    let t = db.catalog().table(table).expect("dirtied table");
    let rows = t.rows();
    assert!(!rows.is_empty(), "{table} ran out of rows during the bench");
    let row = &rows[(i * 7919) % rows.len()];
    let id_col = identifier_column(table);
    let id_lit = literal(&row[t.column_index(id_col).expect("id column")]);
    match i % 3 {
        0 => {
            let vals: Vec<String> = row.iter().map(literal).collect();
            format!("INSERT INTO {table} VALUES ({})", vals.join(", "))
        }
        1 => format!("DELETE FROM {table} WHERE {id_col} = {id_lit}"),
        _ => {
            format!("REANNOTATE {table} ({id_col}, prob) SET prob * 0.9 WHERE {id_col} = {id_lit}")
        }
    }
}

fn main() {
    let sf = base_sf();
    let n = ops();
    let cfg = UisConfig {
        tpch: TpchConfig { sf, seed: 42 },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    };
    let dirty = dirty_database(cfg).expect("dirty database");
    let mut db = dirty.db().clone();

    let mut views = Vec::new();
    for &id in &QUERY_IDS {
        let rewritten = dirty.rewrite(&query_sql(id, false)).expect("rewrite");
        exec(
            &mut db,
            &format!("CREATE MATERIALIZED VIEW q{id} AS {rewritten}"),
        );
        views.push(format!("q{id}"));
    }

    // Phase 1: maintained DML — each commit propagates deltas through all
    // thirteen views.
    let t0 = Instant::now();
    for i in 0..n {
        let sql = op_sql(&db, i);
        exec(&mut db, &sql);
    }
    let maintain = t0.elapsed();

    // Phase 2: the non-incremental alternative — the same freshness via a
    // full refresh of every view (what each DML would cost without delta
    // maintenance). Median of CONQUER_RUNS repetitions.
    let refresh_all: Vec<String> = views
        .iter()
        .map(|v| format!("REFRESH MATERIALIZED VIEW {v}"))
        .collect();
    let (refresh, ()) = median_time(runs(), || {
        for sql in &refresh_all {
            exec(&mut db, sql);
        }
    });

    let maintain_us = maintain.as_secs_f64() * 1e6 / n as f64;
    let refresh_us = refresh.as_secs_f64() * 1e6;
    let mut report = Report::new(
        "view maintenance (O(delta) DML vs full recompute of 13 views)",
        &["phase", "statements", "total_ms", "us_per_statement"],
    );
    report.push_row(vec![
        "maintained-dml".to_string(),
        n.to_string(),
        format!("{:.3}", maintain.as_secs_f64() * 1e3),
        format!("{maintain_us:.1}"),
    ]);
    report.push_row(vec![
        "refresh-all-views".to_string(),
        "1".to_string(),
        format!("{:.3}", refresh.as_secs_f64() * 1e3),
        format!("{refresh_us:.1}"),
    ]);
    report.note(format!(
        "sf={sf}, if=3, {} views; one maintained DML costs {:.1}× less than \
         the recompute it replaces",
        views.len(),
        refresh_us / maintain_us
    ));
    report.note(
        "maintained contents stay bit-identical to the refresh path \
         (tests/view_maintenance_property.rs proves it after every commit)",
    );
    print_report(&report);
    let path = write_csv(&report, std::path::Path::new("results")).expect("write csv");
    println!("wrote {}", path.display());
}
