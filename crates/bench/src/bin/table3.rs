//! Reproduce Table 3 (probability calculation in the Figure-6 relation).
fn main() {
    conquer_bench::print_report(&conquer_bench::table3());
}
