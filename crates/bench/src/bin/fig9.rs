//! Reproduce Figure 9 (Query 3 vs tuples per cluster).
fn main() {
    let report = conquer_bench::fig9(conquer_bench::base_sf(), conquer_bench::runs());
    conquer_bench::print_report(&report);
}
