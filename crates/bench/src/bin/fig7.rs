//! Reproduce Figure 7 (offline times for lineitem). See `conquer-bench`.
fn main() {
    let report = conquer_bench::fig7(conquer_bench::base_sf(), conquer_bench::runs());
    conquer_bench::print_report(&report);
}
