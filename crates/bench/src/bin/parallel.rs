//! Measure morsel-parallel speedup (rewritten Q3/Q9/Q10, serial vs 4 threads).
fn main() {
    let report = conquer_bench::parallel_speedup(conquer_bench::base_sf(), conquer_bench::runs());
    conquer_bench::print_report(&report);
}
