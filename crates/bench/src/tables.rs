//! Implementations of the Table 3 and Table 4 reproductions.

use conquer_datagen::cora::{schapire_cluster, CITATION_ATTRIBUTES};
use conquer_prob::{
    assign_probabilities, distance::information_loss, CategoricalMatrix, Clustering,
    DistanceMeasure, EditDistance, InfoLossDistance,
};
use conquer_storage::{DataType, Schema, Table};

use crate::harness::Report;

/// The paper's Figure-6 dirty customer relation.
pub fn figure6_relation() -> (Table, Clustering) {
    let schema = Schema::from_pairs([
        ("name", DataType::Text),
        ("mktsegmt", DataType::Text),
        ("nation", DataType::Text),
        ("address", DataType::Text),
    ])
    .expect("static schema");
    let mut t = Table::new("customer", schema);
    for (a, b, c, d) in [
        ("Mary", "building", "USA", "Jones Ave"),
        ("Mary", "banking", "USA", "Jones Ave"),
        ("Marion", "banking", "USA", "Jones ave"),
        ("John", "building", "America", "Arrow"),
        ("John S.", "building", "USA", "Arrow"),
        ("John", "banking", "Canada", "Baldwin"),
    ] {
        t.insert(vec![a.into(), b.into(), c.into(), d.into()])
            .expect("row");
    }
    let clustering =
        Clustering::new(vec![vec![0, 1, 2], vec![3, 4], vec![5]], 6).expect("partition");
    (t, clustering)
}

/// Table 3: distance to the cluster representative, similarity, and
/// probability for every tuple of the Figure-6 relation — plus the same
/// computation under the alternative edit-distance measure (the paper's
/// modularity claim).
pub fn table3() -> Report {
    let (t, clustering) = figure6_relation();
    let attrs = ["name", "mktsegmt", "nation", "address"];
    let matrix = CategoricalMatrix::from_table(&t, &attrs).expect("attributes exist");

    let info = assign_probabilities(&matrix, &clustering, &InfoLossDistance);
    let edit = assign_probabilities(&matrix, &clustering, &EditDistance);

    let mut report = Report::new(
        "Table 3: probability calculation in customer (Figure 6)",
        &[
            "tuple",
            "rep",
            "d(t, rep)",
            "s_t",
            "p(t) info-loss",
            "p(t) edit-distance",
        ],
    );
    report.note("paper: t2 most probable in c1; t4 = t5 = 0.5; t6 = 1.0");

    for (ci, cluster) in clustering.clusters().iter().enumerate() {
        let rep = matrix.cluster_dcf(cluster);
        let s: f64 = cluster
            .iter()
            .map(|&i| information_loss(&matrix.tuple_dcf(i), &rep, matrix.n() as f64))
            .sum();
        for &i in cluster {
            let d = information_loss(&matrix.tuple_dcf(i), &rep, matrix.n() as f64);
            let sim = if cluster.len() == 1 || s <= f64::EPSILON {
                1.0
            } else {
                1.0 - d / s
            };
            report.push_row(vec![
                format!("t{}", i + 1),
                format!("rep{}", ci + 1),
                format!("{d:.4}"),
                format!("{sim:.4}"),
                format!("{:.4}", info[i]),
                format!("{:.4}", edit[i]),
            ]);
        }
    }
    report
}

/// Table 4: the Cora-style qualitative evaluation — most frequent values of
/// the 56-tuple cluster, its two most likely tuples, and its two least
/// likely tuples (which must be the mis-clustered and odd-format records).
pub fn table4() -> Report {
    let (t, misclustered, odd) = schapire_cluster(1).expect("generator");
    let matrix = CategoricalMatrix::from_table(&t, &CITATION_ATTRIBUTES).expect("schema");
    let clustering = Clustering::from_id_column(&t, "id").expect("id column");
    let probs = assign_probabilities(&matrix, &clustering, &InfoLossDistance);

    let mut report = Report::new(
        "Table 4: example from the (synthetic) Cora data set",
        &[
            "rank", "p(t)", "author", "title", "venue", "volume", "year", "pages", "note",
        ],
    );
    report.note(format!(
        "{}-tuple cluster; anomalies at rows {misclustered} and {odd}",
        t.len()
    ));

    // Header block: most frequent values.
    let all: Vec<usize> = (0..t.len()).collect();
    let rep = InfoLossDistance.representative(&matrix, &all);
    let modal = rep.modal_values(|v| matrix.value_name(v).0, matrix.m());
    let mut row = vec!["modal".to_string(), String::new()];
    row.extend(modal.iter().map(|v| {
        v.map(|v| matrix.value_name(v).1.to_string())
            .unwrap_or_default()
    }));
    row.push("most frequent values".into());
    report.push_row(row);

    let mut ranked: Vec<usize> = (0..t.len()).collect();
    ranked.sort_by(|&a, &b| probs[b].partial_cmp(&probs[a]).expect("finite"));
    let show = |rank: &str, i: usize, report: &mut Report| {
        let r = &t.rows()[i];
        let note = if i == misclustered {
            "different publication (mis-clustered)"
        } else if i == odd {
            "same publication, odd format"
        } else {
            ""
        };
        report.push_row(vec![
            rank.to_string(),
            format!("{:.4}", probs[i]),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            r[5].to_string(),
            r[6].to_string(),
            note.to_string(),
        ]);
    };
    show("top-1", ranked[0], &mut report);
    show("top-2", ranked[1], &mut report);
    show("bot-2", ranked[t.len() - 2], &mut report);
    show("bot-1", ranked[t.len() - 1], &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_report_shape() {
        let r = table3();
        assert_eq!(r.rows.len(), 6);
        // similarity/probability invariants asserted in conquer-prob; here
        // check the rendering is complete.
        for row in &r.rows {
            assert_eq!(row.len(), 6);
        }
    }

    #[test]
    fn table4_report_flags_anomalies() {
        let r = table4();
        assert_eq!(r.rows.len(), 5); // modal + top2 + bottom2
        let notes: Vec<&str> = r.rows.iter().map(|r| r[8].as_str()).collect();
        assert!(notes.contains(&"different publication (mis-clustered)"));
        assert!(notes.contains(&"same publication, odd format"));
    }
}
