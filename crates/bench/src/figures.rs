//! Implementations of the Figure 7–10 measurements.

use conquer_core::DirtyDatabase;
use conquer_datagen::{
    dirty::{
        compute_probabilities, compute_probabilities_parallel, dirty_database,
        generate_unpropagated, propagate_identifiers, ProbMode, UisConfig,
    },
    perturb::PerturbOptions,
    queries::{query_sql, QUERY_IDS},
    tpch::TpchConfig,
};

use crate::harness::{median_time, median_time_with_setup, ms, Report};

fn config(sf: f64, if_factor: u32, mode: ProbMode, seed: u64) -> UisConfig {
    UisConfig {
        tpch: TpchConfig { sf, seed },
        if_factor,
        prob_mode: mode,
        perturb: PerturbOptions::default(),
    }
}

/// Figure 7: offline times for `lineitem` — identifier propagation,
/// probability calculation (information loss), and a linear-scan baseline —
/// at `if ∈ {1, 5, 25}` (the paper's parameters).
pub fn fig7(sf: f64, runs: usize) -> Report {
    let mut report = Report::new(
        "Figure 7: offline times for lineitem",
        &[
            "if",
            "lineitem rows",
            "propagation (ms)",
            "probability calc (ms)",
            "probability calc 8t (ms)",
            "linear scan (ms)",
        ],
    );
    report.note(format!(
        "sf = {sf} (scaled; see DESIGN.md), median of {runs} runs"
    ));
    report.note("paper: probability time grows with if; propagation is if-insensitive");
    report.note(format!(
        "the 8-thread column needs cores to help: this host reports {} core(s)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));

    for if_factor in [1u32, 5, 25] {
        let dirty =
            generate_unpropagated(config(sf, if_factor, ProbMode::InfoLoss, 7)).expect("generator");
        let rows = dirty.catalog.table("lineitem").expect("generated").len();

        // Propagation time: rewrite all lineitem FKs (fresh catalog each
        // run, since propagation is in-place; the clone is not timed).
        let (t_prop, _) = median_time_with_setup(
            runs,
            || dirty.catalog.clone(),
            |mut cat| {
                propagate_identifiers(&mut cat).expect("generated data has no dangling FKs");
                cat.table("lineitem").expect("present").len()
            },
        );

        // Probability computation on lineitem (the paper's Figure 7 relation).
        let (t_prob, _) = median_time_with_setup(
            runs,
            || dirty.catalog.clone(),
            |mut cat| {
                compute_probabilities(&mut cat, "lineitem", ProbMode::InfoLoss, 7)
                    .expect("lineitem has categorical attributes");
                cat.table("lineitem").expect("present").len()
            },
        );

        // Extension: the same pass parallelized over 8 scoped threads.
        let (t_prob_par, _) = median_time_with_setup(
            runs,
            || dirty.catalog.clone(),
            |mut cat| {
                compute_probabilities_parallel(&mut cat, "lineitem", 8)
                    .expect("lineitem has categorical attributes");
                cat.table("lineitem").expect("present").len()
            },
        );

        // Baseline: one linear scan over the relation.
        let (t_scan, _) = median_time(runs, || {
            let table = dirty.catalog.table("lineitem").expect("present");
            let mut cells = 0usize;
            for row in table.rows() {
                cells += row.len();
            }
            cells
        });

        report.push_row(vec![
            if_factor.to_string(),
            rows.to_string(),
            ms(t_prop),
            ms(t_prob),
            ms(t_prob_par),
            ms(t_scan),
        ]);
    }
    report
}

/// Figure 8: the thirteen TPC-H queries, original vs rewritten, at `if = 3`.
pub fn fig8(sf: f64, runs: usize) -> Report {
    let mut report = Report::new(
        "Figure 8: original vs rewritten query times (sf scaled, if = 3)",
        &[
            "query",
            "answers",
            "original (ms)",
            "rewritten (ms)",
            "overhead",
        ],
    );
    report.note(format!("sf = {sf}, median of {runs} runs"));
    report.note("paper: all queries within 1.5x except the many-join Q9 (1.8x)");

    let db = dirty_database(config(sf, 3, ProbMode::Uniform, 7)).expect("pipeline");
    if let Ok(stats) = conquer_datagen::stats::database_stats(&db) {
        report.note(conquer_datagen::stats::summarize(&stats));
    }
    for &id in &QUERY_IDS {
        let sql = query_sql(id, true);
        let (row, ratio) = time_pair(&db, &sql, runs);
        report.push_row(vec![
            format!("Q{id}"),
            row.0,
            row.1,
            row.2,
            format!("{ratio:.2}x"),
        ]);
    }
    // Operator-level breakdown of the rewritten Q3 — the per-node stats the
    // executor collects for every query (also available as EXPLAIN ANALYZE).
    if let Ok(answers) = db.clean_answers(&query_sql(3, true)) {
        if let Some(stats) = answers.stats() {
            report.note(format!(
                "rewritten Q3 operator breakdown:\n{}",
                stats.render()
            ));
        }
    }
    report
}

/// Time the original and rewritten versions of `sql`; returns
/// `((answers, t_orig, t_rw), ratio)` with times rendered in ms.
///
/// Both statements are prepared once outside the timing loop, so the
/// measurement covers execution only — the setting of the paper's figures,
/// which timed queries on a warmed commercial RDBMS.
fn time_pair(db: &DirtyDatabase, sql: &str, runs: usize) -> ((String, String, String), f64) {
    let orig = db.db().prepare(sql).expect("workload query prepares");
    let (t_orig, _) = median_time(runs, || {
        orig.query(db.db()).expect("workload query runs").len()
    });
    let rewritten = db.rewrite(sql).expect("workload query rewritable");
    let rw = db
        .db()
        .prepare_select(&rewritten)
        .expect("rewritten query prepares");
    let (t_rw, n_rw) = median_time(runs, || {
        rw.query(db.db()).expect("rewritten query runs").len()
    });
    let ratio = t_rw.as_secs_f64() / t_orig.as_secs_f64().max(1e-12);
    ((n_rw.to_string(), ms(t_orig), ms(t_rw)), ratio)
}

/// Figure 9: Query 3 vs tuples-per-cluster (`if = 1..5`), the four series
/// of the paper: original / rewritten × with / without ORDER BY.
pub fn fig9(sf: f64, runs: usize) -> Report {
    let mut report = Report::new(
        "Figure 9: Query 3 vs tuples per cluster",
        &[
            "if",
            "original (ms)",
            "rewritten (ms)",
            "original no-order-by (ms)",
            "rewritten no-order-by (ms)",
        ],
    );
    report.note(format!("sf = {sf}, median of {runs} runs"));
    report.note("paper: both grow with cluster size; without ORDER BY the original flattens");

    for if_factor in 1u32..=5 {
        let db = dirty_database(config(sf, if_factor, ProbMode::Uniform, 7)).expect("pipeline");
        let with = query_sql(3, true);
        let without = query_sql(3, false);
        let prep = |sql: &str| db.db().prepare(sql).expect("q3 prepares");
        let prep_rw = |sql: &str| {
            let rewritten = db.rewrite(sql).expect("q3 rewritable");
            db.db()
                .prepare_select(&rewritten)
                .expect("rewritten q3 prepares")
        };
        let (orig, rw) = (prep(&with), prep_rw(&with));
        let (orig_no, rw_no) = (prep(&without), prep_rw(&without));
        let (t_orig, _) = median_time(runs, || orig.query(db.db()).expect("q3").len());
        let (t_rw, _) = median_time(runs, || rw.query(db.db()).expect("q3").len());
        let (t_orig_no, _) = median_time(runs, || orig_no.query(db.db()).expect("q3").len());
        let (t_rw_no, _) = median_time(runs, || rw_no.query(db.db()).expect("q3").len());
        report.push_row(vec![
            if_factor.to_string(),
            ms(t_orig),
            ms(t_rw),
            ms(t_orig_no),
            ms(t_rw_no),
        ]);
    }
    report
}

/// Extension figure: morsel-parallel speedup on the join-heavy rewritten
/// templates (Q3, Q9, Q10), serial vs a 4-worker pool. The executor
/// promises byte-identical answers at any thread count, so the only
/// difference the pool is allowed to make is wall-clock time.
pub fn parallel_speedup(sf: f64, runs: usize) -> Report {
    use conquer_engine::ExecLimits;

    let mut report = Report::new(
        "Parallel speedup: rewritten Q3/Q9/Q10, serial vs 4 worker threads",
        &[
            "query",
            "answers",
            "serial (ms)",
            "4 threads (ms)",
            "speedup",
            "threads used",
        ],
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report.note(format!("sf = {sf}, if = 3, median of {runs} runs"));
    report.note(
        "answers are byte-identical at every thread count (tests/parallel_equivalence.rs); \
         this figure measures the wall-clock side of that bargain",
    );
    report.note(format!(
        "speedup needs cores to materialize: this host reports {cores} core(s); \
         on 1 core the pool degenerates to interleaved serial work (speedup ~1.0x)"
    ));

    let db = dirty_database(config(sf, 3, ProbMode::Uniform, 7)).expect("pipeline");
    for id in [3u8, 9, 10] {
        let rewritten = db.rewrite(&query_sql(id, false)).expect("rewritable");
        let run_at = |threads: usize| {
            let stmt = db
                .db()
                .prepare_select(&rewritten)
                .expect("rewritten query prepares")
                .with_limits(ExecLimits::none().with_threads(threads));
            let (t, res) = median_time(runs, || stmt.query(db.db()).expect("runs"));
            let used = res.stats().map_or(1, |s| s.threads_used);
            (t, res.len(), used)
        };
        let (t_serial, answers, used_serial) = run_at(1);
        debug_assert_eq!(used_serial, 1);
        let (t_par, _, used) = run_at(4);
        let speedup = t_serial.as_secs_f64() / t_par.as_secs_f64().max(1e-12);
        report.push_row(vec![
            format!("Q{id}"),
            answers.to_string(),
            ms(t_serial),
            ms(t_par),
            format!("{speedup:.2}x"),
            used.to_string(),
        ]);
    }
    report
}

/// Figure 10: rewritten-query time over database size (the paper's 0.1, 0.5,
/// 1, 2 GB become 0.1×, 0.5×, 1×, 2× the base scale), `if = 3`. Query 9 is
/// omitted exactly as the paper omits it from this figure.
pub fn fig10(base_sf: f64, runs: usize) -> Report {
    let sizes = [0.1, 0.5, 1.0, 2.0];
    let headers: Vec<String> = std::iter::once("query".to_string())
        .chain(sizes.iter().map(|s| format!("{s}x base (ms)")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "Figure 10: rewritten-query time over DB size (if = 3)",
        &headers_ref,
    );
    report.note(format!("base sf = {base_sf}, median of {runs} runs"));
    report.note("paper: running times grow linearly with database size");

    let ids: Vec<u8> = QUERY_IDS.iter().copied().filter(|&q| q != 9).collect();
    let dbs: Vec<DirtyDatabase> = sizes
        .iter()
        .map(|mult| {
            dirty_database(config(base_sf * mult, 3, ProbMode::Uniform, 7)).expect("pipeline")
        })
        .collect();
    for id in ids {
        let sql = query_sql(id, true);
        let mut row = vec![format!("Q{id}")];
        for db in &dbs {
            let rewritten = db.rewrite(&sql).expect("rewritable");
            let stmt = db.db().prepare_select(&rewritten).expect("prepares");
            let (t, _) = median_time(runs, || stmt.query(db.db()).expect("runs").len());
            row.push(ms(t));
        }
        report.push_row(row);
    }
    report
}
