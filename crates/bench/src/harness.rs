//! Timing and reporting helpers shared by the figure harnesses.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Run `f` `runs` times and return the median wall-clock duration.
/// The closure's result is returned (from the last run) so the measured
/// computation cannot be optimized away.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed());
        last = Some(out);
    }
    times.sort();
    (times[times.len() / 2], last.expect("runs >= 1"))
}

/// Like [`median_time`], but a fresh state is built by `setup` before each
/// run and only `f(state)` is timed — for measuring in-place passes
/// (identifier propagation, probability computation) without charging the
/// clone of their input to the measurement.
pub fn median_time_with_setup<S, T>(
    runs: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> (Duration, T) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let state = setup();
        let t0 = Instant::now();
        let out = f(state);
        times.push(t0.elapsed());
        last = Some(out);
    }
    times.sort();
    (times[times.len() / 2], last.expect("runs >= 1"))
}

/// A measured table: a title, column headers, and stringly rows — the
/// figure harnesses produce these and the binaries print/persist them.
#[derive(Debug, Clone)]
pub struct Report {
    /// What this report reproduces (e.g. "Figure 8").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper claim, scale used, …).
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

/// Render a report as an aligned text table on stdout.
pub fn print_report(report: &Report) {
    println!("== {} ==", report.title);
    for n in &report.notes {
        println!("   {n}");
    }
    let mut widths: Vec<usize> = report.headers.iter().map(String::len).collect();
    for row in &report.rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out
    };
    println!("{}", line(&report.headers));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in &report.rows {
        println!("{}", line(row));
    }
    println!();
}

/// Persist a report as CSV under `dir` (created if needed); the file name
/// is derived from the title.
pub fn write_csv(report: &Report, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let name: String = report
        .title
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", report.headers.join(","))?;
    for row in &report.rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render a `Duration` in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs() {
        let mut n = 0;
        let (d, out) = median_time(3, || {
            n += 1;
            n
        });
        assert_eq!(out, 3);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("Figure X", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("note");
        print_report(&r); // must not panic
        let dir = std::env::temp_dir().join("conquer_bench_test");
        let path = write_csv(&r, &dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
