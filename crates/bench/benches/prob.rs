//! Probability-assignment benchmarks (Section 4).
//!
//! Ablation from DESIGN.md: the information-loss distance can be computed
//! two algebraically identical ways — the direct mutual-information
//! difference `I(C;V) − I(C′;V)` (touches the whole clustering) and the
//! weighted Jensen–Shannon shortcut (touches only the two summaries). The
//! shortcut is what makes Figure 7's offline cost linear in the relation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conquer_datagen::{
    dirty::{generate_unpropagated, ProbMode, UisConfig},
    perturb::PerturbOptions,
    tpch::TpchConfig,
};
use conquer_prob::{
    assign_probabilities,
    distance::{information_loss, mutual_information},
    CategoricalMatrix, Clustering, Dcf, EditDistance, InfoLossDistance,
};

fn customer_matrix(if_factor: u32) -> (CategoricalMatrix, Clustering) {
    let dirty = generate_unpropagated(UisConfig {
        tpch: TpchConfig { sf: 0.05, seed: 5 },
        if_factor,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .expect("generator");
    let table = dirty.catalog.table("customer").expect("generated");
    let matrix =
        CategoricalMatrix::from_table(table, &["c_name", "c_address", "c_phone", "c_mktsegment"])
            .expect("attributes");
    let clustering = Clustering::from_id_column(table, "c_custkey").expect("id column");
    (matrix, clustering)
}

fn bench_prob(c: &mut Criterion) {
    let mut group = c.benchmark_group("prob");
    group.sample_size(20);

    // Figure-5 assignment cost as cluster size grows (the Figure 7 driver).
    for if_factor in [2u32, 5, 10] {
        let (matrix, clustering) = customer_matrix(if_factor);
        group.bench_with_input(
            BenchmarkId::new("assign_info_loss", if_factor),
            &if_factor,
            |b, _| {
                b.iter(|| {
                    black_box(assign_probabilities(
                        &matrix,
                        &clustering,
                        &InfoLossDistance,
                    ))
                })
            },
        );
    }

    // Distance-measure modularity: same data, edit-distance measure.
    let (matrix, clustering) = customer_matrix(5);
    group.bench_function("assign_edit_distance_if5", |b| {
        b.iter(|| black_box(assign_probabilities(&matrix, &clustering, &EditDistance)))
    });

    // Shortcut vs direct mutual-information difference on synthetic DCFs.
    let clusters: Vec<Dcf> = (0..50u32)
        .map(|i| Dcf::from_parts(2.0, (0..8).map(move |j| (i * 8 + j, 0.125))))
        .collect();
    let n = 100.0;
    group.bench_function("delta_i_shortcut", |b| {
        b.iter(|| black_box(information_loss(&clusters[0], &clusters[1], n)))
    });
    group.bench_function("delta_i_direct", |b| {
        b.iter(|| {
            let before = mutual_information(&clusters, n);
            let mut merged = vec![clusters[0].merge(&clusters[1])];
            merged.extend_from_slice(&clusters[2..]);
            let after = mutual_information(&merged, n);
            black_box(before - after)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_prob);
criterion_main!(benches);
