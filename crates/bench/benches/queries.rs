//! End-to-end query benchmarks on dirty TPC-H-lite data, plus the
//! naive-vs-rewritten ablation.
//!
//! The ablation quantifies why the rewriting matters: candidate-database
//! enumeration is exponential in the number of clusters (Definition 3), so
//! even a *tiny* dirty database is orders of magnitude slower to answer
//! naively than through `RewriteClean`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use conquer_core::{naive::NaiveOptions, DirtyDatabase, DirtySpec, EvalStrategy};
use conquer_datagen::{
    dirty::{dirty_database, ProbMode, UisConfig},
    perturb::PerturbOptions,
    queries::query_sql,
    tpch::TpchConfig,
};
use conquer_engine::Database;

fn tpch_db() -> DirtyDatabase {
    dirty_database(UisConfig {
        tpch: TpchConfig { sf: 0.02, seed: 3 },
        if_factor: 3,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    })
    .expect("pipeline")
}

/// A deliberately tiny dirty database (12 clusters) where naive evaluation
/// is still feasible, for the crossover ablation.
fn tiny_db() -> DirtyDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE r (id TEXT, a INTEGER, prob DOUBLE);
         CREATE TABLE s (id TEXT, fk TEXT, b INTEGER, prob DOUBLE)",
    )
    .unwrap();
    {
        let t = db.catalog_mut().table_mut("r").unwrap();
        for i in 0..6i64 {
            t.insert(vec![format!("r{i}").into(), i.into(), 0.5.into()])
                .unwrap();
            t.insert(vec![format!("r{i}").into(), (i + 1).into(), 0.5.into()])
                .unwrap();
        }
    }
    {
        let t = db.catalog_mut().table_mut("s").unwrap();
        for i in 0..6i64 {
            t.insert(vec![
                format!("s{i}").into(),
                format!("r{}", i % 6).into(),
                i.into(),
                0.5.into(),
            ])
            .unwrap();
            t.insert(vec![
                format!("s{i}").into(),
                format!("r{}", (i + 1) % 6).into(),
                (i + 2).into(),
                0.5.into(),
            ])
            .unwrap();
        }
    }
    DirtyDatabase::new(db, DirtySpec::uniform(&["r", "s"])).expect("valid")
}

fn bench_queries(c: &mut Criterion) {
    let db = tpch_db();
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);

    for id in [3u8, 6, 10] {
        let sql = query_sql(id, true);
        let original = db.db().prepare(&sql).expect("prepares");
        group.bench_function(format!("q{id}_original"), |b| {
            b.iter(|| black_box(original.query(db.db()).expect("runs").len()))
        });
        group.bench_function(format!("q{id}_rewritten"), |b| {
            b.iter(|| black_box(db.clean_answers(&sql).expect("rewritable").len()))
        });
    }
    group.finish();

    // Naive-vs-rewritten crossover: 2^12 = 4096 candidates.
    let tiny = tiny_db();
    let sql = "select s.id, r.id from s, r where s.fk = r.id and r.a > 1";
    let mut group = c.benchmark_group("naive_vs_rewritten");
    group.sample_size(10);
    group.bench_function("rewritten_12_clusters", |b| {
        b.iter(|| black_box(tiny.clean_answers(sql).expect("rewritable").len()))
    });
    group.bench_function("naive_12_clusters_4096_candidates", |b| {
        b.iter(|| {
            black_box(
                tiny.clean_answers_with(sql, EvalStrategy::Naive(NaiveOptions::default()))
                    .expect("small enough")
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
