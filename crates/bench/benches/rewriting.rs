//! Micro-benchmarks of the query-rewriting pipeline itself: parsing,
//! rewritability checking (join-graph analysis) and `RewriteClean`.
//!
//! The paper's practicality argument rests on the rewriting being a cheap,
//! purely syntactic preprocessing step — these benches quantify "cheap"
//! (microseconds, versus milliseconds-to-seconds of query execution).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use conquer_core::{graph::check_rewritable, RewriteClean};
use conquer_datagen::{
    dirty::{dirty_database, tpch_spec, ProbMode, UisConfig},
    perturb::PerturbOptions,
    queries::{all_queries, query_sql},
    tpch::TpchConfig,
};
use conquer_sql::parse_select;

fn config() -> UisConfig {
    UisConfig {
        tpch: TpchConfig { sf: 0.005, seed: 1 },
        if_factor: 2,
        prob_mode: ProbMode::Uniform,
        perturb: PerturbOptions::default(),
    }
}

fn bench_rewriting(c: &mut Criterion) {
    let db = dirty_database(config()).expect("pipeline");
    let catalog = db.db().catalog();
    let spec = tpch_spec();
    let q3 = query_sql(3, true);
    let stmt = parse_select(&q3).expect("valid");

    let mut group = c.benchmark_group("rewriting");
    group.sample_size(30);

    group.bench_function("parse_q3", |b| {
        b.iter(|| parse_select(black_box(&q3)).expect("valid"))
    });
    group.bench_function("check_rewritable_q3", |b| {
        b.iter(|| check_rewritable(black_box(catalog), &spec, &stmt).expect("rewritable"))
    });
    group.bench_function("rewrite_q3", |b| {
        b.iter(|| {
            RewriteClean
                .rewrite(black_box(catalog), &spec, &stmt)
                .expect("rewritable")
        })
    });
    group.bench_function("rewrite_all_13", |b| {
        let stmts: Vec<_> = all_queries()
            .iter()
            .map(|q| parse_select(&q.sql).expect("valid"))
            .collect();
        b.iter(|| {
            for s in &stmts {
                black_box(RewriteClean.rewrite(catalog, &spec, s).expect("rewritable"));
            }
        })
    });
    group.bench_function("print_rewritten_q3", |b| {
        let rewritten = RewriteClean
            .rewrite(catalog, &spec, &stmt)
            .expect("rewritable");
        b.iter(|| black_box(rewritten.to_string()))
    });
    group.finish();
}

criterion_group!(benches, bench_rewriting);
criterion_main!(benches);
