//! Engine-kernel benchmarks: hash join vs nested-loop join, aggregation,
//! and sorting — the operators whose relative costs determine the rewritten
//! queries' overhead (the rewriting adds exactly one hash aggregation).
//!
//! Ablation called out in DESIGN.md: the paper built indexes on identifier
//! columns; our analogue is the equality-driven hash join versus the
//! nested-loop fallback an engine without equi detection would use.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use conquer_engine::Database;

/// Two tables joined 1:N (N ≈ 4).
fn setup(parents: usize) -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE parent (id INTEGER, grp INTEGER, prob DOUBLE);
         CREATE TABLE child (id INTEGER, fk INTEGER, v INTEGER, prob DOUBLE)",
    )
    .unwrap();
    {
        let t = db.catalog_mut().table_mut("parent").unwrap();
        for i in 0..parents as i64 {
            t.insert(vec![i.into(), (i % 10).into(), 1.0.into()])
                .unwrap();
        }
    }
    {
        let t = db.catalog_mut().table_mut("child").unwrap();
        let mut id = 0i64;
        for i in 0..parents as i64 {
            for _ in 0..4 {
                t.insert(vec![id.into(), i.into(), (id % 97).into(), 1.0.into()])
                    .unwrap();
                id += 1;
            }
        }
    }
    db
}

fn bench_joins(c: &mut Criterion) {
    let db = setup(2000);
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    let hash_join = db
        .prepare("SELECT c.id FROM child c, parent p WHERE c.fk = p.id")
        .unwrap();
    group.bench_function("hash_join_8k_x_2k", |b| {
        b.iter(|| black_box(hash_join.query(&db).expect("runs").len()))
    });

    // Forcing the nested-loop path with an inequality predicate of matched
    // selectivity is not possible; compare with a much smaller cross join
    // instead, which is what the planner falls back to without equi keys.
    let small = setup(150);
    let nested = small
        .prepare("SELECT c.id FROM child c, parent p WHERE c.fk < p.id")
        .unwrap();
    group.bench_function("nested_loop_600_x_150", |b| {
        b.iter(|| black_box(nested.query(&small).expect("runs").len()))
    });

    // Ablation: the paper pre-built indexes on identifier columns; with a
    // stored index on parent.id the engine probes it instead of hashing.
    let mut indexed = setup(2000);
    indexed.create_index("parent", "id").expect("column exists");
    let index_join = indexed
        .prepare("SELECT c.id FROM child c, parent p WHERE c.fk = p.id")
        .unwrap();
    group.bench_function("index_join_8k_x_2k", |b| {
        b.iter(|| black_box(index_join.query(&indexed).expect("runs").len()))
    });

    let agg = db
        .prepare(
            "SELECT p.grp, COUNT(*), SUM(c.v * p.prob) \
             FROM child c, parent p WHERE c.fk = p.id GROUP BY p.grp",
        )
        .unwrap();
    group.bench_function("hash_aggregate_8k_rows", |b| {
        b.iter(|| black_box(agg.query(&db).expect("runs").len()))
    });

    let sort = db
        .prepare("SELECT id, v FROM child ORDER BY v DESC, id")
        .unwrap();
    group.bench_function("sort_8k_rows", |b| {
        b.iter(|| black_box(sort.query(&db).expect("runs").len()))
    });

    let filter = db.prepare("SELECT id FROM child WHERE v < 50").unwrap();
    group.bench_function("filter_scan_8k_rows", |b| {
        b.iter(|| black_box(filter.query(&db).expect("runs").len()))
    });

    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
