//! Self-tests for the lock-order / rank / blocking-region analyzer.
//!
//! These construct violations with test-local lock labels (so the global
//! lock-order graph never intersects the production rank table) and assert
//! the panic message names both acquisition sites.

use conquer_sync::{blocking_region, rank, Condvar, Mutex, Rank, RwLock, ANALYSIS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn panic_message(r: std::thread::Result<()>) -> String {
    match r {
        Ok(()) => String::new(),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    }
}

fn catch(f: impl FnOnce()) -> String {
    panic_message(catch_unwind(AssertUnwindSafe(f)))
}

#[test]
// ANALYSIS is a compile-time constant by design — asserting on it is the
// whole point of this test.
#[allow(clippy::assertions_on_constants)]
fn analysis_is_on_in_debug_and_test_builds() {
    // Debug builds (cargo test default) must have the instrumentation; a
    // release run of this suite exercises the passthrough test below instead.
    if cfg!(debug_assertions) {
        assert!(ANALYSIS, "debug builds must carry the instrumentation");
    }
}

#[test]
fn release_wrappers_are_field_identical_passthroughs() {
    if !ANALYSIS {
        assert_eq!(
            std::mem::size_of::<Mutex<u64>>(),
            std::mem::size_of::<std::sync::Mutex<u64>>(),
            "release Mutex wrapper must add no fields"
        );
        assert_eq!(
            std::mem::size_of::<RwLock<u64>>(),
            std::mem::size_of::<std::sync::RwLock<u64>>(),
            "release RwLock wrapper must add no fields"
        );
        assert_eq!(
            std::mem::size_of::<Condvar>(),
            std::mem::size_of::<std::sync::Condvar>(),
            "release Condvar wrapper must add no fields"
        );
    }
}

#[test]
fn lock_order_cycle_is_reported_with_both_sites() {
    if !ANALYSIS {
        return;
    }
    static A: Rank = Rank {
        order: 0,
        name: "selftest_cycle_a",
        blocking_ok: false,
    };
    static B: Rank = Rank {
        order: 0,
        name: "selftest_cycle_b",
        blocking_ok: false,
    };
    let a = Mutex::new(&A, ());
    let b = Mutex::new(&B, ());
    {
        // Witness the order a -> b.
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Now the reverse nesting must be rejected as a potential deadlock.
    let _gb = b.lock();
    let msg = catch(|| {
        let _ga = a.lock();
    });
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected message: {msg}"
    );
    assert!(
        msg.contains("selftest_cycle_a") && msg.contains("selftest_cycle_b"),
        "{msg}"
    );
    // Both acquisition sites (all in this file) must be named.
    let sites = msg.matches("analyzer.rs").count();
    assert!(sites >= 2, "expected at least two named sites in: {msg}");
}

#[test]
fn rank_inversion_is_reported_with_both_sites() {
    if !ANALYSIS {
        return;
    }
    static HI: Rank = Rank {
        order: 7,
        name: "selftest_inv_hi",
        blocking_ok: false,
    };
    static LO: Rank = Rank {
        order: 6,
        name: "selftest_inv_lo",
        blocking_ok: false,
    };
    let hi = Mutex::new(&HI, ());
    let lo = Mutex::new(&LO, ());
    let _g = hi.lock();
    let msg = catch(|| {
        let _g2 = lo.lock();
    });
    assert!(
        msg.contains("lock-rank inversion"),
        "unexpected message: {msg}"
    );
    assert!(
        msg.contains("selftest_inv_hi") && msg.contains("selftest_inv_lo"),
        "{msg}"
    );
    assert!(
        msg.matches("analyzer.rs").count() >= 2,
        "expected both sites named in: {msg}"
    );
}

#[test]
fn equal_rank_nesting_is_an_inversion() {
    if !ANALYSIS {
        return;
    }
    static R1: Rank = Rank {
        order: 9,
        name: "selftest_eq_a",
        blocking_ok: false,
    };
    static R2: Rank = Rank {
        order: 9,
        name: "selftest_eq_b",
        blocking_ok: false,
    };
    let a = Mutex::new(&R1, ());
    let b = Mutex::new(&R2, ());
    let _g = a.lock();
    let msg = catch(|| {
        let _g2 = b.lock();
    });
    assert!(msg.contains("lock-rank inversion"), "{msg}");
}

#[test]
fn reentrant_acquisition_is_reported() {
    if !ANALYSIS {
        return;
    }
    static R: Rank = Rank {
        order: 0,
        name: "selftest_reentrant",
        blocking_ok: false,
    };
    let m = Mutex::new(&R, 0u32);
    let _g = m.lock();
    let msg = catch(|| {
        let _g2 = m.lock();
    });
    assert!(msg.contains("re-entrant"), "{msg}");
}

#[test]
fn ascending_ranks_are_accepted() {
    // The production table must be usable in its documented order.
    let w = Mutex::new(&rank::SHARED_WRITER, ());
    let cur = RwLock::new(&rank::DB_CURRENT, 0u64);
    let plans = Mutex::new(&rank::PLAN_CACHE, ());
    let results = Mutex::new(&rank::RESULT_CACHE, ());
    let _gw = w.lock();
    {
        let _gc = cur.write();
    }
    let _gp = plans.lock();
    let _gr = results.lock();
}

#[test]
fn blocking_region_flags_non_blocking_ok_locks() {
    if !ANALYSIS {
        return;
    }
    static R: Rank = Rank {
        order: 0,
        name: "selftest_blocking",
        blocking_ok: false,
    };
    let m = Mutex::new(&R, ());
    let _g = m.lock();
    let msg = catch(|| {
        let _b = blocking_region("selftest::fsync");
    });
    assert!(msg.contains("blocking region"), "{msg}");
    assert!(
        msg.contains("selftest_blocking") && msg.contains("selftest::fsync"),
        "{msg}"
    );
}

#[test]
fn blocking_region_allows_blocking_ok_locks() {
    let m = Mutex::new(&rank::SHARED_WRITER, ());
    let _g = m.lock();
    let _b = blocking_region("selftest::fsync-ok");
}

#[test]
fn injected_spurious_wakeup_returns_without_notify() {
    if !ANALYSIS {
        return;
    }
    static R: Rank = Rank {
        order: 0,
        name: "selftest_spurious",
        blocking_ok: false,
    };
    let m = Mutex::new(&R, false);
    let cv = Condvar::new();
    assert!(cv.inject_spurious(1));
    let g = m.lock();
    // Returns immediately (no notifier exists); predicate still false.
    let (g, r) = cv.wait_timeout(g, Duration::from_secs(60));
    assert!(
        !*g,
        "predicate must still be unfulfilled after a spurious wake"
    );
    assert!(!r.timed_out(), "spurious wake is not a timeout");
    drop(g);
}

#[test]
fn poison_is_recovered_and_clearable() {
    static R: Rank = Rank {
        order: 0,
        name: "selftest_poison",
        blocking_ok: false,
    };
    static M: Mutex<u32> = Mutex::new(&R, 7);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let _g = M.lock();
        panic!("poison it");
    }));
    assert!(M.is_poisoned());
    // lock() recovers the data instead of propagating the poison.
    assert_eq!(*M.lock(), 7);
    M.clear_poison();
    assert!(!M.is_poisoned());
}

#[test]
fn wait_requires_innermost_lock() {
    if !ANALYSIS {
        return;
    }
    static OUTER: Rank = Rank {
        order: 0,
        name: "selftest_wait_outer",
        blocking_ok: false,
    };
    static INNER: Rank = Rank {
        order: 0,
        name: "selftest_wait_inner",
        blocking_ok: false,
    };
    let outer = Mutex::new(&OUTER, ());
    let inner = Mutex::new(&INNER, ());
    let cv = Condvar::new();
    cv.inject_spurious(1); // would return immediately if the check passed
    let go = outer.lock();
    let _gi = inner.lock();
    let msg = catch(|| {
        let _ = cv.wait_timeout(go, Duration::from_millis(1));
    });
    assert!(msg.contains("innermost"), "{msg}");
}
