//! Self-tests for the deterministic schedule explorer.
#![cfg(any(debug_assertions, feature = "analysis"))]

use conquer_sync::sched::Explorer;
use conquer_sync::{Condvar, Mutex, Rank};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

static LOCK_A: Rank = Rank {
    order: 0,
    name: "schedtest_a",
    blocking_ok: false,
};
static LOCK_B: Rank = Rank {
    order: 0,
    name: "schedtest_b",
    blocking_ok: false,
};

#[test]
fn explores_multiple_schedules_and_passes_correct_code() {
    let report = Explorer::new().max_preemptions(2).explore(|exec| {
        let counter = Arc::new(Mutex::new(&LOCK_A, 0u32));
        for t in 0..2 {
            let c = Arc::clone(&counter);
            exec.spawn(&format!("incr-{t}"), move || {
                for _ in 0..2 {
                    *c.lock() += 1;
                }
            });
        }
        let c = Arc::clone(&counter);
        exec.check(move || assert_eq!(*c.lock(), 4));
    });
    report.assert_passed();
    assert!(
        report.schedules > 1,
        "two racing threads must yield more than one schedule"
    );
}

#[test]
fn finds_lost_update_from_non_atomic_read_modify_write() {
    // Read under the lock, drop it, re-take it to write: a classic lost
    // update. The explorer must find the interleaving where both threads
    // read 0 and the final value is 1 instead of 2.
    let report = Explorer::new().explore(|exec| {
        let v = Arc::new(Mutex::new(&LOCK_A, 0u32));
        for t in 0..2 {
            let v = Arc::clone(&v);
            exec.spawn(&format!("rmw-{t}"), move || {
                let read = *v.lock();
                *v.lock() = read + 1;
            });
        }
        let v = Arc::clone(&v);
        exec.check(move || assert_eq!(*v.lock(), 2, "lost update"));
    });
    let failure = report.failure.expect("explorer must find the lost update");
    assert!(failure.contains("lost update"), "{failure}");
}

#[test]
fn reports_deadlock_for_never_notified_wait() {
    let report = Explorer::new().explore(|exec| {
        let m = Arc::new(Mutex::new(&LOCK_A, false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        exec.spawn("waiter", move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g); // nobody will ever notify
            }
        });
    });
    let failure = report.failure.expect("un-notified wait must be reported");
    assert!(failure.contains("deadlock"), "{failure}");
    assert!(
        failure.contains("waiter"),
        "deadlock report must name the thread: {failure}"
    );
}

#[test]
fn detects_lock_order_cycle_under_exploration() {
    // Classic ABBA: the analysis layer's graph check fires inside a virtual
    // thread and the explorer surfaces it as the failure.
    let report = Explorer::new().explore(|exec| {
        let a = Arc::new(Mutex::new(&LOCK_A, ()));
        let b = Arc::new(Mutex::new(&LOCK_B, ()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        exec.spawn("ab", move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        exec.spawn("ba", move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
    });
    let failure = report.failure.expect("ABBA must be caught");
    assert!(failure.contains("lock-order cycle"), "{failure}");
}

#[test]
fn producer_consumer_handshake_terminates_in_every_schedule() {
    let outcomes = Arc::new(AtomicUsize::new(0));
    let outer = Arc::clone(&outcomes);
    let report = Explorer::new().explore(move |exec| {
        let m = Arc::new(Mutex::new(&LOCK_A, false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let seen = Arc::clone(&outer);
        exec.spawn("consumer", move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
            seen.fetch_add(1, Ordering::SeqCst);
        });
        let (m3, cv3) = (Arc::clone(&m), Arc::clone(&cv));
        exec.spawn("producer", move || {
            *m3.lock() = true;
            cv3.notify_one();
        });
    });
    report.assert_passed();
    assert_eq!(
        outcomes.load(Ordering::SeqCst),
        report.schedules,
        "consumer must observe the flag in every schedule"
    );
}

#[test]
fn timed_wait_explores_both_clock_and_notify_wakeups() {
    let timeouts = Arc::new(AtomicUsize::new(0));
    let notifies = Arc::new(AtomicUsize::new(0));
    let (t_out, n_out) = (Arc::clone(&timeouts), Arc::clone(&notifies));
    let report = Explorer::new().explore(move |exec| {
        let m = Arc::new(Mutex::new(&LOCK_A, false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let (t, n) = (Arc::clone(&t_out), Arc::clone(&n_out));
        exec.spawn("waiter", move || {
            let g = m2.lock();
            if !*g {
                let (g, r) = cv2.wait_timeout(g, Duration::from_secs(3600));
                if r.timed_out() {
                    t.fetch_add(1, Ordering::SeqCst);
                } else if *g {
                    n.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        let (m3, cv3) = (Arc::clone(&m), Arc::clone(&cv));
        exec.spawn("producer", move || {
            *m3.lock() = true;
            cv3.notify_one();
        });
    });
    report.assert_passed();
    assert!(
        timeouts.load(Ordering::SeqCst) > 0,
        "some schedule must take the clock wakeup"
    );
    assert!(
        notifies.load(Ordering::SeqCst) > 0,
        "some schedule must take the notify wakeup"
    );
}

#[test]
fn zero_timeout_times_out_deterministically() {
    let report = Explorer::new().explore(|exec| {
        let m = Arc::new(Mutex::new(&LOCK_A, false));
        let cv = Arc::new(Condvar::new());
        exec.spawn("waiter", move || {
            let g = m.lock();
            let (_g, r) = cv.wait_timeout(g, Duration::ZERO);
            assert!(r.timed_out(), "zero-duration wait must time out");
        });
    });
    report.assert_passed();
}

#[test]
fn preemption_bound_caps_the_schedule_space() {
    let run = |p: usize| {
        Explorer::new()
            .max_preemptions(p)
            .explore(|exec| {
                let c = Arc::new(Mutex::new(&LOCK_A, 0u32));
                for t in 0..2 {
                    let c = Arc::clone(&c);
                    exec.spawn(&format!("t{t}"), move || {
                        for _ in 0..3 {
                            *c.lock() += 1;
                        }
                    });
                }
            })
            .schedules
    };
    let tight = run(0);
    let loose = run(3);
    assert!(
        tight < loose,
        "preemption bound must prune schedules ({tight} !< {loose})"
    );
}
