//! Loom-style deterministic schedule explorer.
//!
//! [`Explorer::explore`] runs a closure that spawns *virtual threads* (real
//! OS threads serialized by a central controller). Every operation on the
//! instrumented sync layer — mutex/rwlock acquire and release, condvar
//! wait/notify — becomes a *yield point*: the thread parks and the controller
//! picks which thread runs next. The controller enumerates schedules by
//! depth-first search over those choices (bounded by a preemption cap, a
//! per-execution step cap, and a total schedule cap), re-running the setup
//! closure from scratch for each schedule.
//!
//! Timed condvar waits are modelled as a scheduling choice: a thread blocked
//! in `wait_timeout` may be woken "by the clock" (result `timed_out = true`)
//! at most once per execution per thread, or by a real notify. A timeout of
//! `Duration::ZERO` times out immediately and deterministically.
//!
//! If at some point no thread can be granted (everyone is blocked on an
//! unavailable lock or an un-notified condvar), the execution is reported as
//! a **deadlock** naming each thread and what it is blocked on. A panic in
//! any virtual thread (for example a lock-order panic from the analysis
//! layer, or an assertion in the model test) aborts the run and is reported
//! as the failure.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Panic payload used to unwind virtual threads when a run is aborted; not a
/// test failure in itself.
struct SchedAbort;

#[derive(Clone, Debug, PartialEq)]
enum Blocked {
    /// Spawned, waiting for the first grant.
    Start,
    /// At a plain yield point (after a release or notify).
    Yield,
    /// Waiting to acquire a lock.
    Acquire {
        lock: usize,
        write: bool,
    },
    /// Waiting on a condvar. `timed` waits are eligible for a clock wake.
    CvWait {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    /// Woken from a condvar (by notify or clock); must re-acquire the mutex.
    Reacquire {
        mutex: usize,
        timed_out: bool,
    },
    Finished,
}

struct ThreadState {
    name: String,
    blocked: Blocked,
    /// True while the thread sits at a yield point waiting for a grant.
    parked: bool,
    granted: bool,
    timed_out: bool,
    early_wake_budget: u32,
}

#[derive(Default)]
struct LockState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

impl LockState {
    fn free_for(&self, tid: usize, write: bool) -> bool {
        if write {
            self.writer.is_none() && self.readers.is_empty()
        } else {
            self.writer.is_none() && !self.readers.contains(&tid)
        }
    }
}

#[derive(Default)]
struct SchedState {
    threads: Vec<ThreadState>,
    locks: HashMap<usize, LockState>,
    /// FIFO wait queues per condvar address.
    cv_queues: HashMap<usize, VecDeque<usize>>,
    running: Option<usize>,
    live: usize,
    abort: bool,
    failure: Option<String>,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Shared {
    fn new() -> Self {
        Shared {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// Is the current thread a virtual thread owned by a running [`Explorer`]?
pub fn is_model_thread() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Park the current virtual thread in `blocked` state and wait until the
/// controller grants it. Returns the `timed_out` flag (meaningful for condvar
/// waits). Must be called with the scheduler state transition already staged
/// in `stage`.
fn park(shared: &Shared, tid: usize, stage: impl FnOnce(&mut SchedState)) -> bool {
    let mut st = shared.lock();
    if st.abort {
        drop(st);
        std::panic::panic_any(SchedAbort);
    }
    stage(&mut st);
    let t = &mut st.threads[tid];
    t.parked = true;
    t.granted = false;
    st.running = None;
    shared.cv.notify_all();
    while !st.threads[tid].granted {
        if st.abort {
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.abort {
        // Teardown grant: unwind instead of acting on it.
        drop(st);
        std::panic::panic_any(SchedAbort);
    }
    let t = &mut st.threads[tid];
    t.parked = false;
    t.timed_out
}

fn with_ctx(f: impl FnOnce(&Arc<Shared>, usize) -> bool) -> bool {
    // Borrow ends before `f` runs so hooks re-entered from guard drops inside
    // `f` (there are none, but be safe) cannot double-borrow.
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|x| (Arc::clone(&x.shared), x.tid)));
    match ctx {
        Some((shared, tid)) => f(&shared, tid),
        None => false,
    }
}

// ---- hooks called by the wrappers in lib.rs --------------------------------

pub(crate) fn lock_acquire(addr: usize) {
    rw_acquire(addr, true);
}

pub(crate) fn lock_release(addr: usize) {
    rw_release(addr, true);
}

pub(crate) fn rw_acquire(addr: usize, write: bool) {
    with_ctx(|shared, tid| {
        {
            let st = shared.lock();
            if st.abort {
                return false;
            }
        }
        park(shared, tid, |st| {
            st.threads[tid].blocked = Blocked::Acquire { lock: addr, write };
        });
        // The controller marked the lock as ours before granting, so the real
        // std acquisition that follows is uncontended.
        true
    });
}

pub(crate) fn rw_release(addr: usize, write: bool) {
    with_ctx(|shared, tid| {
        {
            let mut st = shared.lock();
            if st.abort {
                // Still record the release so teardown bookkeeping stays sane.
                release_lock(&mut st, addr, tid, write);
                return false;
            }
            release_lock(&mut st, addr, tid, write);
        }
        // Releasing a lock is a visible event: let the scheduler interleave.
        park(shared, tid, |st| {
            st.threads[tid].blocked = Blocked::Yield;
        });
        true
    });
}

fn release_lock(st: &mut SchedState, addr: usize, tid: usize, write: bool) {
    if let Some(l) = st.locks.get_mut(&addr) {
        if write {
            if l.writer == Some(tid) {
                l.writer = None;
            }
        } else if let Some(i) = l.readers.iter().position(|&r| r == tid) {
            l.readers.remove(i);
        }
    }
}

/// Atomically release `mutex` and start waiting on `cv`; returns `timed_out`.
pub(crate) fn cv_wait(cv: usize, mutex: usize, dur: Option<Duration>) -> bool {
    let mut timed_out = false;
    with_ctx(|shared, tid| {
        {
            let st = shared.lock();
            if st.abort {
                return false;
            }
        }
        if dur == Some(Duration::ZERO) {
            // Deterministic immediate timeout: release the mutex and queue
            // straight up for re-acquisition.
            timed_out = park(shared, tid, |st| {
                release_lock(st, mutex, tid, true);
                st.threads[tid].timed_out = true;
                st.threads[tid].blocked = Blocked::Reacquire {
                    mutex,
                    timed_out: true,
                };
            });
            return true;
        }
        timed_out = park(shared, tid, |st| {
            release_lock(st, mutex, tid, true);
            st.threads[tid].timed_out = false;
            st.threads[tid].blocked = Blocked::CvWait {
                cv,
                mutex,
                timed: dur.is_some(),
            };
            st.cv_queues.entry(cv).or_default().push_back(tid);
        });
        true
    });
    timed_out
}

/// Wake one (FIFO) or all waiters on `cv`, then yield.
pub(crate) fn cv_notify(cv: usize, all: bool) {
    with_ctx(|shared, tid| {
        {
            let mut st = shared.lock();
            if st.abort {
                return false;
            }
            wake_waiters(&mut st, cv, all);
        }
        park(shared, tid, |st| {
            st.threads[tid].blocked = Blocked::Yield;
        });
        true
    });
}

fn wake_waiters(st: &mut SchedState, cv: usize, all: bool) {
    loop {
        let next = st.cv_queues.get_mut(&cv).and_then(|q| q.pop_front());
        let Some(w) = next else { break };
        if let Blocked::CvWait { mutex, .. } = st.threads[w].blocked {
            st.threads[w].timed_out = false;
            st.threads[w].blocked = Blocked::Reacquire {
                mutex,
                timed_out: false,
            };
            if !all {
                break;
            }
        }
        // Stale queue entries (already woken by the clock) are skipped.
    }
}

// ---- exploration driver ----------------------------------------------------

/// Decision log driving depth-first enumeration of schedules.
#[derive(Default)]
struct Decisions {
    prefix: Vec<(usize, usize)>, // (choice index, number of options)
    pos: usize,
}

impl Decisions {
    fn next(&mut self, options: usize) -> usize {
        if self.pos < self.prefix.len() {
            let c = self.prefix[self.pos].0;
            self.pos += 1;
            c.min(options.saturating_sub(1))
        } else {
            self.prefix.push((0, options));
            self.pos += 1;
            0
        }
    }

    /// Advance to the next unexplored schedule; false when the space is done.
    fn advance(&mut self) -> bool {
        self.prefix.truncate(self.pos);
        while let Some((c, n)) = self.prefix.pop() {
            if c + 1 < n {
                self.prefix.push((c + 1, n));
                self.pos = 0;
                return true;
            }
        }
        false
    }
}

/// Outcome of an [`Explorer::explore`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// True if the entire (bounded) schedule space was exhausted.
    pub complete: bool,
    /// First failure encountered (panic message, deadlock, or check failure);
    /// `None` if every explored schedule passed.
    pub failure: Option<String>,
}

impl Report {
    /// Panic (with the failure text) unless every explored schedule passed
    /// and the bounded space was fully explored.
    #[track_caller]
    pub fn assert_passed(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "schedule exploration failed after {} schedules: {}",
                self.schedules, f
            );
        }
        assert!(
            self.complete,
            "schedule space not exhausted within limits ({} schedules run)",
            self.schedules
        );
    }
}

/// Handle passed to the setup closure of [`Explorer::explore`]; spawns the
/// virtual threads and registers post-run invariant checks for one execution.
pub struct Exec {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    checks: Vec<Box<dyn FnOnce() + 'static>>,
}

impl Exec {
    /// Spawn a virtual thread. It starts parked; the controller interleaves
    /// it with its siblings at every sync-layer operation.
    pub fn spawn<F: FnOnce() + Send + 'static>(&mut self, name: &str, f: F) {
        let tid = {
            let mut st = self.shared.lock();
            st.threads.push(ThreadState {
                name: name.to_string(),
                blocked: Blocked::Start,
                parked: false,
                granted: false,
                timed_out: false,
                early_wake_budget: 1,
            });
            st.live += 1;
            st.threads.len() - 1
        };
        let shared = Arc::clone(&self.shared);
        let name = name.to_string();
        self.handles.push(std::thread::spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    shared: Arc::clone(&shared),
                    tid,
                });
            });
            park(&shared, tid, |_| {});
            let result = catch_unwind(AssertUnwindSafe(f));
            CTX.with(|c| c.borrow_mut().take());
            let mut st = shared.lock();
            st.threads[tid].blocked = Blocked::Finished;
            st.threads[tid].parked = false;
            st.live -= 1;
            st.running = None;
            if let Err(payload) = result {
                if !payload.is::<SchedAbort>() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    if st.failure.is_none() {
                        st.failure = Some(format!("virtual thread `{name}` panicked: {msg}"));
                    }
                    st.abort = true;
                }
            }
            shared.cv.notify_all();
        }));
    }

    /// Register an invariant to check (on the controller thread) after all
    /// virtual threads of this execution have finished.
    pub fn check<F: FnOnce() + 'static>(&mut self, f: F) {
        self.checks.push(Box::new(f));
    }
}

/// Bounded-DFS schedule explorer. See the module docs.
pub struct Explorer {
    max_preemptions: usize,
    max_schedules: usize,
    max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

impl Explorer {
    /// Explorer with default bounds (2 preemptions, 20 000 schedules,
    /// 20 000 steps per schedule).
    pub fn new() -> Self {
        Explorer {
            max_preemptions: 2,
            max_schedules: 20_000,
            max_steps: 20_000,
        }
    }

    /// Cap on preemptive context switches per execution (switching away from
    /// a thread that could have continued). Forced switches are always free.
    pub fn max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Cap on the total number of schedules explored.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Cap on scheduling steps within one execution (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Run `setup` once per schedule until the bounded schedule space is
    /// exhausted, a failure is found, or `max_schedules` is hit.
    pub fn explore<F: FnMut(&mut Exec)>(&self, mut setup: F) -> Report {
        let mut decisions = Decisions::default();
        let mut schedules = 0;
        loop {
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            schedules += 1;
            let shared = Arc::new(Shared::new());
            let mut exec = Exec {
                shared: Arc::clone(&shared),
                handles: Vec::new(),
                checks: Vec::new(),
            };
            setup(&mut exec);
            let mut failure = self.run_one(&shared, &mut decisions);
            for h in exec.handles.drain(..) {
                let _ = h.join();
            }
            if failure.is_none() {
                failure = shared.lock().failure.take();
            }
            if failure.is_none() {
                for c in exec.checks.drain(..) {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(c)) {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        failure = Some(format!("post-run check failed: {msg}"));
                        break;
                    }
                }
            }
            if failure.is_some() {
                return Report {
                    schedules,
                    complete: false,
                    failure,
                };
            }
            if !decisions.advance() {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            }
        }
    }

    /// Drive one execution to completion; returns a failure description or
    /// None. Controller runs on the calling thread.
    fn run_one(&self, shared: &Shared, decisions: &mut Decisions) -> Option<String> {
        let mut preemptions = 0usize;
        let mut steps = 0usize;
        let mut last: Option<usize> = None;
        let mut st = shared.lock();
        loop {
            // Wait until no thread is running and all live threads are parked.
            while st.running.is_some()
                || st
                    .threads
                    .iter()
                    .any(|t| t.blocked != Blocked::Finished && !t.parked)
            {
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                if st.abort || st.failure.is_some() {
                    return self.abort_and_drain(shared, st, None);
                }
            }
            if st.failure.is_some() {
                return self.abort_and_drain(shared, st, None);
            }
            if st.live == 0 {
                return None;
            }
            steps += 1;
            if steps > self.max_steps {
                let msg = format!("step cap ({}) exceeded — livelock?", self.max_steps);
                return self.abort_and_drain(shared, st, Some(msg));
            }

            // Enumerate grantable threads.
            let mut options: Vec<usize> = Vec::new();
            for (tid, t) in st.threads.iter().enumerate() {
                let ok = match &t.blocked {
                    Blocked::Start | Blocked::Yield => true,
                    Blocked::Acquire { lock, write } => st
                        .locks
                        .get(lock)
                        .map(|l| l.free_for(tid, *write))
                        .unwrap_or(true),
                    Blocked::Reacquire { mutex, .. } => st
                        .locks
                        .get(mutex)
                        .map(|l| l.free_for(tid, true))
                        .unwrap_or(true),
                    Blocked::CvWait { mutex, timed, .. } => {
                        *timed
                            && t.early_wake_budget > 0
                            && st
                                .locks
                                .get(mutex)
                                .map(|l| l.free_for(tid, true))
                                .unwrap_or(true)
                    }
                    Blocked::Finished => false,
                };
                if ok {
                    options.push(tid);
                }
            }
            if options.is_empty() {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .filter(|t| t.blocked != Blocked::Finished)
                    .map(|t| format!("`{}` blocked on {:?}", t.name, t.blocked))
                    .collect();
                let msg = format!(
                    "deadlock: no runnable virtual thread — {}",
                    stuck.join(", ")
                );
                return self.abort_and_drain(shared, st, Some(msg));
            }

            // Preemption bounding: once over budget, stay on the previous
            // thread whenever it is still grantable.
            if preemptions >= self.max_preemptions {
                if let Some(p) = last {
                    if options.contains(&p) {
                        options = vec![p];
                    }
                }
            }

            let idx = decisions.next(options.len());
            let chosen = options[idx];
            if let Some(p) = last {
                if chosen != p && options.contains(&p) {
                    preemptions += 1;
                }
            }
            last = Some(chosen);

            // Apply the grant.
            let blocked = st.threads[chosen].blocked.clone();
            match blocked {
                Blocked::Acquire { lock, write } => {
                    let l = st.locks.entry(lock).or_default();
                    if write {
                        l.writer = Some(chosen);
                    } else {
                        l.readers.push(chosen);
                    }
                }
                Blocked::Reacquire { mutex, timed_out } => {
                    st.locks.entry(mutex).or_default().writer = Some(chosen);
                    st.threads[chosen].timed_out = timed_out;
                }
                Blocked::CvWait { cv, mutex, .. } => {
                    // Clock wake: consume the budget and take the mutex.
                    st.threads[chosen].early_wake_budget -= 1;
                    st.threads[chosen].timed_out = true;
                    st.locks.entry(mutex).or_default().writer = Some(chosen);
                    if let Some(q) = st.cv_queues.get_mut(&cv) {
                        q.retain(|&w| w != chosen);
                    }
                }
                Blocked::Start | Blocked::Yield => {}
                Blocked::Finished => unreachable!("granted a finished thread"),
            }
            let t = &mut st.threads[chosen];
            t.blocked = Blocked::Yield;
            t.granted = true;
            st.running = Some(chosen);
            shared.cv.notify_all();
        }
    }

    /// Set the abort flag, wake every parked thread so it can unwind, wait
    /// for all virtual threads to finish, and return the failure message.
    fn abort_and_drain(
        &self,
        shared: &Shared,
        mut st: MutexGuard<'_, SchedState>,
        msg: Option<String>,
    ) -> Option<String> {
        st.abort = true;
        if let Some(m) = msg {
            if st.failure.is_none() {
                st.failure = Some(m);
            }
        }
        // Grant everyone so park loops observe the abort and unwind.
        for t in st.threads.iter_mut() {
            t.granted = true;
        }
        shared.cv.notify_all();
        while st.live > 0 {
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            for t in st.threads.iter_mut() {
                t.granted = true;
            }
            shared.cv.notify_all();
        }
        st.failure.take()
    }
}
