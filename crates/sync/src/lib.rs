//! Instrumented synchronization layer for the ConQuer workspace.
//!
//! Every lock in the workspace goes through the wrappers in this crate
//! instead of `std::sync` directly (enforced by `cargo run -p xtask -- tidy`).
//! The wrappers are zero-cost passthroughs in release builds; in debug builds
//! (and release builds with the `analysis` feature) each lock carries a
//! static [`Rank`] and every acquisition is checked against
//!
//! 1. a **rank discipline** — a thread may only acquire locks in strictly
//!    ascending rank order (rank order `0` opts out and relies on the graph
//!    check alone),
//! 2. a **global lock-order graph** — an acquisition that would close a cycle
//!    between lock labels panics naming both acquisition sites, even if the
//!    two conflicting nestings happened on different threads in different
//!    tests, and
//! 3. a **blocking-region rule** — entering a region that performs a blocking
//!    syscall (WAL fsync, socket I/O) while holding a lock whose rank is not
//!    marked `blocking_ok` panics.
//!
//! The crate also hosts [`sched`], a loom-style deterministic schedule
//! explorer used by the model tests in `crates/core/tests/model.rs`, and a
//! tiny [`mutant`] registry that lets those tests arm seeded concurrency bugs
//! in production code paths.
//!
//! `conquer-core` re-exports this crate as `conquer_core::sync`, which is the
//! canonical path the rest of the workspace uses.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

use std::fmt;
#[cfg(any(debug_assertions, feature = "analysis"))]
use std::panic::Location;
#[cfg(any(debug_assertions, feature = "analysis"))]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// `true` when the lock-order / rank / blocking-region instrumentation is
/// compiled in (debug builds, or any build with the `analysis` feature).
pub const ANALYSIS: bool = cfg!(any(debug_assertions, feature = "analysis"));

/// Static metadata attached to every ranked lock.
///
/// Declare one `static` per lock *role* (not per instance) and pass it to
/// [`Mutex::new`] / [`RwLock::new`]. See [`rank`] for the workspace table.
#[derive(Debug)]
pub struct Rank {
    /// Position in the global acquisition order. Locks must be acquired in
    /// strictly ascending `order`; `0` means "unordered" — exempt from the
    /// rank check and covered only by the lock-order graph.
    pub order: u16,
    /// Stable label naming the lock role; nodes in the lock-order graph.
    pub name: &'static str,
    /// Whether holding this lock across a blocking syscall (see
    /// [`blocking_region`]) is acceptable. The writer mutex performs its WAL
    /// fsync under the lock *by design*, so it sets this.
    pub blocking_ok: bool,
}

/// The workspace lock-rank table. Acquire in strictly ascending `order`.
///
/// Keep this table in sync with the "Sync discipline" section of DESIGN.md.
pub mod rank {
    use super::Rank;

    /// Test-harness serialization locks (process-global test mutexes).
    pub static TEST_SERIAL: Rank = Rank {
        order: 10,
        name: "test_serial",
        blocking_ok: true,
    };
    /// `SharedDatabase` writer mutex — serializes DML; WAL fsync happens
    /// under it by design, hence `blocking_ok`.
    pub static SHARED_WRITER: Rank = Rank {
        order: 20,
        name: "shared_writer",
        blocking_ok: true,
    };
    /// Pointer-swap `RwLock` publishing the current `Arc<DbVersion>`.
    pub static DB_CURRENT: Rank = Rank {
        order: 30,
        name: "db_current",
        blocking_ok: false,
    };
    /// Prepared-plan LRU cache.
    pub static PLAN_CACHE: Rank = Rank {
        order: 40,
        name: "plan_cache",
        blocking_ok: false,
    };
    /// Clean-answer result LRU cache. Always taken after [`PLAN_CACHE`]
    /// when both are needed.
    pub static RESULT_CACHE: Rank = Rank {
        order: 41,
        name: "result_cache",
        blocking_ok: false,
    };
    /// `AdmissionGate` slot state.
    pub static GATE: Rank = Rank {
        order: 50,
        name: "admission_gate",
        blocking_ok: false,
    };
    /// Per-session `ExecLimits`.
    pub static SESSION_LIMITS: Rank = Rank {
        order: 60,
        name: "session_limits",
        blocking_ok: false,
    };
    /// Per-session active `CancelToken`.
    pub static SESSION_ACTIVE: Rank = Rank {
        order: 61,
        name: "session_active",
        blocking_ok: false,
    };
    /// Morsel scheduler shared queue (`engine::parallel`).
    pub static PARALLEL_QUEUE: Rank = Rank {
        order: 70,
        name: "parallel_queue",
        blocking_ok: false,
    };
    /// Per-worker step counters (`engine::parallel`).
    pub static METRICS_STEPS: Rank = Rank {
        order: 75,
        name: "metrics_steps",
        blocking_ok: false,
    };
    /// Aggregate busy-time metric (`engine::parallel`).
    pub static METRICS_BUSY: Rank = Rank {
        order: 76,
        name: "metrics_busy",
        blocking_ok: false,
    };
    /// VFS mount table (`storage::vfs`); maps path prefixes to simulated
    /// filesystems under `--features fault`. Held only for the routing
    /// lookup, never across IO.
    pub static VFS_MOUNTS: Rank = Rank {
        order: 80,
        name: "vfs_mounts",
        blocking_ok: false,
    };
    /// Simulated-filesystem state (`storage::vfs::SimFs`); taken after
    /// [`VFS_MOUNTS`] resolves a route, held for the in-memory operation.
    pub static VFS_SIM: Rank = Rank {
        order: 81,
        name: "vfs_sim",
        blocking_ok: false,
    };
    /// Ring buffer of recent IO-error notes (`storage::vfs`); leaf-like,
    /// taken after any simulated IO completes.
    pub static VFS_ISSUES: Rank = Rank {
        order: 85,
        name: "vfs_issues",
        blocking_ok: false,
    };
    /// Failpoint registry (`storage::fault`); leaf lock, never holds others.
    pub static FAULT_REGISTRY: Rank = Rank {
        order: 90,
        name: "fault_registry",
        blocking_ok: true,
    };
}

#[cfg(any(debug_assertions, feature = "analysis"))]
mod imp {
    //! Instrumentation internals: per-thread held stacks, the global
    //! lock-order graph, the mutant registry. This module is the one place
    //! in the workspace allowed to use raw `std::sync` primitives.

    use super::Rank;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock};

    pub(crate) type Site = &'static Location<'static>;

    #[derive(Clone, Copy)]
    pub(crate) struct Held {
        pub rank: &'static Rank,
        pub site: Site,
        pub addr: usize,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Directed edge `from` → `to`: some thread acquired `to` while holding
    /// `from`. We remember the first witness's acquisition sites.
    struct Edge {
        from_site: Site,
        to_site: Site,
    }

    #[derive(Default)]
    struct Graph {
        // (from label, to label) -> first witnessed sites.
        edges: HashMap<(&'static str, &'static str), Edge>,
    }

    impl Graph {
        /// Is there a path `from` → … → `to` through recorded edges?
        /// Returns the path as a list of (from, to) label pairs.
        fn path(
            &self,
            from: &'static str,
            to: &'static str,
        ) -> Option<Vec<(&'static str, &'static str)>> {
            let mut stack = vec![(from, Vec::new())];
            let mut seen = vec![from];
            while let Some((node, trail)) = stack.pop() {
                for (a, b) in self.edges.keys() {
                    if *a != node || seen.contains(b) {
                        continue;
                    }
                    let mut t = trail.clone();
                    t.push((*a, *b));
                    if *b == to {
                        return Some(t);
                    }
                    seen.push(b);
                    stack.push((b, t));
                }
            }
            None
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
        graph().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run the rank + lock-order checks for acquiring `rank` at `site`,
    /// panicking (with nothing held by us) on a violation. Does not yet mark
    /// the lock as held — call [`push_held`] after the real acquisition.
    pub(crate) fn check_acquire(rank: &'static Rank, addr: usize, site: Site) {
        let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        for h in &held {
            if h.addr == addr {
                panic!(
                    "lock-order violation: re-entrant acquisition of `{}` at {} (already held since {})",
                    rank.name, site, h.site
                );
            }
            if rank.order > 0 && h.rank.order > 0 && h.rank.order >= rank.order {
                panic!(
                    "lock-rank inversion: acquiring `{}` (rank {}) at {} while holding `{}` (rank {}) acquired at {} — ranks must be strictly ascending",
                    rank.name, rank.order, site, h.rank.name, h.rank.order, h.site
                );
            }
        }
        // Record edges held → new and check for cycles through the new edges.
        let mut cycle: Option<String> = None;
        {
            let mut g = lock_graph();
            for h in &held {
                if h.rank.name == rank.name {
                    continue;
                }
                if let Some(path) = g.path(rank.name, h.rank.name) {
                    // Adding h.rank.name -> rank.name would close a cycle.
                    let back = path
                        .iter()
                        .map(|(a, b)| {
                            let e = &g.edges[&(*a, *b)];
                            format!(
                                "`{}` (held at {}) then `{}` (acquired at {})",
                                a, e.from_site, b, e.to_site
                            )
                        })
                        .collect::<Vec<_>>()
                        .join("; ");
                    cycle = Some(format!(
                        "lock-order cycle: this thread acquires `{}` at {} while holding `{}` (acquired at {}), \
                         but the opposite order was witnessed earlier: {}",
                        rank.name, site, h.rank.name, h.site, back
                    ));
                    break;
                }
                g.edges.entry((h.rank.name, rank.name)).or_insert(Edge {
                    from_site: h.site,
                    to_site: site,
                });
            }
        }
        if let Some(msg) = cycle {
            panic!("{msg}");
        }
    }

    pub(crate) fn push_held(rank: &'static Rank, addr: usize, site: Site) {
        HELD.with(|h| h.borrow_mut().push(Held { rank, site, addr }));
    }

    /// Remove the most recent held entry for `addr` (guards may be dropped
    /// out of acquisition order).
    pub(crate) fn pop_held(addr: usize) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            if let Some(i) = v.iter().rposition(|e| e.addr == addr) {
                v.remove(i);
            }
        });
    }

    /// Panic unless the lock at `addr` is the most recently acquired one.
    pub(crate) fn check_wait_top(addr: usize, site: Site) {
        HELD.with(|h| {
            let v = h.borrow();
            match v.last() {
                Some(top) if top.addr == addr => {}
                Some(top) => {
                    panic!(
                    "condvar wait at {} releases `{}` while still holding `{}` (acquired at {}) — \
                     the waited mutex must be the innermost held lock",
                    site, v.iter().rfind(|e| e.addr == addr).map(|e| e.rank.name).unwrap_or("?"),
                    top.rank.name, top.site
                )
                }
                None => panic!("condvar wait at {site} without the mutex held (sync-layer bug)"),
            }
        });
    }

    /// Enforce the blocking-while-locked rule for a region labelled `label`.
    pub(crate) fn check_blocking(label: &str, site: Site) {
        HELD.with(|h| {
            for e in h.borrow().iter() {
                if !e.rank.blocking_ok {
                    panic!(
                        "blocking region `{}` entered at {} while holding `{}` (rank {}, acquired at {}) — \
                         this lock's rank does not allow blocking syscalls; release it first or mark the rank blocking_ok",
                        label, site, e.rank.name, e.rank.order, e.site
                    );
                }
            }
        });
    }

    // ---- seeded-mutant registry -------------------------------------------

    fn mutants() -> &'static Mutex<HashMap<&'static str, bool>> {
        static M: OnceLock<Mutex<HashMap<&'static str, bool>>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(crate) fn mutant_armed(name: &str) -> bool {
        // Mutants only fire on threads owned by the schedule explorer, so a
        // model test arming one can never perturb concurrently running
        // ordinary tests in the same process.
        if !crate::sched::is_model_thread() {
            return false;
        }
        mutants()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
            .unwrap_or(false)
    }

    pub(crate) fn arm_mutant(name: &'static str) {
        mutants()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name, true);
    }

    pub(crate) fn clear_mutants() {
        mutants().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(any(debug_assertions, feature = "analysis"))]
pub mod sched;

// ---- seeded mutants --------------------------------------------------------

/// Is the seeded concurrency mutant `name` armed for the current thread?
///
/// Production code guards intentionally-buggy alternate paths with this so
/// the schedule explorer's model tests can prove they would be caught. It is
/// `false` unless (a) instrumentation is compiled in, (b) a model test armed
/// the mutant via [`arm_mutant`], and (c) the current thread belongs to the
/// schedule explorer — so ordinary tests and production never take the buggy
/// path. In release builds without `analysis` this is a literal `false`.
#[inline]
#[allow(clippy::needless_return)]
pub fn mutant(name: &str) -> bool {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    {
        return imp::mutant_armed(name);
    }
    #[cfg(not(any(debug_assertions, feature = "analysis")))]
    {
        let _ = name;
        false
    }
}

/// Arm the seeded mutant `name` for subsequent model-thread checks.
/// No-op in release builds without `analysis`.
pub fn arm_mutant(name: &'static str) {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    imp::arm_mutant(name);
    #[cfg(not(any(debug_assertions, feature = "analysis")))]
    let _ = name;
}

/// Disarm all seeded mutants.
pub fn clear_mutants() {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    imp::clear_mutants();
}

// ---- blocking regions ------------------------------------------------------

/// Guard marking a region that performs a blocking syscall (fsync, socket
/// read/write). Constructed via [`blocking_region`].
#[must_use = "the blocking region ends when this guard is dropped"]
pub struct BlockingGuard {
    _priv: (),
}

/// Declare that the code until the returned guard drops may block in a
/// syscall. Under analysis, panics if the current thread holds any lock
/// whose rank is not `blocking_ok`. Zero-cost in release.
#[track_caller]
#[inline]
pub fn blocking_region(label: &str) -> BlockingGuard {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    imp::check_blocking(label, Location::caller());
    #[cfg(not(any(debug_assertions, feature = "analysis")))]
    let _ = label;
    BlockingGuard { _priv: () }
}

// ---- Mutex -----------------------------------------------------------------

/// Ranked, instrumented drop-in for [`std::sync::Mutex`].
///
/// [`Mutex::lock`] recovers poison (returning the inner data) — the
/// workspace's poisoning policy is handled explicitly at the few sites that
/// care, via [`Mutex::is_poisoned`] / [`Mutex::clear_poison`].
pub struct Mutex<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    rank: &'static Rank,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock (and pops it from the
/// analysis held-stack) on drop.
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    // Dropped before the bookkeeping in `Drop::drop` runs.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a ranked mutex. `rank` should be one of the statics in
    /// [`rank`] (or a test-local static for analyzer self-tests).
    pub const fn new(rank: &'static Rank, value: T) -> Self {
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        let _ = rank;
        Mutex {
            #[cfg(any(debug_assertions, feature = "analysis"))]
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    fn addr(&self) -> usize {
        self as *const _ as *const u8 as usize
    }

    /// Acquire the mutex, recovering poison. Under analysis this first runs
    /// the rank / lock-order checks (panicking on a violation *before*
    /// blocking) and registers the acquisition on the per-thread stack.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            let site = Location::caller();
            imp::check_acquire(self.rank, self.addr(), site);
            sched::lock_acquire(self.addr());
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            imp::push_held(self.rank, self.addr(), site);
            MutexGuard {
                inner: Some(g),
                lock: self,
            }
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            MutexGuard {
                inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
                lock: self,
            }
        }
    }

    /// Whether a thread panicked while holding this mutex. Passthrough to
    /// [`std::sync::Mutex::is_poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Clear the poison flag. Passthrough to [`std::sync::Mutex::clear_poison`].
    pub fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    /// Consume the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`, so exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            // `inner` is only None transiently inside Drop.
            None => unreachable!("MutexGuard used after release"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("MutexGuard used after release"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            imp::pop_held(self.lock.addr());
            self.inner = None; // release the std lock
            sched::lock_release(self.lock.addr());
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let _ = &self.lock;
        }
    }
}

// ---- RwLock ----------------------------------------------------------------

/// Ranked, instrumented drop-in for [`std::sync::RwLock`]. Poison is
/// recovered on both `read` and `write`.
pub struct RwLock<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    rank: &'static Rank,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a ranked reader-writer lock.
    pub const fn new(rank: &'static Rank, value: T) -> Self {
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        let _ = rank;
        RwLock {
            #[cfg(any(debug_assertions, feature = "analysis"))]
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(any(debug_assertions, feature = "analysis"))]
    fn addr(&self) -> usize {
        self as *const _ as *const u8 as usize
    }

    /// Acquire a shared read guard (poison recovered, analysis-checked).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            let site = Location::caller();
            imp::check_acquire(self.rank, self.addr(), site);
            sched::rw_acquire(self.addr(), false);
            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
            imp::push_held(self.rank, self.addr(), site);
            RwLockReadGuard {
                inner: Some(g),
                lock: self,
            }
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            RwLockReadGuard {
                inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
                lock: self,
            }
        }
    }

    /// Acquire the exclusive write guard (poison recovered, analysis-checked).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            let site = Location::caller();
            imp::check_acquire(self.rank, self.addr(), site);
            sched::rw_acquire(self.addr(), true);
            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
            imp::push_held(self.rank, self.addr(), site);
            RwLockWriteGuard {
                inner: Some(g),
                lock: self,
            }
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            RwLockWriteGuard {
                inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
                lock: self,
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            None => unreachable!("RwLockReadGuard used after release"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            imp::pop_held(self.lock.addr());
            self.inner = None;
            sched::rw_release(self.lock.addr(), false);
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let _ = &self.lock;
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            None => unreachable!("RwLockWriteGuard used after release"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("RwLockWriteGuard used after release"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            imp::pop_held(self.lock.addr());
            self.inner = None;
            sched::rw_release(self.lock.addr(), true);
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let _ = &self.lock;
        }
    }
}

// ---- Condvar ---------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]. Mirrors
/// [`std::sync::WaitTimeoutResult`], which cannot be constructed outside std.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed (as opposed to a notify
    /// or an injected spurious wake)?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented drop-in for [`std::sync::Condvar`].
///
/// Beyond passthrough behavior it supports **spurious-wakeup injection**
/// ([`Condvar::inject_spurious`]) for regression-testing predicate loops, and
/// under the schedule explorer its waits become controlled yield points.
pub struct Condvar {
    inner: std::sync::Condvar,
    #[cfg(any(debug_assertions, feature = "analysis"))]
    spurious: AtomicUsize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            #[cfg(any(debug_assertions, feature = "analysis"))]
            spurious: AtomicUsize::new(0),
        }
    }

    #[cfg(any(debug_assertions, feature = "analysis"))]
    fn addr(&self) -> usize {
        self as *const _ as *const u8 as usize
    }

    /// Arrange for the next `n` waits on this condvar to return immediately
    /// as spurious wakeups (no notify, `timed_out() == false`). Lets tests
    /// prove every wait site loops on its predicate. No-op (returning
    /// `false`) in release builds without `analysis`.
    pub fn inject_spurious(&self, n: usize) -> bool {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            self.spurious.fetch_add(n, Ordering::SeqCst);
            true
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let _ = n;
            false
        }
    }

    #[cfg(any(debug_assertions, feature = "analysis"))]
    fn take_spurious(&self) -> bool {
        self.spurious
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Block until notified (poison recovered on re-acquire).
    #[track_caller]
    #[allow(clippy::needless_return)]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            return self.wait_impl(guard, None).0;
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let lock = guard.lock;
            let mut g = guard;
            let std_guard = match g.inner.take() {
                Some(s) => s,
                None => unreachable!("wait on released guard"),
            };
            std::mem::forget(g); // bookkeeping-free Drop in release, but avoid double-release
            let s = self
                .inner
                .wait(std_guard)
                .unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                inner: Some(s),
                lock,
            }
        }
    }

    /// Block until notified or `dur` elapses (poison recovered).
    #[track_caller]
    #[allow(clippy::needless_return)]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        {
            return self.wait_impl(guard, Some(dur));
        }
        #[cfg(not(any(debug_assertions, feature = "analysis")))]
        {
            let lock = guard.lock;
            let mut g = guard;
            let std_guard = match g.inner.take() {
                Some(s) => s,
                None => unreachable!("wait on released guard"),
            };
            std::mem::forget(g);
            let (s, r) = self
                .inner
                .wait_timeout(std_guard, dur)
                .unwrap_or_else(|e| e.into_inner());
            (
                MutexGuard {
                    inner: Some(s),
                    lock,
                },
                WaitTimeoutResult {
                    timed_out: r.timed_out(),
                },
            )
        }
    }

    #[cfg(any(debug_assertions, feature = "analysis"))]
    #[track_caller]
    fn wait_impl<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let site = Location::caller();
        let lock = guard.lock;
        imp::check_wait_top(lock.addr(), site);

        // Injected spurious wakeup: return immediately, predicate unfulfilled.
        if self.take_spurious() {
            return (guard, WaitTimeoutResult { timed_out: false });
        }

        if sched::is_model_thread() {
            // Controlled wait: drop the real guard (releasing the std mutex),
            // then atomically hand the scheduler the release + wait — a
            // separate release yield point would let a notify slip into the
            // gap and model a lost wakeup real condvars cannot exhibit.
            let mut g = guard;
            imp::pop_held(lock.addr());
            g.inner = None;
            std::mem::forget(g);
            let timed_out = sched::cv_wait(self.addr(), lock.addr(), dur);
            // Granted means the scheduler has already reserved the mutex for
            // us; take the (now uncontended) std lock.
            let s = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
            imp::push_held(lock.rank, lock.addr(), site);
            return (
                MutexGuard {
                    inner: Some(s),
                    lock,
                },
                WaitTimeoutResult { timed_out },
            );
        }

        // Plain instrumented wait: keep the held-stack accurate across the
        // release/re-acquire inside std's wait.
        let mut g = guard;
        imp::pop_held(lock.addr());
        let std_guard = match g.inner.take() {
            Some(s) => s,
            None => unreachable!("wait on released guard"),
        };
        std::mem::forget(g);
        let (s, timed_out) = match dur {
            Some(d) => {
                let (s, r) = self
                    .inner
                    .wait_timeout(std_guard, d)
                    .unwrap_or_else(|e| e.into_inner());
                (s, r.timed_out())
            }
            None => (
                self.inner
                    .wait(std_guard)
                    .unwrap_or_else(|e| e.into_inner()),
                false,
            ),
        };
        imp::push_held(lock.rank, lock.addr(), site);
        (
            MutexGuard {
                inner: Some(s),
                lock,
            },
            WaitTimeoutResult { timed_out },
        )
    }

    /// Wake one waiter (FIFO under the schedule explorer).
    pub fn notify_one(&self) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        if sched::is_model_thread() {
            sched::cv_notify(self.addr(), false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        #[cfg(any(debug_assertions, feature = "analysis"))]
        if sched::is_model_thread() {
            sched::cv_notify(self.addr(), true);
            return;
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
