//! The index nested-loop join fast path must be transparent: identical
//! results with and without a pre-built identifier index.

use conquer_engine::{Database, QueryResult};
use conquer_storage::Value;

fn q(db: &Database, sql: &str) -> QueryResult {
    db.prepare(sql).unwrap().query(db).unwrap()
}

fn setup() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE parent (id INTEGER, name TEXT);
         CREATE TABLE child (cid INTEGER, fk INTEGER, v INTEGER);",
    )
    .unwrap();
    {
        let t = db.catalog_mut().table_mut("parent").unwrap();
        for i in 0..50i64 {
            t.insert(vec![(i % 20).into(), format!("p{}", i % 20).into()])
                .unwrap();
        }
    }
    {
        let t = db.catalog_mut().table_mut("child").unwrap();
        for i in 0..200i64 {
            t.insert(vec![i.into(), (i % 25).into(), (i % 7).into()])
                .unwrap();
        }
    }
    db
}

const QUERY: &str = "SELECT c.cid, p.name FROM child c, parent p WHERE c.fk = p.id";

#[test]
fn index_join_matches_hash_join() {
    let mut db = setup();
    let without = q(&db, QUERY);
    db.create_index("parent", "id").unwrap();
    let with = q(&db, QUERY);
    assert!(
        without.same_rows(&with),
        "index path must not change results"
    );
    assert!(!with.is_empty());
}

#[test]
fn index_survives_only_until_mutation() {
    let mut db = setup();
    db.create_index("parent", "id").unwrap();
    assert!(db
        .catalog()
        .table("parent")
        .unwrap()
        .existing_index("id")
        .is_some());
    db.prepare("INSERT INTO parent VALUES (99, 'new')")
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert!(
        db.catalog()
            .table("parent")
            .unwrap()
            .existing_index("id")
            .is_none(),
        "mutation must invalidate the index"
    );
    // Query still answers correctly through the generic hash join.
    let r = q(&db, QUERY);
    assert!(!r.is_empty());
}

#[test]
fn fast_path_not_taken_on_type_mismatch() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE a (k INTEGER);
         CREATE TABLE b (k DOUBLE);
         INSERT INTO a VALUES (1), (2);
         INSERT INTO b VALUES (1.0), (3.0);",
    )
    .unwrap();
    db.create_index("b", "k").unwrap();
    // Int/Float cross-type equality must still match numerically (the
    // generic hash join normalizes); the index path must decline.
    let r = q(&db, "SELECT a.k FROM a, b WHERE a.k = b.k");
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn filtered_scan_declines_index_path() {
    let mut db = setup();
    db.create_index("parent", "id").unwrap();
    // The filter on parent pushes into the scan, so the index (over the
    // whole table) must not be probed.
    let r = q(
        &db,
        "SELECT c.cid FROM child c, parent p WHERE c.fk = p.id AND p.id < 5",
    );
    let r2 = q(
        &setup(),
        "SELECT c.cid FROM child c, parent p WHERE c.fk = p.id AND p.id < 5",
    );
    assert!(r.same_rows(&r2));
}

#[test]
fn null_probe_keys_never_match() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE a (k INTEGER);
         CREATE TABLE b (k INTEGER, v TEXT);
         INSERT INTO a VALUES (1), (NULL);
         INSERT INTO b VALUES (1, 'x'), (NULL, 'y');",
    )
    .unwrap();
    db.create_index("b", "k").unwrap();
    let r = q(&db, "SELECT b.v FROM a, b WHERE a.k = b.k");
    assert_eq!(r.rows, vec![vec!["x".into()]], "NULL = NULL must not join");
}
