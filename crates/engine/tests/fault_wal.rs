//! End-to-end crash safety of the durable `SharedDatabase` (requires
//! `--features fault`): kill a write and a checkpoint at every reachable
//! WAL / persistence / swap fault point and assert that reopening the
//! directory recovers exactly the committed boundary — acknowledged
//! writes survive, unacknowledged ones vanish, nothing tears.
#![cfg(feature = "fault")]

use std::path::PathBuf;

use conquer_sync::{rank, Mutex, MutexGuard};

use conquer_engine::{SharedConfig, SharedDatabase};
use conquer_storage::{fault, Value};

/// The fault registry is process-global; every test must hold this lock.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_efwal_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> (SharedDatabase, conquer_storage::RecoveryReport) {
    SharedDatabase::open_durable(dir, SharedConfig::default()).unwrap()
}

fn count(db: &SharedDatabase) -> i64 {
    let r = db.session().query("SELECT COUNT(*) FROM t").unwrap();
    match r.result.rows[0][0] {
        Value::Int(n) => n,
        ref other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn write_killed_at_every_fault_point_recovers_the_committed_boundary() {
    let _guard = serialize();

    // Hits of each point during one committed single-row INSERT.
    let hits_of = |point: &str| -> u64 {
        let scratch = tempdir("wscratch");
        fault::reset();
        let (db, _) = open(&scratch);
        db.session().execute("CREATE TABLE t (a INTEGER)").unwrap();
        fault::reset(); // count the INSERT only
        db.session().execute("INSERT INTO t VALUES (0)").unwrap();
        let hits = fault::hit_count(point);
        std::fs::remove_dir_all(&scratch).ok();
        hits
    };

    for point in [
        "wal::op",
        "wal::commit",
        "wal::io_write",
        "wal::sync",
        "shared::swap",
    ] {
        let hits = hits_of(point);
        assert!(hits > 0, "fault point {point} never hit during a write");
        for i in 1..=hits {
            let dir = tempdir("wkill");
            fault::reset();
            let (db, _) = open(&dir);
            let s = db.session();
            s.execute("CREATE TABLE t (a INTEGER)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();

            fault::arm(point, i);
            let err = s.execute("INSERT INTO t VALUES (2)").unwrap_err();
            assert!(
                err.to_string().contains("injected fault"),
                "{point} hit {i}: {err}"
            );
            fault::reset();
            drop((s, db)); // "crash": release the WAL handle, then restart

            // The commit point is the WAL fsync. A kill before it loses
            // only the unacknowledged write (1 row); a kill at the swap —
            // after the fsync — keeps it (2 rows). Either way recovery
            // lands exactly on a committed boundary, never between.
            let expect = if point == "shared::swap" { 2 } else { 1 };
            let (db, report) = open(&dir);
            assert!(
                !report.issues.iter().any(|s| s.contains("torn")),
                "{point} hit {i}: {report:?}"
            );
            assert_eq!(count(&db), expect, "{point} hit {i}");

            // The recovered database keeps accepting durable writes.
            db.session().execute("INSERT INTO t VALUES (3)").unwrap();
            assert_eq!(count(&db), expect + 1);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn checkpoint_killed_at_every_fault_point_loses_no_committed_write() {
    let _guard = serialize();

    // Hits of each point during one clean checkpoint.
    let hits_of = |point: &str| -> u64 {
        let scratch = tempdir("cscratch");
        fault::reset();
        let (db, _) = open(&scratch);
        let s = db.session();
        s.execute("CREATE TABLE t (a INTEGER)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        fault::reset(); // count the checkpoint only
        db.checkpoint().unwrap();
        let hits = fault::hit_count(point);
        std::fs::remove_dir_all(&scratch).ok();
        hits
    };

    for point in [
        "shared::checkpoint",
        "persist::file",
        "persist::io_write",
        "persist::manifest",
        "persist::publish",
        "persist::commit",
    ] {
        let hits = hits_of(point);
        assert!(
            hits > 0,
            "fault point {point} never hit during a checkpoint"
        );
        for i in 1..=hits {
            let dir = tempdir("ckill");
            fault::reset();
            let (db, _) = open(&dir);
            let s = db.session();
            s.execute("CREATE TABLE t (a INTEGER)").unwrap();
            s.execute("INSERT INTO t VALUES (1), (2)").unwrap();

            fault::arm(point, i);
            let err = db.checkpoint().unwrap_err();
            assert!(
                err.to_string().contains("injected fault"),
                "{point} hit {i}: {err}"
            );
            fault::reset();
            // The failed fold changed nothing visible, and the handle
            // checkpoints cleanly on retry.
            assert_eq!(count(&db), 2, "{point} hit {i}");
            let _ = db.checkpoint().unwrap().unwrap();
            drop((s, db));

            let (db, report) = open(&dir);
            assert_eq!(count(&db), 2, "{point} hit {i}: {report:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn interrupted_checkpoint_truncation_is_cleaned_on_reopen() {
    let _guard = serialize();
    let dir = tempdir("orphan");
    fault::reset();
    let (db, _) = open(&dir);
    let s = db.session();
    s.execute("CREATE TABLE t (a INTEGER)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    // Kill the WAL truncation between staging the fresh log and the
    // rename. The fold itself already committed, so the checkpoint still
    // reports success — truncation is best-effort by design.
    fault::arm("wal::truncate_commit", 1);
    let info = db.checkpoint().unwrap();
    assert!(info.is_some());
    fault::reset();
    drop((s, db));

    // Reopen: the orphaned temp file is removed and reported, the data is
    // intact, and a second reopen is quiet.
    let (db, report) = open(&dir);
    assert!(
        report
            .issues
            .iter()
            .any(|i| i.contains("interrupted checkpoint") && i.contains("removed")),
        "{report:?}"
    );
    assert_eq!(count(&db), 3);
    drop(db);
    let (db, report2) = open(&dir);
    assert!(
        !report2.issues.iter().any(|i| i.contains("wal.tmp")),
        "{report2:?}"
    );
    assert_eq!(count(&db), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutate_killed_at_the_swap_changes_nothing_visible_or_durable() {
    let _guard = serialize();
    let dir = tempdir("mutate");
    fault::reset();
    let (db, _) = open(&dir);
    let s = db.session();
    s.execute("CREATE TABLE t (a INTEGER)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();

    fault::arm("shared::swap", 1);
    let err = db
        .mutate(|d| d.execute_script("INSERT INTO t VALUES (2)").map(|_| ()))
        .unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    fault::reset();

    // A durable mutate folds before publishing, so a kill at the swap is
    // after the durability point: the live handle shows the old state
    // (the clone was discarded), and like any post-commit crash the
    // reopened directory shows the fold.
    assert_eq!(count(&db), 1);
    assert_eq!(db.epoch(), 2);
    drop((s, db));
    let (db, _) = open(&dir);
    assert_eq!(count(&db), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a DML statement over a view-bearing database at every reachable
/// fault point — including the view-maintenance point itself — and prove
/// that after recovery the view is never observable half-maintained: its
/// contents always equal a recompute over the recovered base table, and
/// the base table itself sits exactly on a committed boundary.
#[test]
fn view_dml_killed_at_every_fault_point_is_never_half_maintained() {
    let _guard = serialize();

    let setup = |dir: &std::path::Path| -> SharedDatabase {
        let (db, _) = open(dir);
        let s = db.session();
        s.execute("CREATE TABLE t (id TEXT, g INTEGER, prob DOUBLE)")
            .unwrap();
        // Dyadic probabilities: every partial sum is exact in binary, so
        // the recompute oracle below is equality, not epsilon.
        s.execute(
            "INSERT INTO t VALUES ('a', 1, 0.5), ('a', 2, 0.5), \
                                  ('b', 1, 0.25), ('b', 1, 0.75)",
        )
        .unwrap();
        s.execute(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT g, SUM(prob) AS p FROM t GROUP BY g",
        )
        .unwrap();
        db
    };
    // Retracts ('a',1) from group 1 and adds ('a',2)/('a',3): both sides
    // of the delta pipeline run inside one commit.
    let dml = "UPDATE t SET g = g + 1 WHERE id = 'a'";

    let hits_of = |point: &str| -> u64 {
        let scratch = tempdir("vscratch");
        fault::reset();
        let db = setup(&scratch);
        fault::reset(); // count the DML only
        db.session().execute(dml).unwrap();
        let hits = fault::hit_count(point);
        std::fs::remove_dir_all(&scratch).ok();
        hits
    };

    let oracle = |db: &SharedDatabase, ctx: &str| {
        let s = db.session();
        let viewed = s.query("SELECT g, p FROM v ORDER BY g").unwrap();
        let recomputed = s
            .query("SELECT g, SUM(prob) AS p FROM t GROUP BY g ORDER BY g")
            .unwrap();
        assert_eq!(
            viewed.result.rows, recomputed.result.rows,
            "{ctx}: view observable half-maintained after recovery"
        );
    };

    for point in [
        "view::apply",
        "wal::op",
        "wal::commit",
        "wal::io_write",
        "wal::sync",
        "shared::swap",
    ] {
        let hits = hits_of(point);
        assert!(hits > 0, "fault point {point} never hit during view DML");
        for i in 1..=hits {
            let dir = tempdir("vkill");
            fault::reset();
            let db = setup(&dir);
            let s = db.session();

            fault::arm(point, i);
            let err = s.execute(dml).unwrap_err();
            assert!(
                err.to_string().contains("injected fault"),
                "{point} hit {i}: {err}"
            );
            fault::reset();

            // Pre-crash: the failed statement published nothing, and the
            // view still matches its base table.
            oracle(&db, &format!("{point} hit {i} (pre-crash)"));
            drop((s, db));

            let (db, report) = open(&dir);
            assert!(
                !report.issues.iter().any(|s| s.contains("torn")),
                "{point} hit {i}: {report:?}"
            );
            // Boundary check on the base table: the update either fully
            // vanished (old: 'a' still has a g=1 row) or fully applied
            // (new: it does not). `shared::swap` fires after the WAL
            // fsync, so only there the write was already durable.
            let olds = match db
                .session()
                .query("SELECT COUNT(*) FROM t WHERE id = 'a' AND g = 1")
            {
                Ok(r) => match r.result.rows[0][0] {
                    Value::Int(n) => n,
                    ref other => panic!("unexpected {other:?}"),
                },
                Err(e) => panic!("{point} hit {i}: {e}"),
            };
            let expect = if point == "shared::swap" { 0 } else { 1 };
            assert_eq!(olds, expect, "{point} hit {i}: not a committed boundary");
            oracle(&db, &format!("{point} hit {i} (post-recovery)"));

            // Maintenance keeps working after recovery, durably.
            db.session()
                .execute("INSERT INTO t VALUES ('c', 1, 0.125)")
                .unwrap();
            oracle(&db, &format!("{point} hit {i} (post-recovery DML)"));
            let stats = db.stats();
            assert_eq!(stats.views, 1, "{point} hit {i}: registry lost the view");
            assert!(stats.view_deltas_applied > 0, "{point} hit {i}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
