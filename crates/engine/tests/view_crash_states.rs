//! Crash-state enumeration for view-maintaining commits (requires
//! `--features fault`): run a DML statement against a durable database
//! with a materialized view, fail the WAL fsync so the commit dies with
//! its base-table image, view contents, accumulator state and registry
//! all riding the same unsynced append, then enumerate **every**
//! post-crash disk image that unsynced state admits and prove that in
//! each one the recovered view equals a recompute over the recovered
//! base table — a view is never observable half-maintained, no matter
//! which prefix of the commit reached the platter.
#![cfg(feature = "fault")]

use std::path::{Path, PathBuf};

use conquer_engine::{SharedConfig, SharedDatabase};
use conquer_storage::vfs::mount_sim;
use conquer_storage::Value;

fn open(dir: &Path) -> SharedDatabase {
    SharedDatabase::open_durable(dir, SharedConfig::default())
        .unwrap()
        .0
}

fn rows(db: &SharedDatabase, sql: &str) -> Vec<Vec<Value>> {
    db.session().query(sql).unwrap().result.rows.clone()
}

/// The never-half-maintained oracle: view contents must equal a group-by
/// recompute over whatever base table the crash state recovered. The
/// fixture uses dyadic probabilities so the comparison is exact.
fn assert_view_matches_base(db: &SharedDatabase, ctx: &str) {
    let viewed = rows(db, "SELECT g, p FROM v ORDER BY g");
    let recomputed = rows(db, "SELECT g, SUM(prob) AS p FROM t GROUP BY g ORDER BY g");
    assert_eq!(
        viewed, recomputed,
        "{ctx}: view does not match its base table"
    );
}

#[test]
fn every_crash_state_of_a_view_maintaining_commit_recovers_to_a_boundary() {
    let (fs, _guard) = mount_sim("/sim/view_crash");
    let dir = PathBuf::from("/sim/view_crash/db");

    // Committed boundary A: base table + maintained view, all durable
    // (checkpoint folds the creation into a clean epoch).
    {
        let db = open(&dir);
        let s = db.session();
        s.execute("CREATE TABLE t (id TEXT, g INTEGER, prob DOUBLE)")
            .unwrap();
        s.execute(
            "INSERT INTO t VALUES ('a', 1, 0.5), ('a', 2, 0.5), \
                                  ('b', 1, 0.25), ('b', 1, 0.75)",
        )
        .unwrap();
        s.execute(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT g, SUM(prob) AS p FROM t GROUP BY g",
        )
        .unwrap();
        db.checkpoint().unwrap();
    }
    fs.restore(&fs.current_image());

    // Boundary B: a group-moving UPDATE whose WAL fsync fails. The
    // append carries t, v, v's accumulator state and the registry bump
    // in one commit record; none of it was acknowledged.
    {
        let db = open(&dir);
        fs.fail_sync("wal.log", 1);
        let err = db
            .session()
            .execute("UPDATE t SET g = g + 1 WHERE id = 'a'");
        assert!(err.is_err(), "a failed fsync must fail the commit");
    }
    assert!(fs.pending_ops() > 0, "the unacked append must be pending");

    let states = fs.crash_states();
    assert!(states.len() > 2, "expected subsets + torn variants");
    let mut outcomes = std::collections::BTreeSet::new();
    for state in &states {
        fs.restore(state);
        let db = open(&dir);
        let ctx = format!("crash state {:?}", state.label);

        // The base table recovered to old or new — never in between.
        let olds = rows(&db, "SELECT COUNT(*) FROM t WHERE id = 'a' AND g = 1");
        let olds = match olds[0][0] {
            Value::Int(n) => n,
            ref other => panic!("{ctx}: unexpected {other:?}"),
        };
        assert!(olds == 0 || olds == 1, "{ctx}: torn base table");

        // Whichever side it landed on, the view matches it exactly.
        assert_view_matches_base(&db, &ctx);
        outcomes.insert(olds);

        // And the recovered handle keeps maintaining durably.
        db.session()
            .execute("INSERT INTO t VALUES ('z', 7, 0.125)")
            .unwrap();
        assert_view_matches_base(&db, &format!("{ctx} after post-recovery DML"));
    }
    // The enumeration must reach both sides of the boundary.
    assert_eq!(
        outcomes.len(),
        2,
        "both boundaries must be reachable: {outcomes:?}"
    );
}

#[test]
fn view_creation_crash_states_never_leave_a_partial_view() {
    let (fs, _guard) = mount_sim("/sim/view_create_crash");
    let dir = PathBuf::from("/sim/view_create_crash/db");

    {
        let db = open(&dir);
        let s = db.session();
        s.execute("CREATE TABLE t (id TEXT, g INTEGER, prob DOUBLE)")
            .unwrap();
        s.execute("INSERT INTO t VALUES ('a', 1, 0.5), ('b', 2, 0.5)")
            .unwrap();
        db.checkpoint().unwrap();
    }
    fs.restore(&fs.current_image());

    // CREATE MATERIALIZED VIEW writes contents + state + registry in one
    // commit; fail its fsync and enumerate.
    {
        let db = open(&dir);
        fs.fail_sync("wal.log", 1);
        let err = db
            .session()
            .execute("CREATE MATERIALIZED VIEW v AS SELECT g, SUM(prob) AS p FROM t GROUP BY g");
        assert!(err.is_err(), "a failed fsync must fail the commit");
    }

    let mut outcomes = std::collections::BTreeSet::new();
    for state in &fs.crash_states() {
        fs.restore(state);
        let db = open(&dir);
        let ctx = format!("crash state {:?}", state.label);
        let has_view = db.with_db(|d| d.is_view("v"));
        if has_view {
            // Fully created: contents, hidden state and registry all
            // present and consistent with the base table.
            assert_view_matches_base(&db, &ctx);
            db.session()
                .execute("DROP MATERIALIZED VIEW v")
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        } else {
            // Fully absent: recreating from scratch works; no orphaned
            // hidden tables block it.
            db.session()
                .execute(
                    "CREATE MATERIALIZED VIEW v AS \
                     SELECT g, SUM(prob) AS p FROM t GROUP BY g",
                )
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_view_matches_base(&db, &ctx);
        }
        outcomes.insert(has_view);
    }
    assert_eq!(outcomes.len(), 2, "both boundaries must be reachable");
}
