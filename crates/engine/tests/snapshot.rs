//! Snapshot-read guarantees of `SharedDatabase`: a pinned snapshot
//! answers byte-identically no matter how many writes and checkpoints
//! commit after it was taken, and snapshot reads complete while writes
//! commit concurrently — readers never stall behind the writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use conquer_engine::{Database, SharedConfig, SharedDatabase};
use conquer_storage::Value;
use proptest::prelude::*;

fn seeded() -> SharedDatabase {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    SharedDatabase::new(db)
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("conquer_snap_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Rows of `sql` evaluated directly against one pinned snapshot.
fn rows_on(snap: &conquer_engine::Snapshot, sql: &str) -> Vec<Vec<Value>> {
    snap.db()
        .prepare(sql)
        .unwrap()
        .query(snap.db())
        .unwrap()
        .rows
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(i64),
    Update(i64),
    Checkpoint,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50).prop_map(Op::Insert),
        (0i64..50).prop_map(Op::Delete),
        (0i64..50).prop_map(Op::Update),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The property the whole snapshot design rests on: pin a snapshot,
    /// then run an arbitrary interleaving of inserts, deletes, updates,
    /// and checkpoints — after every single step the pinned snapshot
    /// answers byte-identically to the moment it was taken.
    #[test]
    fn pinned_snapshot_is_byte_identical_under_any_interleaving(
        ops in prop::collection::vec(op(), 1..24),
    ) {
        let dir = unique_dir("prop");
        let (db, _) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (a INTEGER)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

        let probes = [
            "SELECT a FROM t ORDER BY a",
            "SELECT COUNT(*), SUM(a) FROM t",
        ];
        let snap = db.snapshot();
        let pinned_epoch = snap.epoch();
        let reference: Vec<_> = probes.iter().map(|q| rows_on(&snap, q)).collect();

        for op in &ops {
            match op {
                Op::Insert(v) => {
                    s.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
                }
                Op::Delete(v) => {
                    s.execute(&format!("DELETE FROM t WHERE a = {v}")).unwrap();
                }
                Op::Update(v) => {
                    s.execute(&format!("UPDATE t SET a = a + 1 WHERE a = {v}"))
                        .unwrap();
                }
                Op::Checkpoint => {
                    db.checkpoint().unwrap();
                }
            }
            prop_assert_eq!(snap.epoch(), pinned_epoch);
            for (q, expect) in probes.iter().zip(&reference) {
                prop_assert_eq!(&rows_on(&snap, q), expect, "{} after {:?}", q, op);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Acceptance check: a snapshot read completes while a write commits
/// concurrently. The reader pins a snapshot, a barrier releases the
/// writer, and the reader keeps scanning its snapshot while 200 commits
/// land — every scan must finish (no stall behind the writer lock) and
/// answer from the pinned epoch.
#[test]
fn snapshot_reads_complete_while_writes_commit() {
    let db = seeded();
    let snap = db.snapshot();
    let start = Arc::new(Barrier::new(2));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let db = db.clone();
        let start = Arc::clone(&start);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let s = db.session();
            start.wait();
            for i in 0..200 {
                s.execute(&format!("INSERT INTO t VALUES ({})", 100 + i))
                    .unwrap();
            }
            done.store(true, Ordering::Release);
        })
    };

    start.wait();
    let stmt = snap.db().prepare("SELECT COUNT(*) FROM t").unwrap();
    let mut scans = 0u64;
    while !done.load(Ordering::Acquire) {
        let r = stmt.query(snap.db()).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3)]], "scan {scans}");
        scans += 1;
    }
    writer.join().unwrap();

    assert!(scans > 0, "at least one scan must overlap the commits");
    assert_eq!(db.epoch(), 200, "all writes committed");
    assert_eq!(snap.epoch(), 0, "the pin never moved");
    // A fresh snapshot sees all 200 new rows.
    let now = db.snapshot();
    assert_eq!(
        rows_on(&now, "SELECT COUNT(*) FROM t"),
        vec![vec![Value::Int(203)]]
    );
}

/// Sessions hand out consistent (result, epoch) pairs across a concurrent
/// writer: every answer must be internally consistent with the epoch it
/// claims, even while the epoch advances underneath.
#[test]
fn session_answers_are_epoch_consistent_under_concurrent_writes() {
    let db = seeded();
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let s = db.session();
            let mut i = 0;
            while !stop.load(Ordering::Acquire) {
                s.execute(&format!("INSERT INTO t VALUES ({})", 1000 + i))
                    .unwrap();
                i += 1;
            }
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                let s = db.session();
                for _ in 0..100 {
                    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
                    // COUNT grows monotonically with the epoch: an answer
                    // claiming epoch e must count exactly 3 + e rows.
                    let count = match r.result.rows[0][0] {
                        Value::Int(n) => n,
                        ref other => panic!("unexpected {other:?}"),
                    };
                    assert_eq!(count, 3 + r.epoch as i64, "epoch {}", r.epoch);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
}
