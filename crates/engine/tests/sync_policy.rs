//! Regression tests for the shared-database synchronization policies:
//! lock poisoning (a writer panicking mid-commit must not brick the
//! handle) and spurious condvar wakeups (the admission gate must re-check
//! its predicate after every wake).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use conquer_engine::{
    AdmissionGate, Database, EngineError, ErrorKind, SharedConfig, SharedDatabase,
};
use conquer_storage::Value;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_syncpol_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rows(db: &SharedDatabase) -> usize {
    db.with_db(|d| d.catalog().table("t").unwrap().len())
}

/// A panic inside `mutate` poisons the writer mutex. The next write must
/// surface one typed Internal error (the heal), and every write after that
/// must succeed — with the database still at its last committed state.
#[test]
fn writer_panic_mid_commit_heals_into_typed_internal_error() {
    let shared = SharedDatabase::new(Database::new());
    let session = shared.session();
    session.execute("CREATE TABLE t (id INTEGER)").unwrap();
    session.execute("INSERT INTO t VALUES (1)").unwrap();
    let epoch = shared.epoch();

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let _: Result<(), _> = shared.mutate(|_| panic!("simulated writer crash"));
    }));
    assert!(unwound.is_err(), "the panic must propagate to the writer");

    // First write after the panic: typed heal error, nothing committed.
    let err = session.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Internal, "got: {err}");
    assert!(err.to_string().contains("poisoned"), "got: {err}");
    assert_eq!(
        shared.epoch(),
        epoch,
        "the interrupted commit must not publish"
    );
    assert_eq!(rows(&shared), 1);

    // Second write: fully healed.
    session.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(shared.epoch(), epoch + 1);
    assert_eq!(rows(&shared), 2);
}

/// Same policy on a durable handle: the heal also re-truncates the WAL, so
/// a torn half-append from the panicking writer can never be extended into
/// a fake commit — and the database reloads cleanly afterwards.
#[test]
fn durable_writer_panic_heals_and_reloads_cleanly() {
    let dir = tempdir("poison");
    let (shared, _report) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    let session = shared.session();
    session.execute("CREATE TABLE t (id INTEGER)").unwrap();
    session.execute("INSERT INTO t VALUES (1)").unwrap();

    let _ = catch_unwind(AssertUnwindSafe(|| {
        let _: Result<(), _> = shared.mutate(|_| panic!("simulated writer crash"));
    }));

    let err = session.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Internal, "got: {err}");
    session.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(rows(&shared), 2);
    drop(session);
    drop(shared);

    // Reload from disk: both committed rows survive, nothing torn.
    let (reloaded, _report) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    assert_eq!(rows(&reloaded), 2);
    let r = reloaded.session().query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.result.iter_rows().next().unwrap()[0], Value::Int(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected spurious wakeups (no slot actually freed) must leave a waiting
/// `admit` waiting: the loop re-checks its predicate on every wake and only
/// a real release admits. Accounting stays exact throughout.
#[test]
fn gate_admit_survives_injected_spurious_wakeups() {
    let gate = Arc::new(AdmissionGate::new(1, 1));
    if !gate.inject_spurious_wakes(2) {
        // Release build without the analysis feature: no injection hooks.
        return;
    }
    let permit = gate.admit(None).unwrap();
    let waiter = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            // Both spurious wakes fire during this wait; each one must be
            // re-checked and ignored, so only the real release admits.
            let permit = gate.admit(Some(Duration::from_secs(30))).unwrap();
            assert_eq!(gate.running(), 1);
            drop(permit);
        })
    };
    // Give the waiter time to enter the wait loop and burn the injected
    // spurious wakes against a still-occupied gate.
    while gate.queued() == 0 {
        std::thread::yield_now();
    }
    assert_eq!(gate.running(), 1, "spurious wakes must not over-admit");
    drop(permit);
    waiter.join().unwrap();
    assert_eq!(gate.running(), 0);
    assert_eq!(gate.queued(), 0);
}

/// A waiter whose deadline passes while only spurious wakes arrive times
/// out with the typed error and restores its queue slot.
#[test]
fn gate_admit_times_out_through_spurious_wakeups() {
    let gate = AdmissionGate::new(1, 1);
    if !gate.inject_spurious_wakes(8) {
        return;
    }
    let _permit = gate.admit(None).unwrap();
    let err = gate.admit(Some(Duration::from_millis(50))).unwrap_err();
    assert!(matches!(err, EngineError::Timeout { .. }), "got: {err}");
    assert_eq!(gate.running(), 1);
    assert_eq!(
        gate.queued(),
        0,
        "timed-out waiter must restore the queue count"
    );
}
