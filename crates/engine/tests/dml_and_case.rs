//! Integration tests for DELETE / UPDATE statements and CASE expressions.

use conquer_engine::database::ExecOutcome;
use conquer_engine::{Database, QueryResult};
use conquer_storage::Value;

fn q(db: &Database, sql: &str) -> QueryResult {
    db.prepare(sql).unwrap().query(db).unwrap()
}

fn x(db: &mut Database, sql: &str) -> conquer_engine::Result<ExecOutcome> {
    db.prepare(sql)?.run(db)
}

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE emp (id INTEGER, name TEXT, dept TEXT, salary INTEGER);
         INSERT INTO emp VALUES
           (1, 'ann', 'eng', 100),
           (2, 'bob', 'eng', 80),
           (3, 'cat', 'ops', 60),
           (4, 'dan', 'ops', NULL);",
    )
    .unwrap();
    db
}

#[test]
fn delete_with_predicate() {
    let mut db = db();
    let out = x(&mut db, "DELETE FROM emp WHERE dept = 'ops'").unwrap();
    assert_eq!(out, ExecOutcome::Deleted(2));
    assert_eq!(db.catalog().table("emp").unwrap().len(), 2);
    // NULL-salary row was in ops; predicate on dept still caught it.
    let r = q(&db, "SELECT name FROM emp ORDER BY id");
    assert_eq!(r.rows, vec![vec!["ann".into()], vec!["bob".into()]]);
}

#[test]
fn delete_all_and_with_null_semantics() {
    let mut db = db();
    // salary > 70 is NULL for dan → not deleted (3VL).
    let out = x(&mut db, "DELETE FROM emp WHERE salary > 70").unwrap();
    assert_eq!(out, ExecOutcome::Deleted(2));
    let out = x(&mut db, "DELETE FROM emp").unwrap();
    assert_eq!(out, ExecOutcome::Deleted(2));
    assert!(db.catalog().table("emp").unwrap().is_empty());
}

#[test]
fn update_with_expressions_over_old_values() {
    let mut db = db();
    let out = x(
        &mut db,
        "UPDATE emp SET salary = salary + 10, name = 'x' WHERE dept = 'eng'",
    )
    .unwrap();
    assert_eq!(out, ExecOutcome::Updated(2));
    let r = q(&db, "SELECT name, salary FROM emp ORDER BY id");
    assert_eq!(r.rows[0], vec!["x".into(), Value::Int(110)]);
    assert_eq!(r.rows[1], vec!["x".into(), Value::Int(90)]);
    assert_eq!(r.rows[2], vec!["cat".into(), Value::Int(60)]);
}

#[test]
fn update_swap_uses_pre_update_row() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b INTEGER);
         INSERT INTO t VALUES (1, 2);",
    )
    .unwrap();
    x(&mut db, "UPDATE t SET a = b, b = a").unwrap();
    let r = q(&db, "SELECT a, b FROM t");
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(2), Value::Int(1)]],
        "swap must not cascade"
    );
}

#[test]
fn update_everything_without_predicate() {
    let mut db = db();
    let out = x(&mut db, "UPDATE emp SET dept = 'all'").unwrap();
    assert_eq!(out, ExecOutcome::Updated(4));
    let r = q(&db, "SELECT COUNT(*) FROM emp WHERE dept = 'all'");
    assert_eq!(r.rows[0][0], Value::Int(4));
}

#[test]
fn update_type_errors_rejected() {
    let mut db = db();
    let err = x(&mut db, "UPDATE emp SET salary = 'lots'").unwrap_err();
    assert!(err.to_string().contains("type mismatch"), "{err}");
    let err = x(&mut db, "UPDATE emp SET nothere = 1").unwrap_err();
    assert!(err.to_string().contains("nothere"), "{err}");
}

#[test]
fn searched_case_expression() {
    let db = db();
    let r = q(
        &db,
        "SELECT name, CASE WHEN salary >= 100 THEN 'high' \
                               WHEN salary >= 70 THEN 'mid' \
                               ELSE 'low' END AS band \
             FROM emp ORDER BY id",
    );
    let bands: Vec<String> = r.rows.iter().map(|row| row[1].to_string()).collect();
    // dan's NULL salary: both WHENs are NULL → ELSE fires.
    assert_eq!(bands, vec!["high", "mid", "low", "low"]);
}

#[test]
fn simple_case_expression() {
    let db = db();
    let r = q(
        &db,
        "SELECT CASE dept WHEN 'eng' THEN 1 WHEN 'ops' THEN 2 END AS code \
             FROM emp ORDER BY id",
    );
    let codes: Vec<Value> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(
        codes,
        vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2)]
    );
}

#[test]
fn case_without_else_yields_null() {
    let db = db();
    let r = q(
        &db,
        "SELECT CASE WHEN salary > 1000 THEN 1 END FROM emp WHERE id = 1",
    );
    assert!(r.rows[0][0].is_null());
}

#[test]
fn case_inside_aggregate_tpch_q12_style() {
    // The shape TPC-H Q12 actually uses: conditional counting.
    let db = db();
    let r = q(
        &db,
        "SELECT SUM(CASE WHEN dept = 'eng' THEN 1 ELSE 0 END) AS eng, \
                    SUM(CASE WHEN dept = 'ops' THEN 1 ELSE 0 END) AS ops \
             FROM emp",
    );
    assert_eq!(r.rows[0], vec![Value::Int(2), Value::Int(2)]);
}

#[test]
fn case_in_where_and_group_by() {
    let db = db();
    let r = q(
        &db,
        "SELECT CASE WHEN salary >= 80 THEN 'top' ELSE 'rest' END AS band, COUNT(*) \
             FROM emp WHERE CASE WHEN dept = 'eng' THEN TRUE ELSE salary > 50 END \
             GROUP BY CASE WHEN salary >= 80 THEN 'top' ELSE 'rest' END \
             ORDER BY band",
    );
    // eng rows pass unconditionally (2); ops: cat 60>50 passes, dan NULL fails.
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec!["rest".into(), Value::Int(1)]);
    assert_eq!(r.rows[1], vec!["top".into(), Value::Int(2)]);
}

#[test]
fn case_printer_roundtrip() {
    for sql in [
        "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
        "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'z' END FROM t",
        "SELECT CASE WHEN a > 1 AND b < 2 THEN a + 1 END FROM t",
    ] {
        let stmt = conquer_sql::parse_statement(sql).unwrap();
        let printed = stmt.to_string();
        assert_eq!(
            conquer_sql::parse_statement(&printed).unwrap(),
            stmt,
            "{printed}"
        );
    }
}

#[test]
fn dml_printer_roundtrip() {
    for sql in [
        "DELETE FROM emp WHERE salary > 10",
        "DELETE FROM emp",
        "UPDATE emp SET salary = salary * 2, name = 'n' WHERE id IN (1, 2)",
        "UPDATE emp SET dept = 'x'",
    ] {
        let stmt = conquer_sql::parse_statement(sql).unwrap();
        let printed = stmt.to_string();
        assert_eq!(
            conquer_sql::parse_statement(&printed).unwrap(),
            stmt,
            "{printed}"
        );
    }
}

#[test]
fn dirty_database_maintenance_via_dml() {
    // DELETE/UPDATE make offline cleaning expressible in SQL: drop every
    // tuple below a probability threshold, renormalize, query.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE c (id TEXT, v INTEGER, prob DOUBLE);
         INSERT INTO c VALUES ('a', 1, 0.8), ('a', 2, 0.2), ('b', 3, 1.0);",
    )
    .unwrap();
    x(&mut db, "DELETE FROM c WHERE prob < 0.5").unwrap();
    x(&mut db, "UPDATE c SET prob = 1.0").unwrap();
    let dirty =
        conquer_core::DirtyDatabase::new(db, conquer_core::DirtySpec::uniform(&["c"])).unwrap();
    let ans = dirty
        .clean_answers("SELECT id FROM c WHERE v >= 1")
        .unwrap();
    assert_eq!(ans.len(), 2);
    assert!(ans.rows.iter().all(|(_, p)| (p - 1.0).abs() < 1e-12));
}

#[test]
fn drop_table_and_insert_select() {
    let mut db = db();
    // INSERT ... SELECT copies qualifying rows into a new table.
    x(&mut db, "CREATE TABLE highpaid (id INTEGER, name TEXT)").unwrap();
    let out = x(
        &mut db,
        "INSERT INTO highpaid (id, name) SELECT id, name FROM emp WHERE salary >= 80",
    )
    .unwrap();
    assert_eq!(out, ExecOutcome::Inserted(2));
    let r = q(&db, "SELECT name FROM highpaid ORDER BY id");
    assert_eq!(r.rows, vec![vec!["ann".into()], vec!["bob".into()]]);

    // Column-count mismatch is rejected.
    let err = x(&mut db, "INSERT INTO highpaid SELECT id FROM emp").unwrap_err();
    assert!(err.to_string().contains("columns"), "{err}");

    // DROP TABLE removes it; statements on it then fail.
    assert_eq!(
        x(&mut db, "DROP TABLE highpaid").unwrap(),
        ExecOutcome::Dropped
    );
    assert!(db.prepare("SELECT * FROM highpaid").is_err());
    assert!(x(&mut db, "DROP TABLE highpaid").is_err());

    // INSERT ... SELECT round-trips printed SQL.
    let stmt =
        conquer_sql::parse_statement("INSERT INTO t (a) SELECT x FROM u WHERE x > 1").unwrap();
    assert_eq!(
        conquer_sql::parse_statement(&stmt.to_string()).unwrap(),
        stmt
    );
    let stmt = conquer_sql::parse_statement("DROP TABLE t").unwrap();
    assert_eq!(stmt.to_string(), "DROP TABLE t");
}
