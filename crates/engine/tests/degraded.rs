//! Degraded mode: a scrub that finds on-disk corruption flips the shared
//! handle into a read-only quarantine — reads keep working, writes are
//! refused with the typed `DEGRADED` kind — until a checkpoint writes a
//! fresh verified epoch (or a clean scrub) clears it.

use conquer_engine::{ErrorKind, SharedConfig, SharedDatabase};
use conquer_storage::persist::current_data_path;
use conquer_storage::Value;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer_degraded_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn scrub_finding_corruption_degrades_writes_until_checkpoint_repairs() {
    let dir = tempdir("cycle");
    let (db, _) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE t (a INTEGER)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let _ = db.checkpoint().unwrap().expect("durable handle");

    // A clean scrub reports work done and leaves the handle healthy.
    let report = db.scrub().unwrap().expect("durable handle");
    assert!(report.is_clean(), "{report:?}");
    assert!(report.clean > 0);
    assert!(!db.is_degraded());
    assert_eq!(db.stats().scrub_runs, 1);

    // Rot one byte of the committed epoch's data file behind the
    // engine's back. Reads still serve the in-memory snapshot; only a
    // scrub notices the disk can no longer be trusted.
    let data = current_data_path(&dir, "t");
    let mut bytes = std::fs::read(&data).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&data, &bytes).unwrap();

    let report = db.scrub().unwrap().expect("durable handle");
    assert!(report.corrupt >= 1, "{report:?}");
    assert!(db.is_degraded());
    assert!(db.stats().degraded);

    // Writes are refused with the stable DEGRADED kind; reads pass.
    let err = s.execute("INSERT INTO t VALUES (3)").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Degraded, "{err}");
    assert_eq!(err.kind().as_str(), "DEGRADED");
    assert!(!err.kind().is_retryable());
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.result.rows, vec![vec![Value::Int(2)]]);

    // A checkpoint rewrites a fresh, verified epoch: that *is* the
    // repair, so it must be allowed while degraded and must clear it.
    let _ = db.checkpoint().unwrap().expect("durable handle");
    assert!(!db.is_degraded());
    s.execute("INSERT INTO t VALUES (3)").unwrap();
    let report = db.scrub().unwrap().expect("durable handle");
    assert!(report.is_clean(), "{report:?}");
    assert!(!db.is_degraded());

    // The full history survives a reopen — nothing was lost to the rot.
    drop(s);
    drop(db);
    let (db, report) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let r = db.session().query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.result.rows, vec![vec![Value::Int(3)]]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_scrub_alone_clears_a_degraded_handle() {
    let dir = tempdir("clean_clears");
    let (db, _) = SharedDatabase::open_durable(&dir, SharedConfig::default()).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let _ = db.checkpoint().unwrap().expect("durable handle");

    let data = current_data_path(&dir, "t");
    let original = std::fs::read(&data).unwrap();
    let mut rotted = original.clone();
    rotted[0] ^= 0x01;
    std::fs::write(&data, &rotted).unwrap();
    let _ = db.scrub().unwrap().expect("durable handle");
    assert!(db.is_degraded());

    // Putting the original bytes back (an operator restoring from a
    // backup) makes the next scrub clean, which lifts the quarantine
    // without a checkpoint.
    std::fs::write(&data, &original).unwrap();
    let report = db.scrub().unwrap().expect("durable handle");
    assert!(report.is_clean(), "{report:?}");
    assert!(!db.is_degraded());
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_on_a_memory_handle_is_a_noop() {
    let db = SharedDatabase::new(conquer_engine::Database::new());
    assert_eq!(db.scrub().unwrap(), None);
    assert!(!db.is_degraded());
    assert_eq!(db.stats().scrub_runs, 0);
}

#[test]
fn stats_surface_io_health_counters() {
    let db = SharedDatabase::new(conquer_engine::Database::new());
    let stats = db.stats();
    // The counters are process-wide and monotonic; a fresh in-memory
    // handle must still report them (other tests may have bumped them).
    let _ = stats.io_errors;
    let _ = stats.fsync_failures;
    assert_eq!(stats.corrupt_frames, 0);
    assert!(!stats.degraded);
}
