//! Cache-invalidation contract of [`SharedDatabase`]: an epoch bump must
//! evict every cached plan and result, answers served through the caches
//! must be byte-identical to freshly prepared ones (float bits included),
//! and the stats counters must prove when re-preparation was skipped.

use std::sync::Arc;

use conquer_engine::{Database, ErrorKind, ExecLimits, QuerySource, SharedConfig, SharedDatabase};
use conquer_storage::Value;

fn sample() -> SharedDatabase {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE m (grp TEXT, w DOUBLE);
         INSERT INTO m VALUES
           ('a', 0.1), ('a', 0.2), ('a', 0.30000000000000004),
           ('b', 1e-300), ('b', 2.5), ('b', -0.0)",
    )
    .unwrap();
    SharedDatabase::new(db)
}

/// Float-summing SQL whose result depends on exact accumulation order —
/// the sharpest probe for "byte-identical".
const SUM_SQL: &str = "SELECT grp, SUM(w), COUNT(*) FROM m GROUP BY grp ORDER BY grp";

/// Compare two results down to the f64 bit pattern.
fn assert_bit_identical(a: &[Vec<Value>], b: &[Vec<Value>]) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len());
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(fa), Value::Float(fb)) => {
                    assert_eq!(fa.to_bits(), fb.to_bits(), "{fa} vs {fb}")
                }
                _ => assert_eq!(va, vb),
            }
        }
    }
}

#[test]
fn cached_answers_are_bit_identical_to_fresh_prepare() {
    let shared = sample();
    let session = shared.session();

    // Fresh → plan-cached → result-cached: all three paths, one answer.
    let fresh = session.query(SUM_SQL).unwrap();
    assert_eq!(fresh.source, QuerySource::Fresh);
    let hit = session.query(SUM_SQL).unwrap();
    assert_eq!(hit.source, QuerySource::ResultCache);
    assert_bit_identical(&fresh.result.rows, &hit.result.rows);

    // And against a from-scratch prepare that bypasses every cache.
    let scratch = shared.with_db(|db| db.prepare(SUM_SQL).unwrap().query(db).unwrap());
    assert_bit_identical(&fresh.result.rows, &scratch.rows);
}

#[test]
fn epoch_bump_evicts_plans_and_results() {
    let shared = sample();
    let session = shared.session();
    session.query(SUM_SQL).unwrap();
    session.query("SELECT COUNT(*) FROM m").unwrap();
    let before = shared.stats();
    assert_eq!(before.plan_entries, 2);
    assert_eq!(before.result_entries, 2);
    assert_eq!(before.epoch, 0);

    session.execute("INSERT INTO m VALUES ('c', 7.5)").unwrap();

    let after = shared.stats();
    assert_eq!(after.epoch, 1);
    assert_eq!(after.plan_entries, 0, "plan cache must be empty");
    assert_eq!(after.result_entries, 0, "result cache must be empty");
    assert_eq!(after.evictions, before.evictions + 4);

    // The next query re-prepares and sees the new row.
    let fresh = session.query(SUM_SQL).unwrap();
    assert_eq!(fresh.source, QuerySource::Fresh);
    assert_eq!(fresh.epoch, 1);
    assert_eq!(fresh.result.len(), 3);
}

#[test]
fn re_prepared_answers_after_bump_match_fresh_prepare() {
    let shared = sample();
    let session = shared.session();
    session.query(SUM_SQL).unwrap();
    session.execute("INSERT INTO m VALUES ('a', 0.4)").unwrap();

    // Served answer at the new epoch vs a cache-bypassing fresh prepare.
    let served = session.query(SUM_SQL).unwrap();
    let scratch = shared.with_db(|db| db.prepare(SUM_SQL).unwrap().query(db).unwrap());
    assert_bit_identical(&served.result.rows, &scratch.rows);

    // And the served answer is now cacheable again at the new epoch.
    let hit = session.query(SUM_SQL).unwrap();
    assert_eq!(hit.source, QuerySource::ResultCache);
    assert_eq!(hit.epoch, 1);
    assert_bit_identical(&served.result.rows, &hit.result.rows);
}

#[test]
fn plan_cache_hits_skip_re_preparation() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    // Result cache off: every query must execute, so repeats exercise the
    // plan cache alone. (`SharedConfig` is non_exhaustive: start from the
    // default and adjust fields.)
    let mut config = SharedConfig::default();
    config.result_cache = 0;
    let shared = SharedDatabase::with_config(db, config);
    let session = shared.session();

    for _ in 0..5 {
        session.query("SELECT a FROM t ORDER BY a").unwrap();
    }
    let stats = shared.stats();
    assert_eq!(stats.plan_misses, 1, "prepared once");
    assert_eq!(stats.plan_hits, 4, "four repeats reused the plan");
    assert_eq!(stats.result_hits, 0);

    // Same SQL, same epoch ⇒ the very same statement object.
    let p1 = session.prepare("SELECT a FROM t ORDER BY a").unwrap();
    let p2 = session.prepare("SELECT a FROM t ORDER BY a").unwrap();
    assert!(Arc::ptr_eq(&p1, &p2));
}

#[test]
fn overload_sheds_with_typed_error_and_recovers() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
        .unwrap();
    let mut config = SharedConfig::default();
    config.max_running = 1;
    config.max_queue = 0;
    let shared = SharedDatabase::with_config(db, config);
    let session = shared.session();

    let slot = shared.admission().admit(None).unwrap();
    let err = session.query("SELECT a FROM t").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Overloaded);
    assert!(err.kind().is_retryable());
    assert_eq!(shared.stats().shed, 1);

    // Releasing the slot restores service — shedding is not sticky.
    drop(slot);
    assert_eq!(session.query("SELECT a FROM t").unwrap().result.len(), 1);
}

#[test]
fn session_limits_flow_into_execution() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    let shared = SharedDatabase::new(db);
    let session = shared.session();
    session.set_limits(
        ExecLimits::builder()
            .deadline(std::time::Duration::ZERO)
            .build(),
    );
    let err = session.query("SELECT a FROM t").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Timeout, "{err}");
}
