//! Fault injection in the spill path (requires `--features fault`): an
//! injected I/O failure at any spill failpoint must surface as a typed
//! error (never a panic or a wrong answer), the spill session must clean
//! up after itself even on the error path, and whatever a simulated kill
//! leaves behind must be collected — and reported — by startup recovery.
//!
//! The fault registry is process-global, so every test in this file takes
//! `LOCK` first.
#![cfg(feature = "fault")]

use std::path::PathBuf;

use conquer_sync::{rank, Mutex, MutexGuard};

use conquer_engine::{Database, EngineError, ExecLimits};
use conquer_storage::spill::list_spill_dirs;
use conquer_storage::{fault, load_catalog_recover};

fn lock() -> MutexGuard<'static, ()> {
    // A test that panicked while holding the lock already failed; the
    // sync wrapper recovers the poison so it can't cascade into
    // unrelated tests.
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

const SPILL_SQL: &str = "SELECT COUNT(*), SUM(a.val + b.val) \
     FROM big a, big b WHERE a.id = b.id";

fn limits_32k() -> ExecLimits {
    ExecLimits::builder().mem(32 * 1024).build()
}

fn tempbase(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("conquer_fault_spill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn big_db(rows: usize, spill_base: &PathBuf) -> Database {
    let mut db = Database::new();
    db.set_limits(ExecLimits::none());
    db.set_spill_dir(spill_base);
    db.execute_script("CREATE TABLE big (id INTEGER, grp TEXT, val DOUBLE)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..rows {
        values.push(format!("({i}, 'group-{:05}', {}.25)", i % 97, i));
        if values.len() == 500 {
            db.execute_script(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
            values.clear();
        }
    }
    if !values.is_empty() {
        db.execute_script(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

/// Run the spilling query under `db`, expecting an injected-fault error.
fn expect_fault(db: &Database) -> EngineError {
    let err = db
        .prepare(SPILL_SQL)
        .unwrap()
        .with_limits(limits_32k())
        .query(db)
        .unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "expected the injected fault to surface, got: {err}"
    );
    err
}

#[test]
fn kill_at_every_spill_write_leaves_no_orphans() {
    let _g = lock();
    let base = tempbase("write");
    let db = big_db(3000, &base);

    // Clean run: count how often the failpoint is hit (and pin down the
    // right answer while we're at it).
    fault::reset();
    let reference = db
        .prepare(SPILL_SQL)
        .unwrap()
        .with_limits(limits_32k())
        .query(&db)
        .unwrap();
    let hits = fault::hit_count("spill::write");
    assert!(hits > 100, "query did not spill enough to be interesting");
    assert!(list_spill_dirs(&base).is_empty(), "clean run left orphans");

    // Kill the write at the first, last, and a spread of middle hits;
    // every failure must be typed and must leave the base directory
    // clean once the query (and its context) is gone.
    for nth in [1, 2, hits / 3, hits / 2, hits - 1, hits] {
        fault::reset();
        fault::arm("spill::write", nth);
        expect_fault(&db);
        assert!(
            list_spill_dirs(&base).is_empty(),
            "write fault at hit {nth}/{hits} orphaned a spill dir"
        );
    }

    // And the database still answers correctly afterwards.
    fault::reset();
    let again = db
        .prepare(SPILL_SQL)
        .unwrap()
        .with_limits(limits_32k())
        .query(&db)
        .unwrap();
    assert_eq!(reference.rows, again.rows);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn kill_at_every_spill_read_leaves_no_orphans() {
    let _g = lock();
    let base = tempbase("read");
    let db = big_db(3000, &base);
    fault::reset();
    db.prepare(SPILL_SQL)
        .unwrap()
        .with_limits(limits_32k())
        .query(&db)
        .unwrap();
    let hits = fault::hit_count("spill::read");
    assert!(hits > 100, "query did not read back enough spilled rows");
    for nth in [1, hits / 2, hits] {
        fault::reset();
        fault::arm("spill::read", nth);
        expect_fault(&db);
        assert!(
            list_spill_dirs(&base).is_empty(),
            "read fault at hit {nth}/{hits} orphaned a spill dir"
        );
    }
    fault::reset();
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn spill_dir_creation_failure_is_typed() {
    let _g = lock();
    let base = tempbase("create");
    let db = big_db(3000, &base);
    fault::reset();
    fault::arm("spill::create", 1);
    let err = db
        .prepare(SPILL_SQL)
        .unwrap()
        .with_limits(limits_32k())
        .query(&db)
        .unwrap_err();
    assert!(
        err.to_string().contains("could not create spill directory"),
        "{err}"
    );
    fault::reset();
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn spill_faults_at_four_threads_shut_the_pool_down_cleanly() {
    let _g = lock();
    let base = tempbase("parallel");
    let db = big_db(20_000, &base);
    let limits = limits_32k().with_threads(4);
    // Scan-only spine (no build side to overflow), ~20k groups: the
    // worker pool engages with all four workers AND the downstream
    // aggregation + external sort must spill under 32 KiB — faults and
    // parallelism in one pipeline. LIMIT keeps the (never-spilled)
    // result buffer under the budget.
    let sql = "SELECT id, SUM(val), COUNT(*) FROM big GROUP BY id ORDER BY id LIMIT 5";
    let run = |expect_err: bool| {
        let outcome = db.prepare(sql).unwrap().with_limits(limits).query(&db);
        match (expect_err, outcome) {
            (false, Ok(res)) => Some(res),
            (true, Err(err)) => {
                let text = err.to_string();
                assert!(
                    text.contains("injected fault") || text.contains("could not create"),
                    "expected a typed injected-fault error, got: {err}"
                );
                None
            }
            (false, Err(err)) => panic!("clean run failed: {err}"),
            (true, Ok(_)) => panic!("armed fault did not fire"),
        }
    };

    fault::reset();
    let reference = run(false).unwrap();
    assert_eq!(
        reference.stats().unwrap().threads_used,
        4,
        "pool must engage or this test proves nothing"
    );
    assert!(
        reference.stats().unwrap().disk_charged > 0,
        "aggregation must spill or this test proves nothing"
    );
    let write_hits = fault::hit_count("spill::write");
    let read_hits = fault::hit_count("spill::read");

    for (point, nth) in [
        ("spill::create", 1),
        ("spill::write", 1),
        ("spill::write", write_hits / 2),
        ("spill::write", write_hits),
        ("spill::read", 1),
        ("spill::read", read_hits / 2),
    ] {
        fault::reset();
        fault::arm(point, nth);
        // The error surfaces exactly once (one typed Err, no panic from
        // an orphaned worker), and the pool must actually wind down: a
        // leaked worker would abort the process on scope exit.
        run(true);
        assert!(
            list_spill_dirs(&base).is_empty(),
            "{point} fault at hit {nth} orphaned a spill dir"
        );
    }

    // Pool, budget meter, and spill session all survive for reuse.
    fault::reset();
    let again = run(false).unwrap();
    assert_eq!(reference.rows, again.rows, "answers changed after faults");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn orphans_from_a_simulated_kill_are_collected_by_recovery() {
    let _g = lock();
    let base = tempbase("recover");
    let db = big_db(3000, &base);
    // Recovery runs over a persistence directory; make `base` one.
    db.save_to_dir(&base).unwrap();

    // Fail one run-file removal so the orphan directory is non-empty,
    // then leak the execution context — the moral equivalent of
    // `kill -9` between a spill and the query's cleanup.
    fault::reset();
    fault::arm("spill::remove", 1);
    let ctx = db.exec_context(limits_32k());
    let stmt = db.prepare(SPILL_SQL).unwrap();
    stmt.query_with(&db, &ctx).unwrap();
    std::mem::forget(ctx);
    fault::reset();

    let orphans = list_spill_dirs(&base);
    assert_eq!(
        orphans.len(),
        1,
        "expected one orphaned session: {orphans:?}"
    );

    let (catalog, report) = load_catalog_recover(&base).unwrap();
    assert_eq!(catalog.len(), db.catalog().len());
    assert!(
        report
            .issues
            .iter()
            .any(|i| i.contains("orphaned spill directory") && i.contains("removed")),
        "recovery must report the orphan: {:?}",
        report.issues
    );
    assert!(
        list_spill_dirs(&base).is_empty(),
        "recovery must remove the orphan"
    );

    // A second recovery has nothing left to say about spill state.
    let (_, quiet) = load_catalog_recover(&base).unwrap();
    assert!(
        !quiet.issues.iter().any(|i| i.contains("spill")),
        "{:?}",
        quiet.issues
    );
    std::fs::remove_dir_all(&base).ok();
}
