//! The morsel-parallel driver's contract, tested at the engine level:
//! results are **bit-identical** at every thread count, operator
//! statistics stay exact (no double-counted build sides), governance
//! (cancellation, budgets, LIMIT early-stop) keeps working mid-pipeline,
//! and many queries — one of them cancelled in flight — can race on a
//! single `Database` without deadlock or cross-talk.

use std::sync::atomic::{AtomicU64, Ordering};

use conquer_sync::{rank, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use conquer_engine::{Database, EngineError, ExecLimits, QueryResult};
use conquer_storage::Value;

/// Every test here either measures a wall-clock latency or deliberately
/// oversubscribes the scheduler; run concurrently by libtest on a small
/// host they starve each other into flaky latency assertions. Each test
/// takes this lock first, serializing the binary (the pattern
/// `fault_spill.rs` uses for its process-global registry).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(&rank::TEST_SERIAL, ());
    LOCK.lock()
}

/// `big` rows; > 4 morsels of 4096 so the pool genuinely splits work.
const BIG_ROWS: usize = 20_000;

fn test_db() -> Database {
    let mut db = Database::new();
    db.set_limits(ExecLimits::none());
    db.execute_script("CREATE TABLE big (id INTEGER, dim_id INTEGER, grp TEXT, val DOUBLE)")
        .unwrap();
    db.execute_script("CREATE TABLE dim (id INTEGER, name TEXT)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..BIG_ROWS {
        // val exercises float summation: many distinct magnitudes per
        // group, so a reordered SUM would drift in the low bits.
        values.push(format!(
            "({i}, {}, 'g{:03}', {})",
            i % 100,
            i % 37,
            (i as f64) * 0.1 + 1.0 / ((i + 1) as f64)
        ));
        if values.len() == 500 {
            db.execute_script(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
            values.clear();
        }
    }
    for d in 0..100 {
        values.push(format!("({d}, 'dim-{d:03}')"));
    }
    db.execute_script(&format!("INSERT INTO dim VALUES {}", values.join(", ")))
        .unwrap();
    db
}

/// A byte-exact fingerprint of a result: row order preserved, floats by
/// bit pattern (`assert_eq!` on floats would already pass for -0.0 vs
/// 0.0 or drift hidden by `PartialEq`; bits are the real contract).
fn fingerprint(res: &QueryResult) -> Vec<Vec<String>> {
    res.rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Float(f) => format!("f64:{:016x}", f.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

fn run_at(db: &Database, sql: &str, threads: usize) -> QueryResult {
    db.prepare(sql)
        .unwrap()
        .with_limits(ExecLimits::none().with_threads(threads))
        .query(db)
        .unwrap()
}

const SUM_SQL: &str = "SELECT b.grp, d.name, COUNT(*), SUM(b.val) \
     FROM big b, dim d WHERE b.dim_id = d.id AND b.id % 3 <> 1 \
     GROUP BY b.grp, d.name ORDER BY b.grp, d.name";

#[test]
fn results_bit_identical_across_thread_counts() {
    let _g = lock();
    let db = test_db();
    let reference = run_at(&db, SUM_SQL, 1);
    assert_eq!(reference.stats().unwrap().threads_used, 1);
    let ref_fp = fingerprint(&reference);
    assert!(!ref_fp.is_empty());
    for threads in [2, 3, 8, 16] {
        let res = run_at(&db, SUM_SQL, threads);
        let stats = res.stats().unwrap();
        assert!(
            stats.threads_used > 1 && stats.threads_used <= threads,
            "threads={threads}: pool did not engage (threads_used = {})",
            stats.threads_used
        );
        assert_eq!(
            ref_fp,
            fingerprint(&res),
            "threads={threads}: result not bit-identical to serial"
        );
    }
}

#[test]
fn hash_join_stats_count_build_rows_once() {
    let _g = lock();
    // Regression for the per-worker merge double-count: every worker
    // probes the same 100-row build table, so summing per-worker
    // `rows_in` naively would count the build side once per worker.
    let db = test_db();
    let res = run_at(
        &db,
        "SELECT COUNT(*) FROM big b, dim d WHERE b.dim_id = d.id",
        8,
    );
    assert_eq!(res.rows, vec![vec![Value::Int(BIG_ROWS as i64)]]);
    let stats = res.stats().unwrap();
    assert!(stats.threads_used > 1, "pool did not engage: {stats:?}");
    let mut join_rows_in = None;
    let mut scan_big_rows = None;
    stats.root.visit(&mut |_, op| {
        if op.name.starts_with("HashJoin") {
            join_rows_in = Some(op.rows_in);
        }
        if op.name.starts_with("Scan big") {
            scan_big_rows = Some(op.rows_in);
        }
    });
    // Exactly build (100) + probe (20 000): counted once, not per worker.
    assert_eq!(join_rows_in, Some(100 + BIG_ROWS as u64), "{stats:?}");
    assert_eq!(scan_big_rows, Some(BIG_ROWS as u64), "{stats:?}");
}

#[test]
fn limit_stops_the_pool_early_without_leaking_budget() {
    let _g = lock();
    let db = test_db();
    // LIMIT abandons the pool mid-stream; the build-table charge must
    // still be handed back. Run 40 queries against ONE shared budget
    // meter: a leaked ~15 KiB build table per query would blow the
    // 256 KiB budget within ~17 runs, while honest accounting only
    // accumulates the (tiny) result buffers.
    let ctx = db.exec_context(
        ExecLimits::none()
            .with_threads(8)
            .with_mem_bytes(256 << 10)
            .with_disk_bytes(0),
    );
    let stmt = db
        .prepare("SELECT b.id, d.name FROM big b, dim d WHERE b.dim_id = d.id LIMIT 5")
        .unwrap();
    for run in 0..40 {
        let res = stmt
            .query_with(&db, &ctx)
            .unwrap_or_else(|e| panic!("run {run}: budget leaked across queries: {e}"));
        assert_eq!(res.rows.len(), 5);
    }
}

#[test]
fn cancellation_mid_parallel_returns_promptly() {
    let _g = lock();
    let db = test_db();
    // Self-join on grp: ~20000²/37 output rows — far too slow to finish,
    // so cancellation necessarily lands mid-pipeline.
    let sql = "SELECT COUNT(*), SUM(a.val + b.val) FROM big a, big b WHERE a.grp = b.grp";
    let ctx = db.exec_context(ExecLimits::none().with_threads(8));
    let token = ctx.cancel_token();
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let stmt = db.prepare(sql).unwrap();
            let started = Instant::now();
            let err = stmt.query_with(&db, &ctx).unwrap_err();
            (err, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(40));
        let cancelled_at = Instant::now();
        token.cancel();
        let (err, total) = handle.join().unwrap();
        let latency = cancelled_at.elapsed();
        assert!(matches!(err, EngineError::Cancelled), "got {err:?}");
        assert!(
            latency < Duration::from_millis(100),
            "cancel latency {latency:?} (query ran {total:?} total)"
        );
    });
}

#[test]
fn racing_queries_on_one_database_with_midflight_cancel() {
    let _g = lock();
    let db = test_db();
    let reference = fingerprint(&run_at(&db, SUM_SQL, 1));
    let cancel_sql = "SELECT COUNT(*) FROM big a, big b WHERE a.grp = b.grp";

    // Seeded so a failing schedule can be replayed: iteration k cancels
    // after seed-derived delays, workers re-check results every lap.
    for round in 0u64..3 {
        let delay_ms = 10 + (round * 7919) % 35;
        let cancelled_latency = std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for threads in [2, 8] {
                        let res = run_at(&db, SUM_SQL, threads);
                        assert_eq!(reference, fingerprint(&res), "racing query diverged");
                    }
                });
            }
            let ctx = db.exec_context(ExecLimits::none().with_threads(4));
            let token = ctx.cancel_token();
            let db = &db;
            let victim = s.spawn(move || {
                let stmt = db.prepare(cancel_sql).unwrap();
                stmt.query_with(db, &ctx)
            });
            std::thread::sleep(Duration::from_millis(delay_ms));
            let at = Instant::now();
            token.cancel();
            let outcome = victim.join().unwrap();
            match outcome {
                Err(EngineError::Cancelled) => Some(at.elapsed()),
                Err(other) => panic!("round {round}: expected Cancelled, got {other:?}"),
                // The victim won the race against the token; legal, just
                // not the interesting schedule.
                Ok(_) => None,
            }
        });
        if let Some(latency) = cancelled_latency {
            assert!(
                latency < Duration::from_millis(100),
                "round {round}: cancel latency {latency:?}"
            );
        }
    }
}

#[test]
fn single_threaded_limit_and_tiny_tables_stay_serial_shaped() {
    let _g = lock();
    let db = test_db();
    // threads = 1 must still answer (and report itself as serial).
    let res = run_at(&db, "SELECT COUNT(*) FROM dim", 1);
    assert_eq!(res.rows, vec![vec![Value::Int(100)]]);
    assert_eq!(res.stats().unwrap().threads_used, 1);
    // A sub-morsel table can't use more than one worker even at 8.
    let res = run_at(&db, "SELECT COUNT(*) FROM dim", 8);
    assert_eq!(res.rows, vec![vec![Value::Int(100)]]);
    assert_eq!(res.stats().unwrap().threads_used, 1);
    // Cross joins take the serial executor.
    let res = run_at(&db, "SELECT COUNT(*) FROM dim a, dim b", 8);
    assert_eq!(res.rows, vec![vec![Value::Int(100 * 100)]]);
    assert_eq!(res.stats().unwrap().threads_used, 1);
}

#[test]
fn explain_analyze_reports_gather_and_threads() {
    let _g = lock();
    let mut db = test_db();
    db.set_limits(ExecLimits::none().with_threads(8));
    let stmt = conquer_sql::parse_select(SUM_SQL).unwrap();
    let text = format!("{}", db.explain_select(&stmt, true).unwrap());
    assert!(text.contains("Gather"), "{text}");
    assert!(text.contains("HashJoin"), "{text}");
    assert!(text.contains("Scan big [b]"), "{text}");
    assert!(!text.contains("threads: 1"), "{text}");
}

#[test]
fn env_var_sets_default_thread_count() {
    let _g = lock();
    // This binary's only env read; no other test races it.
    std::env::set_var("CONQUER_THREADS", "3");
    let limits = ExecLimits::from_env();
    std::env::remove_var("CONQUER_THREADS");
    assert_eq!(limits.threads, Some(3));
    let db = test_db();
    let res = db
        .prepare(SUM_SQL)
        .unwrap()
        .with_limits(limits)
        .query(&db)
        .unwrap();
    let used = res.stats().unwrap().threads_used;
    assert!(used > 1 && used <= 3, "threads_used = {used}");
}

#[test]
fn deterministic_under_adversarial_scheduling() {
    let _g = lock();
    // Hammer the scheduler: tiny morsel queue vs. skewed per-row work,
    // many repetitions. Any order-dependence in the merge shows up as a
    // fingerprint change.
    let db = test_db();
    let reference = fingerprint(&run_at(&db, SUM_SQL, 1));
    let drift = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for threads in [2, 5, 8] {
                    if fingerprint(&run_at(&db, SUM_SQL, threads)) != reference {
                        drift.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(drift.load(Ordering::Relaxed), 0, "nondeterministic result");
}
