//! External-memory execution tests: when a query's working set exceeds its
//! memory budget, hash join, hash aggregation, and sort must spill to disk
//! and produce *exactly* the rows an unlimited run produces — graceful
//! degradation, not wrong answers. `ResourceExhausted` is reserved for the
//! end of the escalation ladder (spilling disabled or the disk budget
//! exhausted too), spill temp directories must not outlive the query, and
//! cancellation must stay responsive while an operator is streaming
//! through spill files.

use std::time::{Duration, Instant};

use conquer_engine::{CancelToken, Database, EngineError, ExecLimits, QueryResult};
use conquer_storage::Row;

/// One wide-ish table whose hash/sort state dwarfs a tens-of-KiB budget.
fn big_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.set_limits(ExecLimits::none()); // tests control limits explicitly
    db.execute_script("CREATE TABLE big (id INTEGER, grp TEXT, val DOUBLE)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..rows {
        // Distinct-ish text keeps per-row footprint realistic and makes
        // every row a distinct group for the aggregation tests.
        values.push(format!("({i}, 'group-{:05}', {}.25)", i % 1000, i));
        if values.len() == 500 {
            db.execute_script(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
            values.clear();
        }
    }
    if !values.is_empty() {
        db.execute_script(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

fn sorted_rows(r: &QueryResult) -> Vec<Row> {
    let mut rows = r.rows.clone();
    rows.sort();
    rows
}

/// Run `sql` once without limits and once under `limits`; both must
/// produce the same multiset of rows, and the governed run must have
/// spilled. Returns the governed result for extra assertions.
fn assert_spilled_run_matches(db: &Database, sql: &str, limits: ExecLimits) -> QueryResult {
    let reference = db
        .prepare(sql)
        .unwrap()
        .with_limits(ExecLimits::none())
        .query(db)
        .unwrap();
    let governed = db
        .prepare(sql)
        .unwrap()
        .with_limits(limits)
        .query(db)
        .unwrap();
    assert_eq!(
        sorted_rows(&reference),
        sorted_rows(&governed),
        "spilling changed the answer of {sql}"
    );
    let stats = governed.stats().expect("governed run carries stats");
    assert!(
        stats.disk_charged > 0,
        "budget {limits:?} did not force a spill for {sql}:\n{}",
        stats.render()
    );
    assert_eq!(stats.root.total_spilled(), stats.disk_charged);
    governed
}

#[test]
fn spilling_hash_join_matches_in_memory_answer() {
    let db = big_db(4000);
    // Self-equijoin: the build side (4000 rows) cannot fit in 48 KiB.
    let sql = "SELECT COUNT(*), SUM(a.val + b.val) \
               FROM big a, big b WHERE a.id = b.id";
    let governed =
        assert_spilled_run_matches(&db, sql, ExecLimits::none().with_mem_bytes(48 * 1024));
    let stats = governed.stats().unwrap();
    let mut join_spilled = false;
    stats.root.visit(&mut |_, op| {
        if op.name.starts_with("HashJoin") && op.spill_bytes > 0 {
            assert!(op.spill_partitions > 0, "{}", stats.render());
            assert!(op.spill_passes >= 1, "{}", stats.render());
            join_spilled = true;
        }
    });
    assert!(join_spilled, "no spilled HashJoin in:\n{}", stats.render());
}

#[test]
fn spilling_aggregation_matches_in_memory_answer() {
    let db = big_db(4000);
    // 1000 groups of hash-table state, far over 32 KiB; LIMIT keeps the
    // (hard-charged) result buffer tiny.
    let sql = "SELECT grp, COUNT(*), SUM(val) FROM big \
               GROUP BY grp ORDER BY grp LIMIT 20";
    let governed =
        assert_spilled_run_matches(&db, sql, ExecLimits::none().with_mem_bytes(32 * 1024));
    let stats = governed.stats().unwrap();
    let mut agg_spilled = false;
    stats.root.visit(&mut |_, op| {
        if op.name.starts_with("HashAggregate") && op.spill_bytes > 0 {
            agg_spilled = true;
        }
    });
    assert!(
        agg_spilled,
        "no spilled HashAggregate in:\n{}",
        stats.render()
    );
}

#[test]
fn spilling_distinct_aggregates_survive_state_serialization() {
    let db = big_db(4000);
    // DISTINCT accumulators carry their value sets through the spill
    // files; merging partitions must not double-count.
    let sql = "SELECT grp, COUNT(DISTINCT val), MIN(val), MAX(val) FROM big \
               GROUP BY grp ORDER BY grp LIMIT 20";
    assert_spilled_run_matches(&db, sql, ExecLimits::none().with_mem_bytes(32 * 1024));
}

#[test]
fn external_sort_matches_in_memory_order_exactly() {
    let db = big_db(4000);
    // ORDER BY materializes all 4000 rows; 32 KiB forces multiple runs.
    // Order (not just multiset) must match, so compare rows verbatim.
    let sql = "SELECT id, grp, val FROM big ORDER BY val DESC, id LIMIT 50";
    let reference = db
        .prepare(sql)
        .unwrap()
        .with_limits(ExecLimits::none())
        .query(&db)
        .unwrap();
    let governed = db
        .prepare(sql)
        .unwrap()
        .with_limits(ExecLimits::none().with_mem_bytes(32 * 1024))
        .query(&db)
        .unwrap();
    assert_eq!(reference.rows, governed.rows);
    let stats = governed.stats().unwrap();
    let mut sort_spilled = false;
    stats.root.visit(&mut |_, op| {
        if op.name.starts_with("Sort") && op.spill_bytes > 0 {
            assert!(
                op.spill_partitions >= 2,
                "expected ≥2 runs:\n{}",
                stats.render()
            );
            sort_spilled = true;
        }
    });
    assert!(sort_spilled, "no spilled Sort in:\n{}", stats.render());
}

#[test]
fn external_sort_is_stable_across_runs() {
    // Equal keys spread over many spill runs must keep input order.
    let mut db = Database::new();
    db.set_limits(ExecLimits::none());
    db.execute_script("CREATE TABLE s (k INTEGER, seq INTEGER)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..3000 {
        values.push(format!("({}, {i})", i % 3));
    }
    db.execute_script(&format!("INSERT INTO s VALUES {}", values.join(", ")))
        .unwrap();
    let sql = "SELECT k, seq FROM s ORDER BY k";
    let reference = db.prepare(sql).unwrap().query(&db).unwrap();
    // The budget must be big enough for the (hard-charged) 3000-row
    // result buffer (~216 KB) but smaller than the sort's working set
    // (~288 KB — each row carries a trailing key column).
    let governed = db
        .prepare(sql)
        .unwrap()
        .with_limits(ExecLimits::none().with_mem_bytes(240_000))
        .query(&db)
        .unwrap();
    assert!(governed.stats().unwrap().disk_charged > 0, "did not spill");
    assert_eq!(
        reference.rows, governed.rows,
        "external sort lost stability"
    );
}

#[test]
fn explain_analyze_reports_spill_metrics() {
    // EXPLAIN ANALYZE runs under the database default limits.
    let mut db = big_db(4000);
    db.set_limits(ExecLimits::none().with_mem_bytes(32 * 1024));
    let r = db
        .prepare(
            "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM big \
             GROUP BY grp ORDER BY grp LIMIT 5",
        )
        .unwrap()
        .query(&db)
        .unwrap();
    let text = r
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("spilled="), "{text}");
    assert!(text.contains("partitions="), "{text}");
    assert!(text.contains("passes="), "{text}");
    assert!(text.contains("Resource limits:"), "{text}");
}

#[test]
fn zero_disk_budget_restores_hard_abort() {
    let db = big_db(4000);
    let sql = "SELECT COUNT(*) FROM big a, big b WHERE a.id = b.id";
    let err = db
        .prepare(sql)
        .unwrap()
        .with_limits(
            ExecLimits::none()
                .with_mem_bytes(48 * 1024)
                .with_disk_bytes(0),
        )
        .query(&db)
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "{err:?}"
    );
    assert!(err.is_governance());
}

#[test]
fn exhausted_disk_budget_is_the_end_of_the_ladder() {
    let db = big_db(4000);
    let sql = "SELECT COUNT(*) FROM big a, big b WHERE a.id = b.id";
    // 2 KiB of disk cannot absorb a 4000-row build side.
    let err = db
        .prepare(sql)
        .unwrap()
        .with_limits(
            ExecLimits::none()
                .with_mem_bytes(48 * 1024)
                .with_disk_bytes(2 * 1024),
        )
        .query(&db)
        .unwrap_err();
    match err {
        EngineError::ResourceExhausted { limit_bytes, .. } => {
            assert_eq!(limit_bytes, 2 * 1024, "should name the disk limit");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // The database is still usable afterwards.
    assert_eq!(
        db.prepare("SELECT COUNT(*) FROM big")
            .unwrap()
            .query(&db)
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn spill_directories_do_not_outlive_the_query() {
    let base = std::env::temp_dir().join(format!(
        "conquer_spill_hygiene_{}_{}",
        std::process::id(),
        line!()
    ));
    std::fs::create_dir_all(&base).unwrap();
    let mut db = big_db(4000);
    db.set_spill_dir(&base);
    assert_eq!(db.spill_dir(), Some(base.as_path()));
    let r = db
        .prepare("SELECT COUNT(*), SUM(a.val) FROM big a, big b WHERE a.id = b.id")
        .unwrap()
        .with_limits(ExecLimits::none().with_mem_bytes(48 * 1024))
        .query(&db)
        .unwrap();
    assert!(r.stats().unwrap().disk_charged > 0, "did not spill");
    let leftovers: Vec<_> = std::fs::read_dir(&base)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(leftovers.is_empty(), "orphaned spill state: {leftovers:?}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn load_from_dir_spills_under_the_persistence_directory() {
    let dir = std::env::temp_dir().join(format!(
        "conquer_spill_load_{}_{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let db = big_db(1000);
    db.save_to_dir(&dir).unwrap();
    let loaded = Database::load_from_dir(&dir).unwrap();
    assert_eq!(loaded.spill_dir(), Some(dir.as_path()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancellation_stays_responsive_while_spilling() {
    let db = big_db(20_000);
    let sql = "SELECT COUNT(*), SUM(a.val + b.val) \
               FROM big a, big b WHERE a.id = b.id";
    let stmt = db.prepare(sql).unwrap();
    let ctx = db.exec_context(ExecLimits::none().with_mem_bytes(32 * 1024));
    let token: CancelToken = ctx.cancel_token();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let start = Instant::now();
    let result = stmt.query_with(&db, &ctx);
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    match result {
        Err(EngineError::Cancelled) => {}
        Ok(_) => panic!("query finished before the cancel fired; grow the dataset"),
        Err(other) => panic!("expected Cancelled, got {other:?}"),
    }
    // The spill partition/merge loops tick every few hundred rows, so the
    // abort lands well within a generous CI-safe bound.
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?} while spilling"
    );
}
