//! Resource-governance tests: memory budgets, deadlines and cooperative
//! cancellation must abort queries with *typed* errors (never a panic or
//! an OOM), limits must compose (statement override beats database
//! default), and the numbers must show up in `EXPLAIN ANALYZE` output and
//! [`ExecStats`].

use std::time::Duration;

use conquer_engine::{CancelToken, Database, EngineError, ExecContext, ExecLimits};

/// A database big enough that joins/aggregations materialize real state.
fn sample(rows: usize) -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE fact (id INTEGER, grp TEXT, val DOUBLE);
         CREATE TABLE dim (grp TEXT, label TEXT)",
    )
    .unwrap();
    let mut values = Vec::new();
    for i in 0..rows {
        values.push(format!("({i}, 'g{}', {}.5)", i % 97, i));
    }
    db.execute_script(&format!("INSERT INTO fact VALUES {}", values.join(", ")))
        .unwrap();
    let dims: Vec<String> = (0..97).map(|g| format!("('g{g}', 'label {g}')")).collect();
    db.execute_script(&format!("INSERT INTO dim VALUES {}", dims.join(", ")))
        .unwrap();
    db
}

const JOIN_AGG: &str = "SELECT d.label, COUNT(*), SUM(f.val) \
     FROM fact f, dim d WHERE f.grp = d.grp \
     GROUP BY d.label ORDER BY d.label";

#[test]
fn memory_budget_aborts_with_typed_error() {
    let db = sample(2000);
    let stmt = db
        .prepare(JOIN_AGG)
        .unwrap()
        .with_limits(ExecLimits::none().with_mem_bytes(4 * 1024));
    match stmt.query(&db) {
        Err(EngineError::ResourceExhausted {
            limit_bytes,
            attempted_bytes,
        }) => {
            assert_eq!(limit_bytes, 4 * 1024);
            assert!(attempted_bytes > limit_bytes);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // Generous budget: same statement, same database, runs fine.
    let ok = db
        .prepare(JOIN_AGG)
        .unwrap()
        .with_limits(ExecLimits::none().with_mem_bytes(64 * 1024 * 1024));
    assert_eq!(ok.query(&db).unwrap().len(), 97);
}

#[test]
fn deadline_aborts_with_typed_error() {
    let db = sample(2000);
    let stmt = db
        .prepare(JOIN_AGG)
        .unwrap()
        .with_limits(ExecLimits::none().with_timeout(Duration::ZERO));
    match stmt.query(&db) {
        Err(EngineError::Timeout { limit }) => assert_eq!(limit, Duration::ZERO),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn database_default_limits_govern_plain_queries() {
    let mut db = sample(2000);
    db.set_limits(ExecLimits::none().with_mem_bytes(4 * 1024));
    let err = db.prepare(JOIN_AGG).unwrap().query(&db).unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "{err:?}"
    );
    // Lifting the limit restores service without rebuilding the database.
    db.set_limits(ExecLimits::none());
    assert_eq!(db.prepare(JOIN_AGG).unwrap().query(&db).unwrap().len(), 97);
}

#[test]
fn statement_limits_override_database_defaults() {
    let mut db = sample(2000);
    db.set_limits(ExecLimits::none().with_mem_bytes(1024));
    // The statement's own (unlimited) limits win over the strict default.
    let stmt = db
        .prepare(JOIN_AGG)
        .unwrap()
        .with_limits(ExecLimits::none());
    assert_eq!(stmt.query(&db).unwrap().len(), 97);
    // And clearing the override falls back to the database default.
    let mut stmt = stmt;
    stmt.set_limits(None);
    assert!(stmt.query(&db).is_err());
}

#[test]
fn cancellation_aborts_with_typed_error_and_token_is_shareable() {
    let db = sample(2000);
    let stmt = db.prepare(JOIN_AGG).unwrap();
    let token = CancelToken::new();
    let ctx = ExecContext::with_token(ExecLimits::none(), token.clone());
    // Cancel from "another thread" (here: before the call; the token is
    // just a shared flag checked at batch boundaries).
    token.cancel();
    match stmt.query_with(&db, &ctx) {
        Err(EngineError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // A fresh context runs the same prepared statement fine.
    let fresh = ExecContext::new(ExecLimits::none());
    assert_eq!(stmt.query_with(&db, &fresh).unwrap().len(), 97);
}

#[test]
fn stats_and_explain_analyze_surface_limits() {
    let mut db = sample(500);
    db.set_limits(
        ExecLimits::none()
            .with_mem_bytes(64 * 1024 * 1024)
            .with_timeout(Duration::from_secs(30)),
    );
    let res = db.prepare(JOIN_AGG).unwrap().query(&db).unwrap();
    let stats = res.stats().expect("executor results carry stats");
    assert_eq!(stats.mem_budget, Some(64 * 1024 * 1024));
    assert!(stats.mem_charged > 0, "nothing charged? {stats:?}");
    assert_eq!(stats.timeout, Some(Duration::from_secs(30)));

    let explain = db
        .prepare(&format!("EXPLAIN ANALYZE {JOIN_AGG}"))
        .unwrap()
        .query(&db)
        .unwrap();
    let text = explain
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Resource limits:"), "{text}");
    assert!(text.contains("charged"), "{text}");

    // Ungoverned queries don't clutter the report with limits.
    db.set_limits(ExecLimits::none());
    let explain = db
        .prepare(&format!("EXPLAIN ANALYZE {JOIN_AGG}"))
        .unwrap()
        .query(&db)
        .unwrap();
    let text = explain
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!text.contains("Resource limits:"), "{text}");
}

#[test]
fn governance_errors_are_flagged_as_such() {
    let e = EngineError::ResourceExhausted {
        limit_bytes: 1,
        attempted_bytes: 2,
    };
    assert!(e.is_governance());
    assert!(EngineError::Cancelled.is_governance());
    assert!(EngineError::Timeout {
        limit: Duration::ZERO
    }
    .is_governance());
    assert!(!EngineError::internal("x").is_governance());
}
