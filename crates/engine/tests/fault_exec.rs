//! Fault injection in the executor's allocation path (requires
//! `--features fault`): an injected allocation failure surfaces as a typed
//! engine error and the database stays fully usable afterwards.
#![cfg(feature = "fault")]

use conquer_engine::Database;
use conquer_storage::fault;

fn sample() -> Database {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER, b TEXT)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..100 {
        values.push(format!("({i}, 'row {i}')"));
    }
    db.execute_script(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    db
}

#[test]
fn injected_allocation_fault_is_typed_and_database_survives() {
    let db = sample();
    let sql = "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b";
    fault::reset();
    fault::arm("exec::charge", 1);
    let err = db.prepare(sql).unwrap().query(&db).unwrap_err();
    assert!(
        err.to_string().contains("injected allocation fault"),
        "{err}"
    );
    // One-shot: the same database and query work on the next call.
    fault::reset();
    assert_eq!(db.prepare(sql).unwrap().query(&db).unwrap().len(), 100);
}
